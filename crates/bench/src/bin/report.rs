//! Experiment report: regenerates the E1–E12 and E15–E20 measured
//! series recorded in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p ssd-bench --bin report
//! ```
//!
//! Criterion (`cargo bench`) provides rigorous timings; this binary
//! produces the *shape* tables — counts, work measures, and coarse
//! wall-clock ratios — that stand in for the tutorial's (non-existent)
//! evaluation tables. The serving (E16), tracing (E17), and storage
//! (E18) sections also drop machine-readable `BENCH_serve.json` /
//! `BENCH_trace.json` / `BENCH_store.json` in the current directory,
//! the per-PR data points for the perf trajectory (ROADMAP item 5).

use semistructured::graph::bisim::graphs_bisimilar;
use semistructured::graph::index::GraphIndex;
use semistructured::query::decompose::{eval_decomposed_nfa, Partition};
use semistructured::query::recursion::{gext, Transducer};
use semistructured::query::rpe::eval::{eval_nfa, eval_nfa_with_stats};
use semistructured::query::{browse, evaluate_select, optimizer, parse_query, restructure};
use semistructured::query::{Nfa, Rpe, Step};
use semistructured::triples::datalog::{evaluate, evaluate_naive, parse_program};
use semistructured::triples::TripleStore;
use semistructured::{DataGuide, Database, EvalOptions, Pred, Value};
use ssd_bench::{clusters, movies, web};
use ssd_data::movies::figure1;
use std::time::Instant;

/// Median wall time over `n` runs, in microseconds.
fn time_us<T>(n: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn main() {
    println!("semistructured — experiment report (E1–E12, E15–E20)");
    println!("paper: Buneman, \"Semistructured Data\", PODS 1997 (tutorial; no tables — series defined in EXPERIMENTS.md)");

    e01();
    e02();
    e03();
    e04();
    e05();
    e06();
    e07();
    e08();
    e09();
    e10();
    e11();
    e12();
    e15();
    e16();
    e17();
    e18();
    e19();
    e20();
    println!("\nreport complete.");
}

/// Write a `BENCH_*.json` perf-trajectory data point next to the report.
fn write_json(path: &str, text: &str) {
    match std::fs::write(path, text) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Shared artifact envelope — every `BENCH_*.json` opens with the same
/// three keys so downstream tooling can dispatch without per-experiment
/// parsers: `{"experiment", "schema_version", "host_cores", ...payload}`.
fn envelope(experiment: &str) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    format!(
        "\"experiment\": \"{experiment}\",\n  \"schema_version\": 1,\n  \
         \"host_cores\": {cores},"
    )
}

fn e01() {
    header("E1 / Figure 1 — the movie database");
    let g = figure1();
    println!(
        "nodes={} edges={} cyclic={} entries={}",
        g.reachable().len(),
        g.edge_count(),
        g.has_cycle(),
        g.successors_by_name(g.root(), "Entry").len()
    );
    let g2 = figure1();
    println!(
        "independent constructions bisimilar: {}",
        graphs_bisimilar(&g, &g2)
    );
    println!(
        "conforms to hand-written Figure-1 schema: {}",
        ssd_schema::conforms(&g, &ssd_schema::figure1_schema())
    );
}

fn e02() {
    header("E2 — §1.3 browsing, locate phase: scan vs index (µs, median of 9)");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "entries", "q1 scan", "q1 index", "q2 scan", "q2 index", "q3 scan", "q3 index"
    );
    for &size in &[30usize, 100, 300, 1000] {
        let g = movies(size);
        let idx = GraphIndex::build(&g);
        let q1s = time_us(9, || browse::locate_string_scan(&g, "Actor 3"));
        let q1i = time_us(9, || browse::locate_string_indexed(&g, &idx, "Actor 3"));
        let q2s = time_us(9, || browse::locate_ints_greater_scan(&g, 1 << 16));
        let q2i = time_us(9, || browse::locate_ints_greater_indexed(&g, &idx, 1 << 16));
        let q3s = time_us(9, || browse::locate_attrs_prefix_scan(&g, "Act"));
        let q3i = time_us(9, || browse::locate_attrs_prefix_indexed(&g, &idx, "Act"));
        println!(
            "{size:>8} {q1s:>12.1} {q1i:>12.1} {q2s:>12.1} {q2i:>12.1} {q3s:>12.1} {q3i:>12.1}"
        );
    }
}

fn e03() {
    header("E3 — select-from-where (µs, median of 9)");
    let join = parse_query(
        r#"select {p: {t: T, d: D}} from db.Entry.Movie M, M.Title T, M.Director D
           where exists M.Cast"#,
    )
    .unwrap();
    println!("{:>8} {:>14} {:>10}", "entries", "join query", "results");
    for &size in &[30usize, 100, 300] {
        let g = movies(size);
        let t = time_us(9, || {
            evaluate_select(&g, &join, &EvalOptions::default()).unwrap()
        });
        let (_, stats) = evaluate_select(&g, &join, &EvalOptions::default()).unwrap();
        println!("{size:>8} {t:>14.1} {:>10}", stats.results_constructed);
    }
}

fn e04() {
    header("E4 — regular path expressions: product work (visited pairs)");
    let queries: Vec<(&str, Rpe)> = vec![
        (
            "Entry.Movie.Title",
            Rpe::seq(vec![
                Rpe::symbol("Entry"),
                Rpe::symbol("Movie"),
                Rpe::symbol("Title"),
            ]),
        ),
        (
            "Entry.Movie.(!Movie)*.\"Actor 1\"",
            Rpe::seq(vec![
                Rpe::symbol("Entry"),
                Rpe::symbol("Movie"),
                Rpe::step(Step::not_symbol("Movie")).star(),
                Rpe::step(Step::value("Actor 1")),
            ]),
        ),
        ("%*", Rpe::step(Step::wildcard()).star()),
    ];
    println!(
        "{:>8} {:>38} {:>10} {:>10} {:>12}",
        "entries", "query", "matches", "pairs", "µs"
    );
    for &size in &[100usize, 300] {
        let g = movies(size);
        for (name, rpe) in &queries {
            let nfa = Nfa::compile(rpe);
            let (matches, pairs) = eval_nfa_with_stats(&g, g.root(), &nfa);
            let t = time_us(9, || eval_nfa(&g, g.root(), &nfa));
            println!(
                "{size:>8} {name:>38} {:>10} {pairs:>10} {t:>12.1}",
                matches.len()
            );
        }
    }
}

fn e05() {
    header("E5 — relational strategy vs traversal (µs, median of 9)");
    use semistructured::triples::{Datum, Relation};
    use semistructured::Label;
    println!(
        "{:>8} {:>16} {:>16} {:>16} {:>16}",
        "entries", "σ-label rel", "σ-label index", "path3 joins", "path3 traverse"
    );
    for &size in &[100usize, 300] {
        let g = movies(size);
        let store = TripleStore::from_graph(&g);
        let rel = Relation::edge_relation(&store);
        let movie = Label::symbol(g.symbols(), "Movie");
        let t_rel = time_us(9, || {
            rel.select_eq("label", &Datum::Label(movie.clone()))
                .unwrap()
        });
        let t_idx = time_us(9, || store.with_label(&movie).len());
        let entry = Label::symbol(g.symbols(), "Entry");
        let title = Label::symbol(g.symbols(), "Title");
        let t_joins = time_us(5, || {
            let e1 = rel
                .select_eq("label", &Datum::Label(entry.clone()))
                .unwrap()
                .project(&["src", "dst"])
                .unwrap()
                .rename("dst", "n1")
                .unwrap();
            let e2 = rel
                .select_eq("label", &Datum::Label(movie.clone()))
                .unwrap()
                .project(&["src", "dst"])
                .unwrap()
                .rename("src", "n1")
                .unwrap()
                .rename("dst", "n2")
                .unwrap();
            let e3 = rel
                .select_eq("label", &Datum::Label(title.clone()))
                .unwrap()
                .project(&["src", "dst"])
                .unwrap()
                .rename("src", "n2")
                .unwrap()
                .rename("dst", "n3")
                .unwrap();
            e1.natural_join(&e2)
                .natural_join(&e3)
                .project(&["n3"])
                .unwrap()
        });
        let path = Rpe::seq(vec![
            Rpe::symbol("Entry"),
            Rpe::symbol("Movie"),
            Rpe::symbol("Title"),
        ]);
        let nfa = Nfa::compile(&path);
        let t_trav = time_us(9, || eval_nfa(&g, g.root(), &nfa));
        println!("{size:>8} {t_rel:>16.1} {t_idx:>16.1} {t_joins:>16.1} {t_trav:>16.1}");
    }
}

fn e06() {
    header("E6 — graph datalog: semi-naive vs naive (transitive closure)");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "pages", "|path|", "semi µs", "naive µs", "semi evals", "naive evals"
    );
    for &pages in &[30usize, 60, 120] {
        let g = web(pages);
        let store = TripleStore::from_graph(&g);
        let program = parse_program(
            "path(X, Y) :- edge(X, _L, Y).\npath(X, Y) :- edge(X, _L, Z), path(Z, Y).",
            g.symbols(),
        )
        .unwrap();
        let semi = evaluate(&program, &store).unwrap();
        let naive = evaluate_naive(&program, &store).unwrap();
        assert_eq!(semi.facts.get("path"), naive.facts.get("path"));
        let t_semi = time_us(3, || evaluate(&program, &store).unwrap());
        let t_naive = time_us(3, || evaluate_naive(&program, &store).unwrap());
        println!(
            "{pages:>8} {:>10} {t_semi:>12.1} {t_naive:>12.1} {:>12} {:>12}",
            semi.count("path"),
            semi.rule_evaluations,
            naive.rule_evaluations
        );
    }
}

fn e07() {
    header("E7 — structural recursion (gext): linear, total on cycles");
    println!(
        "{:>10} {:>10} {:>14} {:>10}",
        "edges", "cyclic", "identity µs", "µs/edge"
    );
    for &size in &[100usize, 300, 1000] {
        let g = movies(size);
        let t = time_us(5, || gext(&g, g.root(), &Transducer::new()));
        println!(
            "{:>10} {:>10} {t:>14.1} {:>10.3}",
            g.edge_count(),
            g.has_cycle(),
            t / g.edge_count() as f64
        );
    }
    // Infinite unfolding, finite time.
    let g = ssd_data::movies::movie_database(&ssd_data::movies::MovieDbConfig {
        reference_prob: 0.8,
        ..ssd_data::movies::MovieDbConfig::sized(300)
    });
    let t = time_us(5, || gext(&g, g.root(), &Transducer::new()));
    println!("dense-cycles 300 entries: {:.1} µs (unfolding is infinite; output is a finite cyclic graph)", t);
}

fn e08() {
    header("E8 — relational fragment through the graph engine (µs)");
    use semistructured::query::relational_fragment as rf;
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12}",
        "rows", "σ graph", "σ native", "⋈ graph", "⋈ native"
    );
    for &rows in &[50usize, 200] {
        let rel = ssd_data::relational::wide_relation(rows, 3, 10, 2);
        let g = rf::database_of(std::slice::from_ref(&rel));
        let t_sg = time_us(5, || rf::select_eq(&g, &rel, "c1", &Value::Int(3)).unwrap());
        let t_sn = time_us(9, || rf::native_select_eq(&rel, "c1", &Value::Int(3)));
        let (ord, cust) = ssd_data::relational::orders_and_customers(rows, 10, 5);
        let g2 = rf::database_of(&[ord.clone(), cust.clone()]);
        let t_jg = time_us(3, || {
            rf::join(&g2, &ord, &cust, "customer", "name").unwrap()
        });
        let t_jn = time_us(9, || rf::native_join(&ord, &cust, "customer", "name"));
        // Cross-check once.
        assert_eq!(
            rf::select_eq(&g, &rel, "c1", &Value::Int(3))
                .unwrap()
                .row_set(),
            rf::native_select_eq(&rel, "c1", &Value::Int(3)).row_set()
        );
        println!("{rows:>8} {t_sg:>14.1} {t_sn:>14.1} {t_jg:>12.1} {t_jn:>12.1}");
    }
    println!("(set difference is NOT expressible in the positive select fragment — provided natively; see DESIGN.md S13)");
}

fn e09() {
    header("E9 — deep restructuring (µs, median of 5)");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "entries", "relabel", "collapse", "delete", "shortcut"
    );
    for &size in &[100usize, 300] {
        let g = movies(size);
        let t_rel = time_us(5, || {
            restructure::relabel_edges(&g, Pred::Symbol("Actors".into()), "Performer")
        });
        let t_col = time_us(5, || {
            restructure::collapse_edges(&g, Pred::Symbol("Credit".into()))
        });
        let t_del = time_us(5, || {
            restructure::delete_edges(&g, Pred::Symbol("BoxOffice".into()))
        });
        let t_sc = time_us(5, || {
            restructure::shortcut(
                &g,
                &Pred::Symbol("Cast".into()),
                &Pred::Symbol("Actors".into()),
                "CastMember",
            )
        });
        println!("{size:>8} {t_rel:>12.1} {t_col:>12.1} {t_del:>12.1} {t_sc:>12.1}");
    }
}

fn e10() {
    header("E10 — optimizer: baseline vs pushdown+guide (µs, median of 5)");
    let selective = parse_query(
        r#"select {t: T} from db.Entry.Movie M, M.Year Y, M.Title T, M.Cast.%* X where Y < 1935"#,
    )
    .unwrap();
    let unselective = parse_query(
        r#"select {t: T} from db.Entry.Movie M, M.Year Y, M.Title T, M.Cast.%* X where Y < 2100"#,
    )
    .unwrap();
    let empty = parse_query("select T from db.NoSuchThing.%* T").unwrap();
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "entries", "query", "baseline", "optimized", "speedup", "base asgn", "opt asgn"
    );
    for &size in &[100usize, 300] {
        let g = movies(size);
        let guide = DataGuide::build(&g);
        for (name, q) in [
            ("selective", &selective),
            ("unselect.", &unselective),
            ("empty", &empty),
        ] {
            let t_base = time_us(5, || {
                evaluate_select(&g, q, &EvalOptions::default()).unwrap()
            });
            let t_opt = time_us(5, || {
                evaluate_select(&g, q, &EvalOptions::optimized(Some(&guide))).unwrap()
            });
            let (_, sb) = evaluate_select(&g, q, &EvalOptions::default()).unwrap();
            let (_, so) = evaluate_select(&g, q, &EvalOptions::optimized(Some(&guide))).unwrap();
            println!(
                "{size:>8} {name:>12} {t_base:>14.1} {t_opt:>14.1} {:>13.1}x {:>12} {:>12}",
                t_base / t_opt.max(0.01),
                sb.assignments_tried,
                so.assignments_tried
            );
        }
    }
    // Schema refutation of an impossible path.
    let g = movies(300);
    let schema = ssd_schema::extract_schema_default(&g);
    let impossible = Rpe::seq(vec![
        Rpe::symbol("Entry"),
        Rpe::symbol("Movie"),
        Rpe::symbol("Nonexistent"),
        Rpe::symbol("Title"),
    ]);
    let t_schema = time_us(9, || optimizer::schema_allows(&schema, &impossible));
    let nfa = Nfa::compile(&impossible);
    let t_data = time_us(9, || eval_nfa(&g, g.root(), &nfa).is_empty());
    println!("emptiness of impossible path: schema check {t_schema:.1} µs vs data traversal {t_data:.1} µs");
}

fn e11() {
    header("E11 — parallel decomposition over sites");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let g = clusters(16, 400);
    let rpe = Rpe::seq(vec![
        Rpe::step(Step::wildcard()).star(),
        Rpe::symbol("stop"),
    ]);
    let nfa = Nfa::compile(&rpe);
    let t_seq = time_us(5, || eval_nfa(&g, g.root(), &nfa));
    println!(
        "graph: {} nodes, {} edges; host cores: {cores}; sequential: {t_seq:.1} µs",
        g.reachable().len(),
        g.edge_count()
    );
    println!("(wall-clock speedup is bounded by host cores; the work profile below gives the partition-determined ideal)");
    println!(
        "{:>6} {:>12} {:>10} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "sites", "blocks µs", "wall spd", "cross", "waves", "ideal spd", "hash µs", "wall spd"
    );
    for &k in &[2usize, 4, 8, 16] {
        let blocks = Partition::index_blocks(&g, k);
        let hash = Partition::hash(&g, k);
        let t_b = time_us(5, || eval_decomposed_nfa(&g, &nfa, &blocks));
        let t_h = time_us(5, || eval_decomposed_nfa(&g, &nfa, &hash));
        let profile =
            semistructured::query::decompose::decomposition_work_profile(&g, &nfa, &blocks);
        println!(
            "{k:>6} {t_b:>12.1} {:>9.2}x {:>8} {:>10} {:>9.2}x {t_h:>12.1} {:>9.2}x",
            t_seq / t_b.max(0.01),
            blocks.cross_edges(&g),
            profile.waves.len(),
            profile.ideal_speedup(),
            t_seq / t_h.max(0.01)
        );
    }
}

fn e12() {
    header("E12 — schemas: conformance, extraction, DataGuide vs 1-index (µs)");
    println!(
        "{:>8} {:>10} {:>13} {:>13} {:>11} {:>11} {:>11} {:>11}",
        "entries",
        "nodes",
        "conform µs",
        "extract µs",
        "guide µs",
        "guide sz",
        "1idx µs",
        "1idx sz"
    );
    for &size in &[30usize, 100, 300] {
        let g = movies(size);
        let schema = ssd_schema::extract_schema_default(&g);
        let t_con = time_us(5, || ssd_schema::conforms(&g, &schema));
        let t_ext = time_us(3, || ssd_schema::extract_schema_default(&g));
        let t_dg = time_us(3, || DataGuide::build(&g));
        let t_oi = time_us(3, || ssd_schema::OneIndex::build(&g));
        let guide = DataGuide::build(&g);
        let oneidx = ssd_schema::OneIndex::build(&g);
        println!(
            "{size:>8} {:>10} {t_con:>13.1} {t_ext:>13.1} {t_dg:>11.1} {:>11} {t_oi:>11.1} {:>11}",
            g.reachable().len(),
            guide.node_count(),
            oneidx.node_count()
        );
    }
    let db = Database::new(movies(100));
    println!(
        "schema of 100-entry DB has {} nodes (constant in data size: structure repeats)",
        db.extract_schema().node_count()
    );
}

fn e15() {
    header("E15 — cost-based vs heuristic optimizer (µs, median of 5)");
    use semistructured::DataStats;
    // The E10 workloads (nothing to reorder: the cost-based pass must
    // not lose) plus a join-reorder case where the expensive `Cast.%*`
    // binding sits before the cheap `Title` binding.
    let selective = parse_query(
        r#"select {t: T} from db.Entry.Movie M, M.Year Y, M.Title T, M.Cast.%* X where Y < 1935"#,
    )
    .unwrap();
    let unselective = parse_query(
        r#"select {t: T} from db.Entry.Movie M, M.Year Y, M.Title T, M.Cast.%* X where Y < 2100"#,
    )
    .unwrap();
    let path3 = parse_query("select T from db.Entry.Movie.Title T").unwrap();
    // Independent bindings in a pessimal order: the cheap, high-
    // cardinality `Entry` scan sits outermost, so the expensive
    // `(!Movie)*` traversal is re-evaluated once per entry; cost-based
    // reordering runs it once and loops the cheap scan instead.
    let reorder =
        parse_query(r#"select {e: E, a: A} from db.Entry E, db.Entry.Movie.(!Movie)*."Actor 1" A"#)
            .unwrap();
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>10} {:>10} {:>10}",
        "entries", "query", "heuristic", "cost-based", "speedup", "heur asgn", "cost asgn"
    );
    for &size in &[100usize, 300] {
        let g = movies(size);
        let schema = ssd_schema::extract_schema_default(&g);
        let stats = DataStats::collect_with_schema(&g, &schema);
        for (name, q) in [
            ("selective", &selective),
            ("unselect.", &unselective),
            ("path3", &path3),
            ("reorder", &reorder),
        ] {
            let (heur, _) = optimizer::optimize(q, Some(&schema));
            let (cost, report) = optimizer::optimize_with_stats(q, Some(&schema), Some(&stats));
            let (rh, sh) = evaluate_select(&g, &heur, &EvalOptions::default()).unwrap();
            let (rc, sc) = evaluate_select(&g, &cost, &EvalOptions::default()).unwrap();
            assert!(
                graphs_bisimilar(&rh, &rc),
                "cost-based reorder changed the result of {name}"
            );
            let t_h = time_us(5, || {
                evaluate_select(&g, &heur, &EvalOptions::default()).unwrap()
            });
            let t_c = time_us(5, || {
                evaluate_select(&g, &cost, &EvalOptions::default()).unwrap()
            });
            let moved = if report.reordered.is_empty() { "" } else { "*" };
            println!(
                "{size:>8} {name:>11}{moved} {t_h:>14.1} {t_c:>14.1} {:>9.2}x {:>10} {:>10}",
                t_h / t_c.max(0.01),
                sh.assignments_tried,
                sc.assignments_tried
            );
        }
    }
    println!("(* = cost model committed a binding reorder; envelopes in OptReport)");
}

/// `fuel=N` token out of a job's DONE summary.
fn job_fuel(summary: &str) -> u64 {
    summary
        .split_whitespace()
        .find_map(|t| t.strip_prefix("fuel="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Replay the scheduler's FIFO dispatch over measured per-job fuel:
/// each job goes to the least-loaded of `workers`; the makespan is the
/// heaviest worker's total. This is the partition-determined ideal the
/// E11 work profile uses, grounded in fuel the jobs actually spent.
fn simulated_makespan(fuels: &[u64], workers: usize) -> u64 {
    let mut load = vec![0u64; workers.max(1)];
    for &f in fuels {
        let i = (0..load.len()).min_by_key(|&i| load[i]).expect("nonempty");
        load[i] += f;
    }
    load.into_iter().max().unwrap_or(0)
}

fn e16() {
    use ssd_serve::{JobKind, ServeConfig, Server, SessionQuota};
    use std::sync::Arc;
    header("E16 — ssd-serve: worker scaling, admission cost, tail latency");

    const JOBS: usize = 32;
    const JOIN: &str = r#"select {p: {t: T, d: D}} from db.Entry.Movie M, M.Title T, M.Director D
                          where exists M.Cast"#;
    let db = Arc::new(Database::new(movies(100)));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let roomy = SessionQuota {
        fuel: None,
        memory: None,
        max_concurrent: JOBS,
        job_fuel: 1 << 40,
        job_memory: 1 << 32,
    };
    let cfg = |workers| ServeConfig {
        workers,
        queue_cap: JOBS * 2,
        ..ServeConfig::default()
    };

    // (a) Throughput scaling, 32 identical join jobs per run.
    println!("host cores: {cores}; wall clock is core-bound — the simulated makespan");
    println!("replays FIFO dispatch over the measured per-job fuel (E11 precedent)");
    println!(
        "{:>8} {:>12} {:>10} {:>16} {:>10}",
        "workers", "wall µs", "wall spd", "sim makespan", "sim spd"
    );
    let mut fuels: Vec<u64> = Vec::new();
    let (mut wall1, mut mk1) = (0.0f64, 0u64);
    let mut scaling_rows: Vec<String> = Vec::new();
    for &w in &[1usize, 2, 4, 8] {
        let server = Server::start(Arc::clone(&db), cfg(w));
        let sess = server.open_session(roomy.clone());
        let t = Instant::now();
        let handles: Vec<_> = (0..JOBS)
            .map(|_| sess.submit(JobKind::Query, JOIN).expect("admitted"))
            .collect();
        let mut run_fuels = Vec::with_capacity(JOBS);
        for h in handles {
            let o = h.wait();
            assert!(o.error.is_none(), "{:?}", o.error);
            run_fuels.push(job_fuel(o.summary.as_deref().unwrap_or("")));
        }
        let wall = t.elapsed().as_secs_f64() * 1e6;
        sess.close();
        server.shutdown();
        if w == 1 {
            fuels = run_fuels;
        }
        let mk = simulated_makespan(&fuels, w);
        if w == 1 {
            (wall1, mk1) = (wall, mk);
        }
        println!(
            "{w:>8} {wall:>12.1} {:>9.2}x {mk:>16} {:>9.2}x",
            wall1 / wall.max(0.01),
            mk1 as f64 / mk.max(1) as f64
        );
        scaling_rows.push(format!(
            "{{\"workers\": {w}, \"wall_us\": {wall:.1}, \"wall_speedup\": {:.3}, \
             \"sim_makespan\": {mk}, \"sim_speedup\": {:.3}}}",
            wall1 / wall.max(0.01),
            mk1 as f64 / mk.max(1) as f64
        ));
    }

    // (b) Admission rejection never reaches the engine.
    let server = Server::start(Arc::clone(&db), cfg(2));
    let sess = server.open_session(SessionQuota {
        job_fuel: 1,
        ..roomy.clone()
    });
    let t = Instant::now();
    let rejected = (0..64)
        .filter(|_| sess.submit(JobKind::Query, JOIN).is_err())
        .count();
    let per = t.elapsed().as_secs_f64() * 1e6 / 64.0;
    sess.close();
    let m = server.shutdown();
    assert_eq!(m.counters.fuel_spent, 0, "rejection must cost no fuel");
    let rej_fuel = m.counters.fuel_spent;
    println!(
        "admission: {rejected}/64 over-ceiling jobs rejected, {per:.1} µs each; \
         engine fuel spent = {} (rejection is free)",
        m.counters.fuel_spent
    );

    // (c) Tail latency under a mixed load, 2 workers.
    let server = Server::start(Arc::clone(&db), cfg(2));
    let sess = server.open_session(roomy.clone());
    let path3 = "select T from db.Entry.Movie.Title T";
    let handles: Vec<_> = (0..JOBS)
        .map(|i| match i % 3 {
            0 => sess.submit(JobKind::Query, JOIN),
            1 => sess.submit(JobKind::Query, path3),
            _ => sess.submit(JobKind::Rpe, "Entry.Movie.Title"),
        })
        .map(|r| r.expect("admitted"))
        .collect();
    for h in handles {
        let o = h.wait();
        assert!(o.error.is_none(), "{:?}", o.error);
    }
    sess.close();
    let m = server.shutdown();
    let (p50, p99) = (m.latency.percentile(50), m.latency.percentile(99));
    println!(
        "mixed load ({JOBS} jobs, 2 workers): p50={p50} µs p99={p99} µs queue peak={} \
         fuel est/spent={}/{}",
        m.queue_peak, m.counters.fuel_estimated, m.counters.fuel_spent
    );

    write_json(
        "BENCH_serve.json",
        &format!(
            "{{\n  {}\n  \
             \"jobs\": {JOBS},\n  \"scaling\": [\n    {}\n  ],\n  \
             \"admission\": {{\"rejected\": {rejected}, \"per_us\": {per:.1}, \
             \"engine_fuel_spent\": {rej_fuel}}},\n  \
             \"mixed_load\": {{\"workers\": 2, \"p50_us\": {p50}, \"p99_us\": {p99}, \
             \"queue_peak\": {}, \"fuel_estimated\": {}, \"fuel_spent\": {}}}\n}}\n",
            envelope("E16"),
            scaling_rows.join(",\n    "),
            m.queue_peak,
            m.counters.fuel_estimated,
            m.counters.fuel_spent,
        ),
    );
}

fn e17() {
    use semistructured::query::evaluate_select;
    use semistructured::trace::{JsonlSink, SharedRing, Tracer, DEFAULT_RING_CAP};
    use semistructured::{Budget, EvalOptions};
    header("E17 — tracing overhead on the E3 select workload");

    const JOIN: &str = r#"select {p: {t: T, d: D}} from db.Entry.Movie M, M.Title T, M.Director D
                          where exists M.Cast"#;
    // An active budget that never trips: tracing reads fuel/memory off
    // the guard, so every variant pays the same guard cost and the
    // comparison isolates the tracer (same setup as benches/e17_trace.rs).
    let roomy = || {
        Budget::unlimited()
            .max_steps(u64::MAX / 2)
            .max_memory_mb(1 << 20)
            .max_depth(1 << 20)
            .timeout(std::time::Duration::from_secs(3600))
    };
    let g = movies(1000);
    let q = semistructured::query::parse_query(JOIN).unwrap();

    let baseline = time_us(15, || {
        let guard = roomy().guard();
        evaluate_select(&g, &q, &EvalOptions::default().with_guard(&guard)).unwrap()
    });
    let mut events = 0usize;
    let ring = SharedRing::new(DEFAULT_RING_CAP);
    let ring_tracer = Tracer::with_sink(Box::new(ring.clone()));
    let ring_t = time_us(15, || {
        let guard = roomy().guard();
        let r = evaluate_select(
            &g,
            &q,
            &EvalOptions::default()
                .with_guard(&guard)
                .with_tracer(&ring_tracer),
        )
        .unwrap();
        ring_tracer.flush();
        events = ring.take().len();
        r
    });
    let jsonl_tracer = Tracer::with_sink(Box::new(JsonlSink::new(std::io::sink())));
    let jsonl = time_us(15, || {
        let guard = roomy().guard();
        let r = evaluate_select(
            &g,
            &q,
            &EvalOptions::default()
                .with_guard(&guard)
                .with_tracer(&jsonl_tracer),
        )
        .unwrap();
        jsonl_tracer.flush();
        r
    });

    let pct = |v: f64| (v / baseline.max(0.01) - 1.0) * 100.0;
    println!("select join over movies(1000), median of 15 runs:");
    println!("{:>10} {:>12} {:>10}", "variant", "median µs", "overhead");
    println!("{:>10} {baseline:>12.1} {:>10}", "baseline", "—");
    println!(
        "{:>10} {ring_t:>12.1} {:>9.1}%  ({events} event(s))",
        "ring",
        pct(ring_t)
    );
    println!("{:>10} {jsonl:>12.1} {:>9.1}%", "jsonl", pct(jsonl));

    write_json(
        "BENCH_trace.json",
        &format!(
            "{{\n  {}\n  \
             \"workload\": \"select join, movies(1000), median of 15 runs\",\n  \
             \"variants\": [\n    \
             {{\"name\": \"baseline\", \"median_us\": {baseline:.1}}},\n    \
             {{\"name\": \"ring\", \"median_us\": {ring_t:.1}, \"overhead_pct\": {:.2}, \
             \"events\": {events}}},\n    \
             {{\"name\": \"jsonl\", \"median_us\": {jsonl:.1}, \"overhead_pct\": {:.2}}}\n  ]\n}}\n",
            envelope("E17"),
            pct(ring_t),
            pct(jsonl),
        ),
    );
}

fn e18() {
    use semistructured::Budget;
    use ssd_store::{Op, Store, Txn};
    header("E18 — durable commit and recovery-replay throughput");

    let dir = std::env::temp_dir().join(format!("ssd-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let seed = Database::from_literal("{Seed: {Tag: \"bench\"}}").expect("seed");
    Store::init(&dir, &seed).expect("init store");
    let (store, _) = Store::open(&dir, &Budget::unlimited()).expect("open store");

    // Each commit is one op frame + one COMMIT frame + one fsync — the
    // dominant cost is the fsync, which is the honest number for a
    // durability layer.
    const TXNS: u64 = 200;
    let t = Instant::now();
    for i in 0..TXNS {
        let mut txn = Txn::new();
        txn.push(Op::Insert(format!("{{T{i}: {{N: {i}}}}}")));
        store.commit(&txn).expect("commit");
    }
    let commit_total_us = t.elapsed().as_secs_f64() * 1e6;
    let wal_bytes = store.wal_len();
    let generation = store.generation();
    drop(store);

    // Recovery replays the whole log (scan + checksum + apply) on every
    // open; the reopened store must land on the same generation.
    let recover_us = time_us(9, || {
        let (s, r) = Store::open(&dir, &Budget::unlimited()).expect("reopen");
        assert_eq!(r.txns_replayed, TXNS);
        s
    });

    let per_commit = commit_total_us / TXNS as f64;
    let replay_per_txn = recover_us / TXNS as f64;
    println!(
        "{TXNS} single-op txns: {per_commit:.1} µs/commit ({:.0} commits/s), wal={wal_bytes} B",
        1e6 / per_commit.max(0.01)
    );
    println!(
        "recovery replay: {recover_us:.1} µs total, {replay_per_txn:.2} µs/txn, \
         generation={generation}"
    );

    write_json(
        "BENCH_store.json",
        &format!(
            "{{\n  {}\n  \
             \"workload\": \"{TXNS} single-op commits, then recovery replay (median of 9)\",\n  \
             \"commit\": {{\"txns\": {TXNS}, \"per_commit_us\": {per_commit:.1}, \
             \"wal_bytes\": {wal_bytes}}},\n  \
             \"recovery\": {{\"total_us\": {recover_us:.1}, \
             \"per_txn_us\": {replay_per_txn:.2}, \"generation\": {generation}}}\n}}\n",
            envelope("E18"),
        ),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn e19() {
    header("E19 — static analysis: full-workspace lint pass");

    // The lint pass runs in CI on every change, so its wall-clock is a
    // budget worth tracking: ten passes (five intraprocedural, five on
    // the interprocedural call graph with fixpoint effect summaries)
    // over every source file in the workspace.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = match ssd_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint pass skipped: {e}");
            return;
        }
    };
    let wall_us = time_us(5, || ssd_lint::lint_workspace(&root).expect("lint"));
    let files = report.files_scanned;
    let functions = report.functions_scanned;
    let findings = report.findings.len();
    let per_file = wall_us / files.max(1) as f64;
    println!(
        "full workspace lint (median of 5): {:.1} ms total, {per_file:.0} µs/file \
         ({files} files, {functions} functions, {findings} findings)",
        wall_us / 1e3
    );

    write_json(
        "BENCH_lint.json",
        &format!(
            "{{\n  {}\n  \
             \"workload\": \"ssd lint over the whole workspace (median of 5)\",\n  \
             \"wall_us\": {wall_us:.1},\n  \"per_file_us\": {per_file:.1},\n  \
             \"files_scanned\": {files},\n  \"functions_scanned\": {functions},\n  \
             \"findings\": {findings}\n}}\n",
            envelope("E19"),
        ),
    );
}

fn e20() {
    header("E20 — batched columnar execution vs interpreter (µs, median of 9)");
    use semistructured::query::{evaluate_batched, plan_access};
    use semistructured::{DataStats, TripleIndex};

    // Batchable stand-ins for the E3/E5/E10 workloads: the E3 join; the
    // E5 three-step path and its σ-label analog (a selective lookup the
    // POS permutation answers directly, E5's "σ-label index" column as a
    // full select query); and the E10 selective filter without its
    // (unbatchable) `%*` tail.
    let cases: [(&str, &str); 4] = [
        (
            "E3-join",
            r#"select {p: {t: T, d: D}} from db.Entry.Movie M, M.Title T, M.Director D
               where exists M.Cast"#,
        ),
        ("E5-path3", "select T from db.Entry.Movie.Title T"),
        (
            "E5-sigma",
            r#"select X from db.Entry.Movie.Title."Movie 7" X"#,
        ),
        (
            "E10-filter",
            r#"select {t: T} from db.Entry.Movie M, M.Year Y, M.Title T where Y < 1935"#,
        ),
    ];
    println!(
        "{:>8} {:>12} {:>14} {:>12} {:>10} {:>9}",
        "entries", "query", "interpreter", "batched", "speedup", "results"
    );
    let mut rows = Vec::new();
    for &size in &[30usize, 100, 300] {
        let g = movies(size);
        let index = TripleIndex::build(&g).expect("index build");
        let stats = DataStats::collect(&g);
        for (name, text) in &cases {
            let q = parse_query(text).unwrap();
            let plan = plan_access(&g, &index, &stats, &q).expect("plannable");
            let t_interp = time_us(9, || {
                evaluate_select(&g, &q, &EvalOptions::default()).unwrap()
            });
            let t_batch = time_us(9, || {
                evaluate_batched(&g, &index, &q, &plan, &EvalOptions::default()).unwrap()
            });
            let (_, bstats) =
                evaluate_batched(&g, &index, &q, &plan, &EvalOptions::default()).unwrap();
            let speedup = t_interp / t_batch.max(0.001);
            println!(
                "{size:>8} {name:>12} {t_interp:>14.1} {t_batch:>12.1} {speedup:>9.1}x {:>9}",
                bstats.results_constructed
            );
            rows.push(format!(
                "    {{\"entries\": {size}, \"query\": \"{name}\", \
                 \"interp_us\": {t_interp:.1}, \"batched_us\": {t_batch:.1}, \
                 \"speedup\": {speedup:.2}, \"results\": {}}}",
                bstats.results_constructed
            ));
        }
    }
    write_json(
        "BENCH_index.json",
        &format!(
            "{{\n  {}\n  \
             \"workload\": \"interpreter vs batched merge-join pipeline on the movie DB (median of 9)\",\n  \
             \"rows\": [\n{}\n  ]\n}}\n",
            envelope("E20"),
            rows.join(",\n")
        ),
    );
}
