//! The leaf-value model of \[5\] (Lorel): `type tree = base | set(symbol × tree)`.
//!
//! Data sits only at the leaves; internal edges carry only symbols. The
//! mapping to the primary edge-labeled model replaces each leaf value `v`
//! with a node carrying a single value edge `{v: {}}`; the inverse mapping
//! recognises exactly that pattern. Both directions are provided, with the
//! round-trip property tested below — this is the "easy to define mappings
//! in both directions" claim of §2 made executable.

use crate::graph::{Graph, NodeId};
use crate::label::Label;
use crate::value::Value;
use std::collections::HashMap;

/// A finite tree in the leaf-value model. (This variant is a *tree* type:
/// Lorel's graphs add OIDs separately — cycles are handled on the graph
/// side; converting a cyclic graph to `LeafTree` requires a depth bound.)
#[derive(Debug, Clone, PartialEq)]
pub enum LeafTree {
    /// A leaf holding a base value.
    Base(Value),
    /// An internal node: a set of symbol-labeled children.
    Node(Vec<(String, LeafTree)>),
}

/// Errors converting between models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VariantError {
    /// The graph contains a cycle and no depth bound was given.
    Cyclic,
    /// A value label occurs on an internal edge where the leaf-value model
    /// cannot express it (mixed atom: a node with a value edge *and* other
    /// edges, or a value edge to a non-leaf).
    MixedAtom(NodeId),
    /// Depth bound exceeded during bounded unfolding.
    DepthExceeded,
}

impl std::fmt::Display for VariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VariantError::Cyclic => write!(f, "graph is cyclic; use to_leaf_tree_bounded"),
            VariantError::MixedAtom(n) => write!(
                f,
                "node {n} mixes a value edge with other edges; not expressible in the leaf-value model"
            ),
            VariantError::DepthExceeded => write!(f, "depth bound exceeded"),
        }
    }
}

impl std::error::Error for VariantError {}

impl LeafTree {
    /// The empty set `{}`.
    pub fn empty() -> LeafTree {
        LeafTree::Node(Vec::new())
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        match self {
            LeafTree::Base(_) => 1,
            LeafTree::Node(children) => 1 + children.iter().map(|(_, t)| t.size()).sum::<usize>(),
        }
    }

    /// Convert into the primary edge-labeled model, appended to `g`.
    /// Returns the root of the converted subtree.
    pub fn to_graph(&self, g: &mut Graph) -> NodeId {
        match self {
            LeafTree::Base(v) => {
                let n = g.add_node();
                g.add_value_edge(n, v.clone());
                n
            }
            LeafTree::Node(children) => {
                let n = g.add_node();
                for (sym, sub) in children {
                    let child = sub.to_graph(g);
                    let label = Label::symbol(g.symbols(), sym);
                    g.add_edge(n, label, child);
                }
                n
            }
        }
    }

    /// Convert into a fresh rooted graph.
    pub fn into_graph(&self) -> Graph {
        let mut g = Graph::new();
        let root = self.to_graph(&mut g);
        g.set_root(root);
        g.gc();
        g
    }

    /// Convert a (subtree of a) graph back into the leaf-value model.
    ///
    /// Fails on cycles ([`VariantError::Cyclic`]) and on structures the
    /// leaf-value model cannot express ([`VariantError::MixedAtom`]).
    pub fn from_graph(g: &Graph, node: NodeId) -> Result<LeafTree, VariantError> {
        let mut on_path: HashMap<NodeId, bool> = HashMap::new();
        Self::from_graph_inner(g, node, &mut on_path, None, 0)
    }

    /// Like [`LeafTree::from_graph`], but unfold cycles up to `depth` edges
    /// deep (the finite approximation of the infinite unfolding).
    pub fn from_graph_bounded(
        g: &Graph,
        node: NodeId,
        depth: usize,
    ) -> Result<LeafTree, VariantError> {
        let mut on_path: HashMap<NodeId, bool> = HashMap::new();
        Self::from_graph_inner(g, node, &mut on_path, Some(depth), 0)
    }

    fn from_graph_inner(
        g: &Graph,
        node: NodeId,
        on_path: &mut HashMap<NodeId, bool>,
        bound: Option<usize>,
        depth: usize,
    ) -> Result<LeafTree, VariantError> {
        if let Some(b) = bound {
            // Bounded mode: unfold freely (cycles included) and truncate the
            // unfolding at the bound with an empty set.
            if depth > b {
                return Ok(LeafTree::empty());
            }
        } else if *on_path.get(&node).unwrap_or(&false) {
            return Err(VariantError::Cyclic);
        }
        if let Some(v) = g.atomic_value(node) {
            return Ok(LeafTree::Base(v.clone()));
        }
        let edges = g.edges(node);
        if edges.iter().any(|e| e.label.is_value()) {
            return Err(VariantError::MixedAtom(node));
        }
        on_path.insert(node, true);
        let mut children = Vec::with_capacity(edges.len());
        for e in edges {
            let sym = match &e.label {
                Label::Symbol(s) => g.symbols().resolve(*s).to_string(),
                Label::Value(_) => unreachable!("value edges rejected above"),
            };
            let sub = Self::from_graph_inner(g, e.to, on_path, bound, depth + 1)?;
            children.push((sym, sub));
        }
        on_path.insert(node, false);
        Ok(LeafTree::Node(children))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisim::graphs_bisimilar;
    use crate::literal::parse_graph;

    fn sample() -> LeafTree {
        LeafTree::Node(vec![
            (
                "Movie".into(),
                LeafTree::Node(vec![
                    ("Title".into(), LeafTree::Base(Value::Str("C".into()))),
                    ("Year".into(), LeafTree::Base(Value::Int(1942))),
                ]),
            ),
            ("Count".into(), LeafTree::Base(Value::Int(2))),
        ])
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(sample().size(), 5);
        assert_eq!(LeafTree::empty().size(), 1);
    }

    #[test]
    fn to_graph_produces_expected_structure() {
        let g = sample().into_graph();
        let expect = parse_graph(r#"{Movie: {Title: "C", Year: 1942}, Count: 2}"#).unwrap();
        assert!(graphs_bisimilar(&g, &expect));
    }

    #[test]
    fn round_trip_preserves_tree() {
        let t = sample();
        let g = t.into_graph();
        let t2 = LeafTree::from_graph(&g, g.root()).unwrap();
        // The round-trip preserves the tree up to child order; normalise by
        // converting back to graphs and comparing bisimilarity.
        assert!(graphs_bisimilar(&g, &t2.into_graph()));
    }

    #[test]
    fn cyclic_graph_rejected_without_bound() {
        let g = parse_graph("@x = {next: @x}").unwrap();
        assert_eq!(
            LeafTree::from_graph(&g, g.root()),
            Err(VariantError::Cyclic)
        );
    }

    #[test]
    fn bounded_unfolding_truncates_cycles() {
        let g = parse_graph("@x = {next: @x}").unwrap();
        let t = LeafTree::from_graph_bounded(&g, g.root(), 3).unwrap();
        // next^k nesting up to the bound, then {}.
        let mut depth = 0;
        let mut cur = &t;
        while let LeafTree::Node(children) = cur {
            if children.is_empty() {
                break;
            }
            assert_eq!(children.len(), 1);
            assert_eq!(children[0].0, "next");
            cur = &children[0].1;
            depth += 1;
        }
        assert!(depth >= 3);
    }

    #[test]
    fn shared_dag_unfolds_to_duplicate_subtrees() {
        // DAG sharing is legal (no cycle); the tree duplicates the shared part.
        let g = parse_graph("{a: @s = {v: 1}, b: @s}").unwrap();
        let t = LeafTree::from_graph(&g, g.root()).unwrap();
        match &t {
            LeafTree::Node(children) => {
                assert_eq!(children.len(), 2);
                assert_eq!(children[0].1, children[1].1);
            }
            _ => panic!("expected node"),
        }
    }

    #[test]
    fn mixed_atom_rejected() {
        let g = parse_graph(r#"{m: {Title: "C", 42}}"#).unwrap();
        let m = g.successors_by_name(g.root(), "m")[0];
        assert_eq!(LeafTree::from_graph(&g, m), Err(VariantError::MixedAtom(m)));
    }

    #[test]
    fn base_at_root() {
        let t = LeafTree::Base(Value::Int(7));
        let g = t.into_graph();
        assert_eq!(g.atomic_value(g.root()), Some(&Value::Int(7)));
        assert_eq!(LeafTree::from_graph(&g, g.root()).unwrap(), t);
    }
}
