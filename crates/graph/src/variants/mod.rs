//! The model variants surveyed in §2.
//!
//! Besides the primary edge-labeled model (`type tree = set(label × tree)`),
//! the paper reviews two variations and notes that "the differences between
//! the two models are minor ... It is easy to define mappings in both
//! directions":
//!
//! * [`leaf_value`] — the Lorel-style model where "leaf nodes are labeled
//!   with data, internal nodes are not labeled with meaningful data, and
//!   edges are labeled only with symbols":
//!   `type tree = base | set(symbol × tree)`.
//! * [`node_labeled`] — the variant that "allows labels on internal nodes":
//!   `type tree = label × set(label × tree)`; union is awkward here, and the
//!   conversion to the edge-labeled model "introduc\[es\] extra edges".

pub mod leaf_value;
pub mod node_labeled;

pub use leaf_value::LeafTree;
pub use node_labeled::NodeLabeledGraph;
