//! The node-labeled variant: `type tree = label × set(label × tree)`.
//!
//! §2: "Another possibility is to allow labels on internal nodes ... The
//! problem with using this representation directly is that it makes the
//! operation of taking the union of two trees difficult to define. However,
//! by introducing extra edges, this representation can be converted into one
//! of the edge-labelled representations above."
//!
//! We implement the variant as a graph whose *nodes* carry labels, plus the
//! conversion that pushes each node label down a fresh edge. The
//! difficulty with union is demonstrated in the tests: two node-labeled
//! trees with different root labels have no canonical union, whereas their
//! edge-labeled conversions union trivially.

use crate::graph::{Graph, NodeId};
use crate::label::Label;
use crate::symbol::{new_symbols, Symbols};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier for a node in a [`NodeLabeledGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NlNodeId(u32);

impl NlNodeId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct NlNode {
    label: Label,
    edges: Vec<(Label, NlNodeId)>,
}

/// A rooted graph in the node-labeled model.
#[derive(Debug, Clone)]
pub struct NodeLabeledGraph {
    nodes: Vec<NlNode>,
    root: NlNodeId,
    symbols: Symbols,
}

impl NodeLabeledGraph {
    /// Create a graph with a labeled root.
    pub fn new(root_label: Label) -> Self {
        NodeLabeledGraph::with_symbols(root_label, new_symbols())
    }

    pub fn with_symbols(root_label: Label, symbols: Symbols) -> Self {
        NodeLabeledGraph {
            nodes: vec![NlNode {
                label: root_label,
                edges: Vec::new(),
            }],
            root: NlNodeId(0),
            symbols,
        }
    }

    pub fn symbols(&self) -> &crate::symbol::SymbolTable {
        &self.symbols
    }

    pub fn root(&self) -> NlNodeId {
        self.root
    }

    pub fn add_node(&mut self, label: Label) -> NlNodeId {
        let id = NlNodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.nodes.push(NlNode {
            label,
            edges: Vec::new(),
        });
        id
    }

    pub fn add_edge(&mut self, from: NlNodeId, label: Label, to: NlNodeId) {
        let entry = (label, to);
        let edges = &mut self.nodes[from.index()].edges;
        if !edges.contains(&entry) {
            edges.push(entry);
        }
    }

    pub fn node_label(&self, n: NlNodeId) -> &Label {
        &self.nodes[n.index()].label
    }

    pub fn edges(&self, n: NlNodeId) -> &[(Label, NlNodeId)] {
        &self.nodes[n.index()].edges
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Convert to the edge-labeled model by *introducing extra edges*: each
    /// node `n` with label `l` contributes an extra edge `n --l--> leaf` (a
    /// fresh leaf shared per label), so node labels become observable data.
    ///
    /// The symbol table is shared with the output graph.
    pub fn to_edge_labeled(&self) -> Graph {
        let mut g = Graph::with_symbols(Arc::clone(&self.symbols));
        let mut map: HashMap<NlNodeId, NodeId> = HashMap::new();
        for (i, _) in self.nodes.iter().enumerate() {
            let id = NlNodeId(i as u32);
            let img = if id == self.root {
                g.root()
            } else {
                g.add_node()
            };
            map.insert(id, img);
        }
        // One shared leaf for all node-label edges keeps the output small.
        let leaf = g.add_node();
        for (i, node) in self.nodes.iter().enumerate() {
            let from = map[&NlNodeId(i as u32)];
            // The "extra edge" carrying the node label.
            g.add_edge(from, node.label.clone(), leaf);
            for (l, to) in &node.edges {
                g.add_edge(from, l.clone(), map[to]);
            }
        }
        g.gc();
        g
    }

    /// Inverse of [`to_edge_labeled`](Self::to_edge_labeled) for graphs in
    /// its image: a node's label is the label of its unique edge to a leaf
    /// that is designated as the label-carrier. Since the encoding is not
    /// injective in general, this heuristic decoder takes the first edge to
    /// a leaf node as the node label and treats the remaining edges as
    /// children. Returns `None` for nodes with no leaf edge.
    pub fn from_edge_labeled(g: &Graph) -> Option<NodeLabeledGraph> {
        let reachable = g.reachable();
        // Determine each node's label edge: first edge whose target is a leaf
        // shared by... we accept: first edge to a leaf.
        let mut labels: HashMap<NodeId, Label> = HashMap::new();
        for &n in &reachable {
            if g.is_leaf(n) {
                continue; // pure label-carrier leaves are dropped below
            }
            let label_edge = g.edges(n).iter().find(|e| g.is_leaf(e.to))?;
            labels.insert(n, label_edge.label.clone());
        }
        let mut out = NodeLabeledGraph::with_symbols(labels[&g.root()].clone(), g.symbols_handle());
        let mut map: HashMap<NodeId, NlNodeId> = HashMap::new();
        map.insert(g.root(), out.root());
        for &n in &reachable {
            if n == g.root() {
                continue;
            }
            // Leaf nodes that only carry labels are dropped.
            if g.is_leaf(n) {
                continue;
            }
            let id = out.add_node(labels[&n].clone());
            map.insert(n, id);
        }
        for &n in &reachable {
            if g.is_leaf(n) {
                continue;
            }
            let mut label_taken = false;
            for e in g.edges(n) {
                if g.is_leaf(e.to) {
                    if !label_taken && e.label == labels[&n] {
                        label_taken = true;
                        continue; // this is the node-label edge
                    }
                    // Other leaf edges become leaf children labeled by their
                    // edge label with an empty node label — skip: not
                    // representable faithfully; drop.
                    continue;
                }
                out.add_edge(map[&n], e.label.clone(), map[&e.to]);
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::value::Value;

    fn sample() -> NodeLabeledGraph {
        let syms = new_symbols();
        let mut g =
            NodeLabeledGraph::with_symbols(Label::Symbol(syms.intern("db")), Arc::clone(&syms));
        let movie = g.add_node(Label::Symbol(syms.intern("movie-obj")));
        let title = g.add_node(Label::Value(Value::Str("Casablanca".into())));
        g.add_edge(g.root(), Label::Symbol(syms.intern("Movie")), movie);
        g.add_edge(movie, Label::Symbol(syms.intern("Title")), title);
        g
    }

    #[test]
    fn construction_and_access() {
        let g = sample();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edges(g.root()).len(), 1);
        let movie = g.edges(g.root())[0].1;
        assert_eq!(
            g.node_label(movie).as_symbol(),
            Some(g.symbols().get("movie-obj").unwrap())
        );
    }

    #[test]
    fn conversion_introduces_extra_edges() {
        let nl = sample();
        let g = nl.to_edge_labeled();
        // Root gets its label as an extra edge to a leaf.
        assert!(g
            .edges(g.root())
            .iter()
            .any(|e| e.label == Label::Symbol(g.symbols().get("db").unwrap()) && g.is_leaf(e.to)));
        // Structural edge survives.
        assert_eq!(g.successors_by_name(g.root(), "Movie").len(), 1);
    }

    #[test]
    fn union_is_trivial_after_conversion() {
        // Two node-labeled trees with *different root labels* have no
        // canonical union in the node-labeled model (which label does the
        // union root carry?). After conversion, union is edge-set union and
        // both labels survive as extra edges.
        let syms = new_symbols();
        let a = NodeLabeledGraph::with_symbols(Label::Symbol(syms.intern("A")), Arc::clone(&syms));
        let b = NodeLabeledGraph::with_symbols(Label::Symbol(syms.intern("B")), Arc::clone(&syms));
        let ga = a.to_edge_labeled();
        let gb = b.to_edge_labeled();
        let mut merged = Graph::with_symbols(Arc::clone(&syms));
        let ra = ops::copy_subgraph(&ga, ga.root(), &mut merged);
        let rb = ops::copy_subgraph(&gb, gb.root(), &mut merged);
        let u = ops::union(&mut merged, ra, rb);
        merged.set_root(u);
        // Both original node labels visible on the union root.
        assert_eq!(merged.successors_by_name(u, "A").len(), 1);
        assert_eq!(merged.successors_by_name(u, "B").len(), 1);
    }

    #[test]
    fn decoder_recovers_structure() {
        let nl = sample();
        let g = nl.to_edge_labeled();
        let back = NodeLabeledGraph::from_edge_labeled(&g).expect("decodable");
        assert_eq!(back.node_label(back.root()), nl.node_label(nl.root()));
        // Root has one structural child with the same edge label.
        assert_eq!(back.edges(back.root()).len(), 1);
        assert_eq!(back.edges(back.root())[0].0, nl.edges(nl.root())[0].0);
    }

    #[test]
    fn decoder_fails_without_label_edges() {
        // A plain edge-labeled graph whose internal nodes have no leaf edge
        // cannot be decoded.
        let g = crate::literal::parse_graph("@x = {a: @x}").unwrap();
        assert!(NodeLabeledGraph::from_edge_labeled(&g).is_none());
    }

    #[test]
    fn cyclic_node_labeled_graph_converts() {
        let syms = new_symbols();
        let mut nl =
            NodeLabeledGraph::with_symbols(Label::Symbol(syms.intern("loop")), Arc::clone(&syms));
        nl.add_edge(nl.root(), Label::Symbol(syms.intern("next")), nl.root());
        let g = nl.to_edge_labeled();
        assert!(g.has_cycle());
    }
}
