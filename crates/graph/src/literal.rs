//! Textual data syntax for semistructured values.
//!
//! The tutorial (and UnQL) write data as nested set braces:
//!
//! ```text
//! { Entry: { Movie: { Title: "Casablanca",
//!                     Cast:  { Actors: "Bogart", Actors: "Bacall" },
//!                     Director: "Curtiz" } } }
//! ```
//!
//! Grammar:
//!
//! ```text
//! tree   := node | value | '@' IDENT | '@' IDENT '=' tree
//! node   := '{' [entry (',' entry)*] '}'
//! entry  := label ':' tree
//!         | label                     -- sugar for `label: {}`
//! label  := IDENT | STRING | INT | REAL | 'true' | 'false'
//! value  := STRING | INT | REAL | 'true' | 'false'
//! ```
//!
//! A bare value in tree position desugars to `{value: {}}` (an atom).
//! `@name = tree` defines a shared node; `@name` references it — this is the
//! textual form of OEM object identities used as "place-holders to define
//! trees" (§2), and is how cyclic instances like Figure 1's
//! `References`/`Is referenced in` loop are written.

use crate::builder::{LabelSpec, TreeBuilder, TreeSpec};
use crate::graph::{Graph, NodeId};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted by the recursive-descent parsers
/// (literal, JSON, XML). Deeper inputs get an SSD110 parse error instead
/// of overflowing the stack.
pub const MAX_PARSE_DEPTH: usize = 256;

/// The SSD110 message used by all three parsers when input nests too deep.
pub(crate) fn depth_message() -> String {
    ssd_diag::Diagnostic::new(
        ssd_diag::Code::ParseDepthExceeded,
        format!("input nests deeper than {MAX_PARSE_DEPTH} levels"),
    )
    .headline()
}

/// Error from [`parse_tree`] / [`parse_graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub at: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src,
            pos: 0,
            depth: 0,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        loop {
            let r = self.rest();
            let trimmed = r.trim_start();
            self.pos += r.len() - trimmed.len();
            // Line comments with `#`.
            if self.rest().starts_with('#') {
                match self.rest().find('\n') {
                    Some(i) => self.pos += i + 1,
                    None => self.pos = self.src.len(),
                }
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest().chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            self.err(format!("expected '{c}'"))
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let r = self.rest();
        let mut end = 0;
        for (i, ch) in r.char_indices() {
            let ok = if i == 0 {
                ch.is_alphabetic() || ch == '_'
            } else {
                ch.is_alphanumeric() || ch == '_' || ch == '-'
            };
            if ok {
                end = i + ch.len_utf8();
            } else {
                break;
            }
        }
        if end == 0 {
            None
        } else {
            let s = &r[..end];
            self.pos += end;
            Some(s.to_owned())
        }
    }

    fn string_lit(&mut self) -> Result<String, ParseError> {
        // Caller has seen the opening quote.
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.rest().char_indices();
        while let Some((i, ch)) = chars.next() {
            match ch {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '"')) => out.push('"'),
                    Some((_, other)) => {
                        self.pos += i;
                        return self.err(format!("bad escape '\\{other}'"));
                    }
                    None => {
                        self.pos += i;
                        return self.err("unterminated escape");
                    }
                },
                _ => out.push(ch),
            }
        }
        self.err("unterminated string literal")
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        let r = self.rest();
        let mut end = 0;
        let mut is_real = false;
        for (i, ch) in r.char_indices() {
            match ch {
                '0'..='9' => end = i + 1,
                '-' | '+' if i == 0 => end = i + 1,
                '.' | 'e' | 'E' => {
                    is_real = true;
                    end = i + 1;
                }
                '-' | '+' if is_real && (r.as_bytes()[i - 1] | 0x20) == b'e' => end = i + 1,
                _ => break,
            }
        }
        if end == 0 {
            return self.err("expected number");
        }
        let text = &r[..end];
        self.pos += end;
        if is_real {
            text.parse::<f64>()
                .map(Value::Real)
                .or_else(|_| self.err(format!("bad real literal '{text}'")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| self.err(format!("bad int literal '{text}'")))
        }
    }

    /// A label: identifier (symbol), string/number/bool (value).
    fn label(&mut self) -> Result<LabelSpec, ParseError> {
        match self.peek() {
            Some('"') => Ok(LabelSpec::Value(Value::Str(self.string_lit()?))),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => {
                Ok(LabelSpec::Value(self.number()?))
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let Some(id) = self.ident() else {
                    return self.err("expected label identifier");
                };
                match id.as_str() {
                    "true" => Ok(LabelSpec::Value(Value::Bool(true))),
                    "false" => Ok(LabelSpec::Value(Value::Bool(false))),
                    _ => Ok(LabelSpec::Symbol(id)),
                }
            }
            _ => self.err("expected label"),
        }
    }

    fn tree(&mut self) -> Result<TreeSpec, ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return self.err(depth_message());
        }
        let out = self.tree_inner();
        self.depth -= 1;
        out
    }

    fn tree_inner(&mut self) -> Result<TreeSpec, ParseError> {
        match self.peek() {
            Some('{') => self.node(),
            Some('@') => {
                self.expect('@')?;
                let name = match self.ident() {
                    Some(n) => n,
                    None => return self.err("expected name after '@'"),
                };
                if self.eat('=') {
                    let sub = self.tree()?;
                    Ok(TreeSpec::Def(name, Box::new(sub)))
                } else {
                    Ok(TreeSpec::Ref(name))
                }
            }
            Some('"') => Ok(TreeSpec::Atom(Value::Str(self.string_lit()?))),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => {
                Ok(TreeSpec::Atom(self.number()?))
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                // Bare identifier in tree position: true/false are atoms,
                // anything else is an error (labels go on edges).
                let save = self.pos;
                let Some(id) = self.ident() else {
                    return self.err("expected identifier");
                };
                match id.as_str() {
                    "true" => Ok(TreeSpec::Atom(Value::Bool(true))),
                    "false" => Ok(TreeSpec::Atom(Value::Bool(false))),
                    _ => {
                        self.pos = save;
                        self.err(format!("unexpected identifier '{id}' in tree position"))
                    }
                }
            }
            _ => self.err("expected tree"),
        }
    }

    fn node(&mut self) -> Result<TreeSpec, ParseError> {
        self.expect('{')?;
        let mut entries = Vec::new();
        if self.eat('}') {
            return Ok(TreeSpec::Node(entries));
        }
        loop {
            let label = self.label()?;
            let sub = if self.eat(':') {
                self.tree()?
            } else {
                TreeSpec::empty()
            };
            entries.push((label, sub));
            if self.eat(',') {
                // Allow trailing comma.
                if self.peek() == Some('}') {
                    self.expect('}')?;
                    break;
                }
                continue;
            }
            self.expect('}')?;
            break;
        }
        Ok(TreeSpec::Node(entries))
    }
}

/// Parse the textual data syntax into a [`TreeSpec`].
pub fn parse_tree(src: &str) -> Result<TreeSpec, ParseError> {
    let mut p = Parser::new(src);
    let t = p.tree()?;
    p.skip_ws();
    if p.pos != src.len() {
        return p.err("trailing input after tree");
    }
    Ok(t)
}

/// Parse the textual data syntax directly into a fresh rooted [`Graph`].
pub fn parse_graph(src: &str) -> Result<Graph, ParseError> {
    let spec = parse_tree(src)?;
    if let Err(msg) = crate::builder::check_refs(&spec) {
        return Err(ParseError {
            at: src.len(),
            message: msg,
        });
    }
    let mut g = Graph::new();
    let root = {
        let mut b = TreeBuilder::new(&mut g);
        b.build(&spec)
    };
    g.set_root(root);
    g.gc();
    Ok(g)
}

/// Serialize the subgraph reachable from `node` back to the textual syntax.
///
/// Nodes with in-degree > 1 (shared) or on a cycle are emitted once with an
/// `@nK = ...` definition and referenced as `@nK` thereafter, so the output
/// round-trips through [`parse_graph`] up to bisimulation (in fact up to
/// isomorphism of the reachable subgraph).
pub fn write_tree(g: &Graph, node: NodeId) -> String {
    // Count in-degrees within the reachable subgraph.
    let reachable = g.reachable_from(node);
    let mut indeg: HashMap<NodeId, usize> = HashMap::new();
    for &n in &reachable {
        for e in g.edges(n) {
            *indeg.entry(e.to).or_insert(0) += 1;
        }
    }
    // Nodes needing a name: in-degree > 1, or involved in a cycle (detected
    // as back edges during the DFS below — conservatively we name any node
    // we re-enter while it is still being printed).
    let mut out = String::new();
    let mut state: HashMap<NodeId, u8> = HashMap::new(); // 1 = printing, 2 = done
    let mut names: HashMap<NodeId, usize> = HashMap::new();
    let mut next_name = 0usize;

    // First pass: find nodes that must be named (shared or cycle-entry).
    fn find_cycles(
        g: &Graph,
        n: NodeId,
        state: &mut HashMap<NodeId, u8>,
        names: &mut HashMap<NodeId, usize>,
        next_name: &mut usize,
    ) {
        state.insert(n, 1);
        for e in g.edges(n) {
            match state.get(&e.to) {
                Some(1) => {
                    names.entry(e.to).or_insert_with(|| {
                        let k = *next_name;
                        *next_name += 1;
                        k
                    });
                }
                Some(2) => {}
                _ => find_cycles(g, e.to, state, names, next_name),
            }
        }
        state.insert(n, 2);
    }
    find_cycles(g, node, &mut state, &mut names, &mut next_name);
    for (&n, &d) in &indeg {
        if d > 1 {
            names.entry(n).or_insert_with(|| {
                let k = next_name;
                next_name += 1;
                k
            });
        }
    }

    let mut emitted: HashMap<NodeId, bool> = HashMap::new();
    write_node(g, node, &names, &mut emitted, &mut out);
    out
}

fn write_node(
    g: &Graph,
    n: NodeId,
    names: &HashMap<NodeId, usize>,
    emitted: &mut HashMap<NodeId, bool>,
    out: &mut String,
) {
    if let Some(&k) = names.get(&n) {
        if *emitted.get(&n).unwrap_or(&false) {
            let _ = write!(out, "@n{k}");
            return;
        }
        emitted.insert(n, true);
        let _ = write!(out, "@n{k} = ");
    }
    // Atom shorthand.
    if let Some(v) = g.atomic_value(n) {
        if !names.contains_key(&g.edges(n)[0].to) {
            let _ = write!(out, "{v}");
            return;
        }
    }
    out.push('{');
    let mut first = true;
    for e in g.edges(n) {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{}", e.label.display(g.symbols()));
        if !g.is_leaf(e.to) || names.contains_key(&e.to) {
            out.push_str(": ");
            write_node(g, e.to, names, emitted, out);
        }
    }
    out.push('}');
}

/// Serialize the whole graph (from its root).
pub fn write_graph(g: &Graph) -> String {
    write_tree(g, g.root())
}

/// Re-serialize after a parse for a canonical form (used by tests).
pub fn roundtrip(src: &str) -> Result<String, ParseError> {
    let g = parse_graph(src)?;
    Ok(write_graph(&g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisim;

    #[test]
    fn parse_empty() {
        let g = parse_graph("{}").unwrap();
        assert!(g.is_leaf(g.root()));
    }

    #[test]
    fn parse_flat_record() {
        let g = parse_graph(r#"{Title: "Casablanca", Year: 1942}"#).unwrap();
        assert_eq!(g.out_degree(g.root()), 2);
        let t = g.successors_by_name(g.root(), "Title")[0];
        assert_eq!(g.atomic_value(t), Some(&Value::Str("Casablanca".into())));
        let y = g.successors_by_name(g.root(), "Year")[0];
        assert_eq!(g.atomic_value(y), Some(&Value::Int(1942)));
    }

    #[test]
    fn parse_nested_and_duplicate_labels() {
        let g = parse_graph(r#"{Cast: {Actors: "Bogart", Actors: "Bacall"}}"#).unwrap();
        let cast = g.successors_by_name(g.root(), "Cast")[0];
        assert_eq!(g.successors_by_name(cast, "Actors").len(), 2);
    }

    #[test]
    fn parse_bare_label_is_empty_subtree() {
        let g = parse_graph("{flag, other: {}}").unwrap();
        assert_eq!(g.out_degree(g.root()), 2);
        let f = g.successors_by_name(g.root(), "flag")[0];
        assert!(g.is_leaf(f));
    }

    #[test]
    fn parse_value_labels_and_types() {
        let g = parse_graph(r#"{1: "a", 2.5: "b", true: "c", "key": "d"}"#).unwrap();
        assert_eq!(g.out_degree(g.root()), 4);
    }

    #[test]
    fn parse_cycle() {
        let g = parse_graph("@x = {next: @x}").unwrap();
        assert!(g.has_cycle());
        assert_eq!(g.successors_by_name(g.root(), "next")[0], g.root());
    }

    #[test]
    fn parse_shared_node() {
        let g = parse_graph("{a: @s = {leaf}, b: @s}").unwrap();
        let a = g.successors_by_name(g.root(), "a")[0];
        let b = g.successors_by_name(g.root(), "b")[0];
        assert_eq!(a, b);
    }

    #[test]
    fn parse_comments_and_whitespace() {
        let g = parse_graph("# header\n{ a : 1 , # inline\n  b : 2 }\n# trailer").unwrap();
        assert_eq!(g.out_degree(g.root()), 2);
    }

    #[test]
    fn parse_trailing_comma() {
        let g = parse_graph("{a: 1, b: 2,}").unwrap();
        assert_eq!(g.out_degree(g.root()), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_graph("{a: }").is_err());
        assert!(parse_graph("{a: 1} extra").is_err());
        assert!(parse_graph("{a: @undef}").is_err());
        // Forward references (other than self-reference via `@x = ...`) are
        // rejected, mirroring the builder's define-before-use scoping.
        assert!(parse_graph("{a: @x, b: @x = {}}").is_err());
        assert!(parse_graph(r#"{"unterminated}"#).is_err());
        assert!(parse_graph("{a: bogus}").is_err());
    }

    #[test]
    fn negative_and_scientific_numbers() {
        let g = parse_graph("{a: -5, b: 1.5e3, c: -2.5E-1}").unwrap();
        let a = g.successors_by_name(g.root(), "a")[0];
        assert_eq!(g.atomic_value(a), Some(&Value::Int(-5)));
        let b = g.successors_by_name(g.root(), "b")[0];
        assert_eq!(g.atomic_value(b), Some(&Value::Real(1500.0)));
        let c = g.successors_by_name(g.root(), "c")[0];
        assert_eq!(g.atomic_value(c), Some(&Value::Real(-0.25)));
    }

    #[test]
    fn string_escapes() {
        let g = parse_graph(r#"{s: "a\"b\n\\t"}"#).unwrap();
        let s = g.successors_by_name(g.root(), "s")[0];
        assert_eq!(g.atomic_value(s), Some(&Value::Str("a\"b\n\\t".into())));
    }

    #[test]
    fn write_and_reparse_acyclic() {
        let src = r#"{Movie: {Title: "Casablanca", Year: 1942, Cast: {Actors: "Bogart"}}}"#;
        let g = parse_graph(src).unwrap();
        let text = write_graph(&g);
        let g2 = parse_graph(&text).unwrap();
        assert!(bisim::graphs_bisimilar(&g, &g2));
    }

    #[test]
    fn write_and_reparse_cyclic() {
        let src = "{a: @x = {next: @x, v: 1}, b: @x}";
        let g = parse_graph(src).unwrap();
        let text = write_graph(&g);
        let g2 = parse_graph(&text).unwrap();
        assert!(bisim::graphs_bisimilar(&g, &g2));
    }

    #[test]
    fn canonical_roundtrip_is_stable() {
        let once = roundtrip("{b: 2, a: {c: 3}}").unwrap();
        let twice = roundtrip(&once).unwrap();
        assert_eq!(once, twice);
    }
}
