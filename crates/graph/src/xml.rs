//! XML interchange.
//!
//! The tutorial appeared months before XML 1.0; historically, the
//! semistructured-data line of work (OEM, UnQL, Lorel) fed directly into
//! XML and its query languages. This module closes the loop: a small,
//! strict XML subset (elements, attributes, text; no namespaces, comments
//! allowed, no DTD/PI) maps onto the edge-labeled model.
//!
//! Mapping (XML → graph):
//!
//! * element `<e>…</e>` → symbol edge `e` to a node holding its content;
//! * attribute `a="v"` → symbol edge `@a` to an atom `v` (the `@` prefix
//!   keeps attributes distinguishable from child elements);
//! * text content → a string value edge (whitespace-only text is
//!   dropped); numeric-looking text stays a string — XML is untyped.
//!
//! The export inverts this on graphs in the image of [`from_xml`]; like
//! JSON, XML cannot express cycles or sharing, so [`to_xml`] refuses
//! cyclic graphs.

use crate::graph::{Graph, NodeId};
use crate::label::Label;
use crate::value::Value;
use std::fmt::Write as _;

/// Errors from XML conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    Parse {
        at: usize,
        message: String,
    },
    /// The graph contains a cycle.
    Cyclic,
    /// A label cannot be rendered as an XML name.
    BadName(String),
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XmlError::Parse { at, message } => write!(f, "XML parse error at byte {at}: {message}"),
            XmlError::Cyclic => write!(f, "graph is cyclic; XML cannot express cycles"),
            XmlError::BadName(n) => write!(f, "label {n:?} is not a valid XML name"),
        }
    }
}

impl std::error::Error for XmlError {}

struct P<'a> {
    src: &'a str,
    pos: usize,
    depth: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, XmlError> {
        Err(XmlError::Parse {
            at: self.pos,
            message: message.into(),
        })
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            let r = self.rest();
            let t = r.trim_start();
            self.pos += r.len() - t.len();
            if self.rest().starts_with("<!--") {
                match self.rest().find("-->") {
                    Some(i) => self.pos += i + 3,
                    None => self.pos = self.src.len(),
                }
            } else {
                break;
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let r = self.rest();
        let mut end = 0;
        for (i, c) in r.char_indices() {
            let ok = if i == 0 {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || c == '_' || c == '-' || c == '.'
            };
            if ok {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        if end == 0 {
            return self.err("expected XML name");
        }
        let s = r[..end].to_owned();
        self.pos += end;
        Ok(s)
    }

    /// Parse one element, adding its edge under `parent`.
    fn element(&mut self, g: &mut Graph, parent: NodeId) -> Result<(), XmlError> {
        self.depth += 1;
        if self.depth > crate::literal::MAX_PARSE_DEPTH {
            return Err(XmlError::Parse {
                at: self.pos,
                message: crate::literal::depth_message(),
            });
        }
        let out = self.element_inner(g, parent);
        self.depth -= 1;
        out
    }

    fn element_inner(&mut self, g: &mut Graph, parent: NodeId) -> Result<(), XmlError> {
        // At '<'.
        self.pos += 1;
        let name = self.name()?;
        let node = g.add_node();
        g.add_sym_edge(parent, &name, node);
        // Attributes.
        loop {
            self.skip_ws_only();
            match self.rest().chars().next() {
                Some('>') => {
                    self.pos += 1;
                    break;
                }
                Some('/') if self.rest().starts_with("/>") => {
                    self.pos += 2;
                    return Ok(());
                }
                Some(c) if c.is_alphabetic() || c == '_' => {
                    let attr = self.name()?;
                    self.skip_ws_only();
                    if !self.rest().starts_with('=') {
                        return self.err("expected '=' after attribute name");
                    }
                    self.pos += 1;
                    self.skip_ws_only();
                    let quote = match self.rest().chars().next() {
                        Some(q @ ('"' | '\'')) => q,
                        _ => return self.err("expected quoted attribute value"),
                    };
                    self.pos += 1;
                    let r = self.rest();
                    let end = r.find(quote).ok_or_else(|| XmlError::Parse {
                        at: self.pos,
                        message: "unterminated attribute value".into(),
                    })?;
                    let value = unescape(&r[..end]);
                    self.pos += end + 1;
                    let attr_node = g.add_node();
                    g.add_sym_edge(node, &format!("@{attr}"), attr_node);
                    g.add_value_edge(attr_node, value);
                }
                _ => return self.err("expected attribute, '>' or '/>'"),
            }
        }
        // Content: children and text until `</name>`.
        loop {
            // Text run.
            let r = self.rest();
            let next_lt = r.find('<').ok_or_else(|| XmlError::Parse {
                at: self.pos,
                message: format!("unterminated element <{name}>"),
            })?;
            let text = unescape(&r[..next_lt]);
            let trimmed = text.trim();
            if !trimmed.is_empty() {
                g.add_value_edge(node, trimmed.to_owned());
            }
            self.pos += next_lt;
            if self.rest().starts_with("<!--") {
                self.skip_ws_and_comments();
                continue;
            }
            if self.rest().starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != name {
                    return self.err(format!("mismatched </{close}>, expected </{name}>"));
                }
                self.skip_ws_only();
                if !self.rest().starts_with('>') {
                    return self.err("expected '>' after closing tag name");
                }
                self.pos += 1;
                return Ok(());
            }
            self.element(g, node)?;
        }
    }

    fn skip_ws_only(&mut self) {
        let r = self.rest();
        let t = r.trim_start();
        self.pos += r.len() - t.len();
    }
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Parse an XML document (single root element) into a rooted graph: the
/// graph root carries one edge named after the document element.
pub fn from_xml(src: &str) -> Result<Graph, XmlError> {
    let mut g = Graph::new();
    let mut p = P {
        src,
        pos: 0,
        depth: 0,
    };
    p.skip_ws_and_comments();
    // Optional XML declaration.
    if p.rest().starts_with("<?xml") {
        match p.rest().find("?>") {
            Some(i) => p.pos += i + 2,
            None => return p.err("unterminated XML declaration"),
        }
        p.skip_ws_and_comments();
    }
    if !p.rest().starts_with('<') {
        return p.err("expected document element");
    }
    let root = g.root();
    p.element(&mut g, root)?;
    p.skip_ws_and_comments();
    if p.pos != src.len() {
        return p.err("trailing content after document element");
    }
    g.gc();
    Ok(g)
}

/// Serialize a graph as XML. The root must have exactly one symbol edge
/// (the document element) or the export wraps everything in `<root>`.
/// Fails on cycles; value labels that are not strings render as their
/// display text.
pub fn to_xml(g: &Graph) -> Result<String, XmlError> {
    if g.has_cycle() {
        return Err(XmlError::Cyclic);
    }
    let mut out = String::new();
    let root_edges = g.edges(g.root());
    let single_element_root = root_edges.len() == 1 && root_edges[0].label.is_symbol();
    if single_element_root {
        write_element(g, &root_edges[0].label, root_edges[0].to, &mut out)?;
    } else {
        out.push_str("<root>");
        for e in root_edges {
            write_edge(g, e, &mut out)?;
        }
        out.push_str("</root>");
    }
    Ok(out)
}

fn write_edge(g: &Graph, e: &crate::graph::Edge, out: &mut String) -> Result<(), XmlError> {
    match &e.label {
        Label::Symbol(_) => write_element(g, &e.label, e.to, out),
        Label::Value(v) => {
            // A bare value edge to a leaf renders as text content; a value
            // edge into *structure* has no XML counterpart (elements need
            // names), so refuse rather than silently drop the subtree.
            if !g.is_leaf(e.to) {
                return Err(XmlError::BadName(v.to_string()));
            }
            match v {
                Value::Str(s) => out.push_str(&escape(s)),
                other => {
                    let _ = write!(out, "{other}");
                }
            }
            Ok(())
        }
    }
}

fn write_element(g: &Graph, label: &Label, node: NodeId, out: &mut String) -> Result<(), XmlError> {
    let name = label
        .text(g.symbols())
        .ok_or_else(|| XmlError::BadName(format!("{label:?}")))?;
    if !name
        .chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
    {
        return Err(XmlError::BadName(name));
    }
    // Split attribute edges (@a to an atom) from children.
    let mut attrs: Vec<(String, String)> = Vec::new();
    let mut children: Vec<&crate::graph::Edge> = Vec::new();
    for e in g.edges(node) {
        if let Label::Symbol(s) = &e.label {
            let ename = g.symbols().resolve(*s);
            if let Some(aname) = ename.strip_prefix('@') {
                if let Some(v) = g.atomic_value(e.to) {
                    let text = match v {
                        Value::Str(s) => s.clone(),
                        other => other.to_string(),
                    };
                    attrs.push((aname.to_owned(), text));
                    continue;
                }
            }
        }
        children.push(e);
    }
    let _ = write!(out, "<{name}");
    for (a, v) in &attrs {
        let _ = write!(out, " {a}=\"{}\"", escape(v));
    }
    if children.is_empty() {
        out.push_str("/>");
        return Ok(());
    }
    out.push('>');
    for e in children {
        write_edge(g, e, out)?;
    }
    let _ = write!(out, "</{name}>");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn import_elements_attributes_text() {
        let g = from_xml(
            r#"<movie year="1942"><title>Casablanca</title><cast><actor>Bogart</actor><actor>Bacall</actor></cast></movie>"#,
        )
        .unwrap();
        let movie = g.successors_by_name(g.root(), "movie")[0];
        let year = g.successors_by_name(movie, "@year")[0];
        assert_eq!(g.atomic_value(year), Some(&Value::Str("1942".into())));
        let title = g.successors_by_name(movie, "title")[0];
        assert_eq!(
            g.atomic_value(title),
            Some(&Value::Str("Casablanca".into()))
        );
        let cast = g.successors_by_name(movie, "cast")[0];
        assert_eq!(g.successors_by_name(cast, "actor").len(), 2);
    }

    #[test]
    fn import_self_closing_and_declaration() {
        let g = from_xml(r#"<?xml version="1.0"?><doc><empty/><empty/></doc>"#).unwrap();
        let doc = g.successors_by_name(g.root(), "doc")[0];
        assert_eq!(g.successors_by_name(doc, "empty").len(), 2);
    }

    #[test]
    fn import_escapes_and_comments() {
        let g = from_xml("<a><!-- note --><b>x &amp; y &lt;z&gt;</b></a>").unwrap();
        let a = g.successors_by_name(g.root(), "a")[0];
        let b = g.successors_by_name(a, "b")[0];
        assert_eq!(g.atomic_value(b), Some(&Value::Str("x & y <z>".into())));
    }

    #[test]
    fn import_errors() {
        assert!(from_xml("<a><b></a>").is_err());
        assert!(from_xml("<a>").is_err());
        assert!(from_xml("<a/>junk").is_err());
        assert!(from_xml(r#"<a b=oops/>"#).is_err());
        assert!(from_xml("plain text").is_err());
    }

    #[test]
    fn round_trip() {
        let src = r#"<movie year="1942"><title>Casablanca</title><cast><actor>Bogart</actor><actor>Bacall</actor></cast></movie>"#;
        let g = from_xml(src).unwrap();
        let out = to_xml(&g).unwrap();
        let g2 = from_xml(&out).unwrap();
        assert!(crate::bisim::graphs_bisimilar(&g, &g2), "broke:\n{out}");
    }

    #[test]
    fn export_wraps_multi_rooted_graphs() {
        let g = crate::literal::parse_graph(r#"{a: "x", b: "y"}"#).unwrap();
        let xml = to_xml(&g).unwrap();
        assert!(xml.starts_with("<root>"));
        assert!(xml.contains("<a>x</a>"));
    }

    #[test]
    fn export_refuses_cycles() {
        let g = crate::literal::parse_graph("@x = {next: @x}").unwrap();
        assert_eq!(to_xml(&g), Err(XmlError::Cyclic));
    }

    #[test]
    fn export_rejects_unnameable_labels() {
        let g = crate::literal::parse_graph("{a: {1: {b: 2}}}").unwrap();
        // The int-labeled edge to a complex node cannot become an element
        // name.
        assert!(matches!(to_xml(&g), Err(XmlError::BadName(_))));
    }

    #[test]
    fn mixed_content_survives() {
        let g = from_xml("<p>before<b>bold</b>after</p>").unwrap();
        let p = g.successors_by_name(g.root(), "p")[0];
        let texts: Vec<&Value> = g.values_at(p);
        assert_eq!(texts.len(), 2);
        assert_eq!(g.successors_by_name(p, "b").len(), 1);
    }

    #[test]
    fn attribute_quotes_both_kinds() {
        let g = from_xml(r#"<a x="1" y='2'/>"#).unwrap();
        let a = g.successors_by_name(g.root(), "a")[0];
        assert_eq!(g.out_degree(a), 2);
    }
}
