//! Base values that may appear on edges of a semistructured data graph.
//!
//! The paper (§2) formulates labels as `type label = int | string | ... | symbol`:
//! a *tagged union* of base types plus symbols. This module provides the base
//! ("data") part of that union; symbols are handled by [`crate::symbol`].
//!
//! Because the data is self-describing, programs inspect values dynamically:
//! every [`Value`] carries its own type tag, and the type predicates
//! ([`Value::is_int`], [`Value::kind`], ...) are the query-language hooks the
//! paper calls for ("one would expect any language for dealing with
//! semistructured data to incorporate predicates that describe the type of an
//! edge or node").

use std::cmp::Ordering;
use std::fmt;

/// A base (atomic) value stored on an edge label.
///
/// `Real` values are compared by their IEEE-754 bit patterns after NaN
/// canonicalisation so that `Value` can implement `Eq`, `Ord` and `Hash` —
/// properties the triple-store relations and indexes rely on.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float ("real" in ACeDB terminology).
    Real(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

/// The dynamic type of a [`Value`] (or of a label as a whole, see
/// [`crate::label::Label::kind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueKind {
    Int,
    Real,
    Str,
    Bool,
}

impl ValueKind {
    /// Human-readable name, used by the query language's `type()` builtin.
    pub fn name(self) -> &'static str {
        match self {
            ValueKind::Int => "int",
            ValueKind::Real => "real",
            ValueKind::Str => "string",
            ValueKind::Bool => "bool",
        }
    }

    /// All kinds, in canonical order. Useful for bucketing edges by type in
    /// DataGuide construction.
    pub const ALL: [ValueKind; 4] = [
        ValueKind::Int,
        ValueKind::Real,
        ValueKind::Str,
        ValueKind::Bool,
    ];
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Value {
    /// The dynamic type tag of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Int(_) => ValueKind::Int,
            Value::Real(_) => ValueKind::Real,
            Value::Str(_) => ValueKind::Str,
            Value::Bool(_) => ValueKind::Bool,
        }
    }

    pub fn is_int(&self) -> bool {
        matches!(self, Value::Int(_))
    }

    pub fn is_real(&self) -> bool {
        matches!(self, Value::Real(_))
    }

    pub fn is_str(&self) -> bool {
        matches!(self, Value::Str(_))
    }

    pub fn is_bool(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view: ints promote to reals so that `3 < 3.5` compares
    /// naturally in `where` clauses.
    pub fn as_numeric(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// Canonical bit pattern for a float: all NaNs map to one quiet NaN so
    /// equality and hashing are well defined.
    fn real_bits(r: f64) -> u64 {
        if r.is_nan() {
            f64::NAN.to_bits()
        } else if r == 0.0 {
            // +0.0 and -0.0 are equal; canonicalise to +0.0.
            0f64.to_bits()
        } else {
            r.to_bits()
        }
    }

    /// Comparison used by the query language: numeric types compare by value
    /// across `Int`/`Real`; mixed non-numeric kinds order by kind tag.
    pub fn query_cmp(&self, other: &Value) -> Ordering {
        match (self.as_numeric(), other.as_numeric()) {
            (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or_else(|| {
                // NaN ordering: NaN sorts after everything.
                match (a.is_nan(), b.is_nan()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Greater,
                    (false, true) => Ordering::Less,
                    (false, false) => unreachable!("partial_cmp is total on non-NaN"),
                }
            }),
            _ => self.cmp(other),
        }
    }

    /// Equality used by the query language: `3 = 3.0` holds.
    pub fn query_eq(&self, other: &Value) -> bool {
        self.query_cmp(other) == Ordering::Equal
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Real(a), Value::Real(b)) => Self::real_bits(*a) == Self::real_bits(*b),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: first by kind, then by value. This is the *storage*
    /// order used by relations and indexes, not the query-language order
    /// (see [`Value::query_cmp`]).
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Real(a), Value::Real(b)) => {
                // Total order on canonical bits, with sign handling: flip the
                // bits of negative floats so numeric order is preserved.
                fn key(r: f64) -> u64 {
                    let b = Value::real_bits(r);
                    if b >> 63 == 1 {
                        !b
                    } else {
                        b | (1 << 63)
                    }
                }
                key(*a).cmp(&key(*b))
            }
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => self.kind().cmp(&other.kind()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.kind().hash(state);
        match self {
            Value::Int(i) => i.hash(state),
            Value::Real(r) => Self::real_bits(*r).hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => {
                if r.fract() == 0.0 && r.is_finite() && r.abs() < 1e15 {
                    write!(f, "{r:.1}")
                } else {
                    write!(f, "{r}")
                }
            }
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn kinds_and_predicates() {
        assert!(Value::Int(3).is_int());
        assert!(Value::Real(3.0).is_real());
        assert!(Value::Str("x".into()).is_str());
        assert!(Value::Bool(true).is_bool());
        assert_eq!(Value::Int(3).kind().name(), "int");
        assert_eq!(Value::Str("x".into()).kind(), ValueKind::Str);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_real(), None);
        assert_eq!(Value::Str("hi".into()).as_str(), Some("hi"));
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::Int(2).as_numeric(), Some(2.0));
        assert_eq!(Value::Real(2.5).as_numeric(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_numeric(), None);
    }

    #[test]
    fn nan_is_self_equal_after_canonicalisation() {
        let a = Value::Real(f64::NAN);
        let b = Value::Real(-f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn signed_zero_is_equal() {
        assert_eq!(Value::Real(0.0), Value::Real(-0.0));
        assert_eq!(hash_of(&Value::Real(0.0)), hash_of(&Value::Real(-0.0)));
    }

    #[test]
    fn storage_order_on_reals_is_numeric() {
        let mut vals = [
            Value::Real(1.5),
            Value::Real(-2.0),
            Value::Real(0.0),
            Value::Real(100.0),
            Value::Real(-0.5),
        ];
        vals.sort();
        let nums: Vec<f64> = vals.iter().map(|v| v.as_real().unwrap()).collect();
        assert_eq!(nums, vec![-2.0, -0.5, 0.0, 1.5, 100.0]);
    }

    #[test]
    fn query_comparison_crosses_numeric_kinds() {
        assert!(Value::Int(3).query_eq(&Value::Real(3.0)));
        assert_eq!(Value::Int(3).query_cmp(&Value::Real(3.5)), Ordering::Less);
        assert!(!Value::Int(3).query_eq(&Value::Str("3".into())));
    }

    #[test]
    fn storage_equality_distinguishes_kinds() {
        assert_ne!(Value::Int(3), Value::Real(3.0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Real(1.5).to_string(), "1.5");
        assert_eq!(Value::Real(2.0).to_string(), "2.0");
        assert_eq!(Value::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(2.5f64), Value::Real(2.5));
    }
}
