//! The Object Exchange Model (OEM) view.
//!
//! §1.2: "The Object Exchange Model (OEM) offers a highly flexible data
//! structure that may be used to capture most kinds of data and provides a
//! substrate in which almost any other data structure may be represented."
//! OEM (Tsimmis / Lore) represents a database as a set of objects, each with
//! an *object identity*, a *label*, and a value that is either atomic or a
//! set of references to other objects.
//!
//! §2 notes that "in OEM, object identities are used as node labels and
//! place-holders to define trees", and that identities "pose problems when
//! comparing data across databases". This module provides lossless
//! conversions between an [`OemDb`] and the edge-labeled [`Graph`], making
//! those trade-offs concrete: the OEM→graph direction pushes each object's
//! label onto its incoming edges (the transformation §2 sketches for
//! node-labeled variants), and the graph→OEM direction materialises node
//! ids as OIDs.

use crate::graph::{Graph, NodeId};
use crate::label::Label;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An OEM object identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(pub u64);

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "&o{}", self.0)
    }
}

/// An OEM value: atomic, or a set of labeled references.
#[derive(Debug, Clone, PartialEq)]
pub enum OemValue {
    Atomic(Value),
    /// Sub-objects: (label, target oid). A *set* — order is irrelevant.
    Complex(Vec<(String, Oid)>),
}

/// One OEM object.
#[derive(Debug, Clone, PartialEq)]
pub struct OemObject {
    pub value: OemValue,
}

/// An OEM database: a set of objects and a distinguished root.
#[derive(Debug, Clone, Default)]
pub struct OemDb {
    objects: BTreeMap<Oid, OemObject>,
    root: Option<Oid>,
    next_oid: u64,
}

/// Errors raised by OEM construction/validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OemError {
    DanglingReference { from: Oid, to: Oid },
    NoRoot,
    UnknownOid(Oid),
}

impl fmt::Display for OemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OemError::DanglingReference { from, to } => {
                write!(f, "object {from} references missing object {to}")
            }
            OemError::NoRoot => write!(f, "OEM database has no root"),
            OemError::UnknownOid(o) => write!(f, "unknown oid {o}"),
        }
    }
}

impl std::error::Error for OemError {}

impl OemDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh object with the given value, returning its oid.
    pub fn add(&mut self, value: OemValue) -> Oid {
        let oid = Oid(self.next_oid);
        self.next_oid += 1;
        self.objects.insert(oid, OemObject { value });
        oid
    }

    /// Allocate an atomic object.
    pub fn atomic(&mut self, v: impl Into<Value>) -> Oid {
        self.add(OemValue::Atomic(v.into()))
    }

    /// Allocate a complex object from labeled children.
    pub fn complex(&mut self, children: Vec<(&str, Oid)>) -> Oid {
        self.add(OemValue::Complex(
            children
                .into_iter()
                .map(|(l, o)| (l.to_owned(), o))
                .collect(),
        ))
    }

    /// Allocate an empty complex object (children can be added later).
    pub fn empty_complex(&mut self) -> Oid {
        self.add(OemValue::Complex(Vec::new()))
    }

    /// Add a labeled child to an existing complex object.
    pub fn add_child(&mut self, parent: Oid, label: &str, child: Oid) -> Result<(), OemError> {
        match self.objects.get_mut(&parent) {
            Some(OemObject {
                value: OemValue::Complex(children),
            }) => {
                let entry = (label.to_owned(), child);
                if !children.contains(&entry) {
                    children.push(entry);
                }
                Ok(())
            }
            Some(_) => Err(OemError::UnknownOid(parent)), // atomic: cannot have children
            None => Err(OemError::UnknownOid(parent)),
        }
    }

    pub fn set_root(&mut self, oid: Oid) {
        self.root = Some(oid);
    }

    pub fn root(&self) -> Option<Oid> {
        self.root
    }

    pub fn get(&self, oid: Oid) -> Option<&OemObject> {
        self.objects.get(&oid)
    }

    pub fn len(&self) -> usize {
        self.objects.len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (Oid, &OemObject)> {
        self.objects.iter().map(|(o, obj)| (*o, obj))
    }

    /// Check referential integrity: every referenced oid exists and a root
    /// is set.
    pub fn validate(&self) -> Result<(), OemError> {
        if self.root.is_none() {
            return Err(OemError::NoRoot);
        }
        for (oid, obj) in &self.objects {
            if let OemValue::Complex(children) = &obj.value {
                for (_, to) in children {
                    if !self.objects.contains_key(to) {
                        return Err(OemError::DanglingReference {
                            from: *oid,
                            to: *to,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Convert to the edge-labeled graph model.
    ///
    /// Each OEM object becomes a node; a child entry `(l, o)` becomes an
    /// edge labeled with the symbol `l`; an atomic object's value becomes a
    /// value edge to a leaf. OIDs are forgotten (they become node
    /// identities), which is exactly the move UnQL makes to avoid
    /// cross-database identity problems.
    pub fn to_graph(&self) -> Result<Graph, OemError> {
        self.validate()?;
        let root = self.root.ok_or(OemError::NoRoot)?;
        let mut g = Graph::new();
        let mut map: HashMap<Oid, NodeId> = HashMap::new();
        for (oid, _) in self.iter() {
            let n = if oid == root { g.root() } else { g.add_node() };
            map.insert(oid, n);
        }
        for (oid, obj) in self.iter() {
            let from = map[&oid];
            match &obj.value {
                OemValue::Atomic(v) => {
                    g.add_value_edge(from, v.clone());
                }
                OemValue::Complex(children) => {
                    for (label, to) in children {
                        let l = Label::symbol(g.symbols(), label);
                        g.add_edge(from, l, map[to]);
                    }
                }
            }
        }
        g.gc();
        Ok(g)
    }

    /// Build an OEM database from a graph.
    ///
    /// Node identities materialise as OIDs. Edge labels become child
    /// labels; value edges become references to atomic objects labeled
    /// `"value"` when they sit beside other edges, or collapse the node to
    /// an atomic object when the node is a pure atom.
    pub fn from_graph(g: &Graph) -> OemDb {
        let mut db = OemDb::new();
        let reachable = g.reachable();
        let mut map: HashMap<NodeId, Oid> = HashMap::new();
        for &n in &reachable {
            let oid = if g.atomic_value(n).is_some() {
                db.atomic(g.atomic_value(n).unwrap().clone())
            } else {
                db.empty_complex()
            };
            map.insert(n, oid);
        }
        for &n in &reachable {
            if g.atomic_value(n).is_some() {
                continue;
            }
            let parent = map[&n];
            for e in g.edges(n) {
                match &e.label {
                    Label::Symbol(s) => {
                        let name = g.symbols().resolve(*s);
                        db.add_child(parent, &name, map[&e.to])
                            .expect("parent is complex by construction");
                    }
                    Label::Value(v) => {
                        if g.is_leaf(e.to) {
                            // A value edge beside other edges: wrap the
                            // value as an atomic child labeled "value".
                            let atom = db.atomic(v.clone());
                            db.add_child(parent, "value", atom)
                                .expect("parent is complex by construction");
                        } else {
                            // A value-labeled edge into a complex node (an
                            // array slot, §2). OEM labels are strings, so
                            // the value's display form becomes the child
                            // label; the *structure* is preserved even
                            // though the label type is coarsened.
                            db.add_child(parent, &v.to_string(), map[&e.to])
                                .expect("parent is complex by construction");
                        }
                    }
                }
            }
        }
        db.set_root(map[&g.root()]);
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisim::graphs_bisimilar;
    use crate::literal::parse_graph;

    fn movie_oem() -> OemDb {
        let mut db = OemDb::new();
        let title = db.atomic("Casablanca");
        let actor = db.atomic("Bogart");
        let cast = db.complex(vec![("Actors", actor)]);
        let movie = db.complex(vec![("Title", title), ("Cast", cast)]);
        let root = db.complex(vec![("Movie", movie)]);
        db.set_root(root);
        db
    }

    #[test]
    fn build_and_validate() {
        let db = movie_oem();
        assert!(db.validate().is_ok());
        assert_eq!(db.len(), 5);
    }

    #[test]
    fn missing_root_fails_validation() {
        let mut db = OemDb::new();
        db.atomic(1);
        assert_eq!(db.validate(), Err(OemError::NoRoot));
    }

    #[test]
    fn dangling_reference_fails_validation() {
        let mut db = OemDb::new();
        let root = db.complex(vec![("x", Oid(999))]);
        db.set_root(root);
        assert!(matches!(
            db.validate(),
            Err(OemError::DanglingReference { .. })
        ));
    }

    #[test]
    fn add_child_to_atomic_fails() {
        let mut db = OemDb::new();
        let a = db.atomic(1);
        let b = db.atomic(2);
        assert!(db.add_child(a, "x", b).is_err());
    }

    #[test]
    fn to_graph_matches_literal() {
        let db = movie_oem();
        let g = db.to_graph().unwrap();
        let expect =
            parse_graph(r#"{Movie: {Title: "Casablanca", Cast: {Actors: "Bogart"}}}"#).unwrap();
        assert!(graphs_bisimilar(&g, &expect));
    }

    #[test]
    fn graph_round_trip() {
        let g = parse_graph(r#"{Movie: {Title: "C", Cast: {Actors: "B", Actors: "L"}}}"#).unwrap();
        let db = OemDb::from_graph(&g);
        assert!(db.validate().is_ok());
        let g2 = db.to_graph().unwrap();
        assert!(graphs_bisimilar(&g, &g2));
    }

    #[test]
    fn cyclic_oem_round_trips() {
        let mut db = OemDb::new();
        let entry = db.empty_complex();
        let other = db.complex(vec![("References", entry)]);
        db.add_child(entry, "References", other).unwrap();
        let root = db.complex(vec![("Entry", entry), ("Entry", other)]);
        db.set_root(root);
        let g = db.to_graph().unwrap();
        assert!(g.has_cycle());
        let db2 = OemDb::from_graph(&g);
        let g2 = db2.to_graph().unwrap();
        assert!(graphs_bisimilar(&g, &g2));
    }

    #[test]
    fn shared_object_stays_shared() {
        let mut db = OemDb::new();
        let shared = db.atomic("x");
        let root = db.complex(vec![("a", shared), ("b", shared)]);
        db.set_root(root);
        let g = db.to_graph().unwrap();
        let a = g.successors_by_name(g.root(), "a")[0];
        let b = g.successors_by_name(g.root(), "b")[0];
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_value_and_symbol_edges_use_value_label() {
        let g = parse_graph(r#"{m: {Title: "C", 42}}"#).unwrap();
        let db = OemDb::from_graph(&g);
        assert!(db.validate().is_ok());
        // The value 42 sits beside the Title edge, so it becomes a "value"
        // child in OEM.
        let g2 = db.to_graph().unwrap();
        let m = g2.successors_by_name(g2.root(), "m")[0];
        assert_eq!(g2.successors_by_name(m, "value").len(), 1);
    }
}
