//! The rooted, edge-labeled data graph — `type tree = set(label × tree)`.
//!
//! Following §2, "the unifying idea in semistructured data is the
//! representation of data as some kind of graph-like or tree-like structure.
//! Although we shall allow cycles in the data, we shall generally refer to
//! these graphs as trees." A [`Graph`] is an arena of nodes, each holding an
//! *unordered* set of labeled out-edges; one node is distinguished as the
//! root. Cycles are permitted and first-class (Figure 1 has one through the
//! `References` / `Is referenced in` edges).
//!
//! Node ids double as OEM-style object identities (§2, "object identities are
//! used as node labels and place-holders to define trees"): they support
//! equality tests and are usable as temporary handles, but queries observe
//! them only through traversal. Extensional equality of trees is
//! *bisimulation*, provided by [`crate::bisim`].

use crate::label::Label;
use crate::symbol::{new_symbols, SymbolId, SymbolTable, Symbols};
use crate::value::Value;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Index of a node within a [`Graph`] arena.
///
/// Also serves as the node's object identity (OID) for OEM-style views.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a `NodeId` from a raw index. The caller must ensure the
    /// index is valid for the graph it will be used with.
    pub fn from_index(i: usize) -> NodeId {
        NodeId(u32::try_from(i).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "&{}", self.0)
    }
}

/// A labeled out-edge.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Edge {
    pub label: Label,
    pub to: NodeId,
}

#[derive(Debug, Clone, Default)]
struct Node {
    edges: Vec<Edge>,
}

/// A rooted, edge-labeled, possibly-cyclic data graph.
#[derive(Debug, Clone)]
pub struct Graph {
    nodes: Vec<Node>,
    root: NodeId,
    symbols: Symbols,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// An empty database: a root node with no edges (the empty set `{}`).
    pub fn new() -> Graph {
        Graph::with_symbols(new_symbols())
    }

    /// An empty database sharing an existing symbol table.
    pub fn with_symbols(symbols: Symbols) -> Graph {
        Graph {
            nodes: vec![Node::default()],
            root: NodeId(0),
            symbols,
        }
    }

    /// The shared symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// A clonable handle to the symbol table.
    pub fn symbols_handle(&self) -> Symbols {
        Arc::clone(&self.symbols)
    }

    /// True if `other` shares this graph's symbol table (labels are directly
    /// comparable without string translation).
    pub fn shares_symbols(&self, other: &Graph) -> bool {
        Arc::ptr_eq(&self.symbols, &other.symbols)
    }

    /// The distinguished root. §3: "we are concerned with what is accessible
    /// from a given root by forward traversal of the edges".
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Re-root the graph at `n`.
    pub fn set_root(&mut self, n: NodeId) {
        self.check(n);
        self.root = n;
    }

    /// Allocate a fresh node with no edges.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(Node::default());
        id
    }

    /// Add edge `from --label--> to`. Duplicate `(label, to)` pairs are
    /// ignored: edge sets are sets, per `type tree = set(label × tree)`.
    pub fn add_edge(&mut self, from: NodeId, label: Label, to: NodeId) {
        self.check(from);
        self.check(to);
        let node = &mut self.nodes[from.index()];
        let edge = Edge { label, to };
        if !node.edges.contains(&edge) {
            node.edges.push(edge);
        }
    }

    /// Convenience: add edge with a symbol label, interning `name`.
    pub fn add_sym_edge(&mut self, from: NodeId, name: &str, to: NodeId) {
        let label = Label::symbol(&self.symbols, name);
        self.add_edge(from, label, to);
    }

    /// Convenience: `from --name--> fresh --value--> fresh-leaf`; the common
    /// attribute-with-value pattern of Figure 1 (`Title --> "Casablanca"`).
    /// Returns the intermediate node.
    pub fn add_attr(&mut self, from: NodeId, name: &str, value: impl Into<Value>) -> NodeId {
        let mid = self.add_node();
        self.add_sym_edge(from, name, mid);
        let leaf = self.add_node();
        self.add_edge(mid, Label::Value(value.into()), leaf);
        mid
    }

    /// Convenience: add a value-labeled edge to a fresh leaf, returning the
    /// leaf. This is how a base value "hangs off" a node in the edge-labeled
    /// model.
    pub fn add_value_edge(&mut self, from: NodeId, value: impl Into<Value>) -> NodeId {
        let leaf = self.add_node();
        self.add_edge(from, Label::Value(value.into()), leaf);
        leaf
    }

    /// Remove the edge `(from, label, to)` if present. Returns whether an
    /// edge was removed.
    pub fn remove_edge(&mut self, from: NodeId, label: &Label, to: NodeId) -> bool {
        self.check(from);
        let node = &mut self.nodes[from.index()];
        let before = node.edges.len();
        node.edges.retain(|e| !(e.label == *label && e.to == to));
        node.edges.len() != before
    }

    /// Replace the whole edge set of `n`.
    pub fn set_edges(&mut self, n: NodeId, edges: Vec<Edge>) {
        self.check(n);
        let mut deduped: Vec<Edge> = Vec::with_capacity(edges.len());
        for e in edges {
            self.check(e.to);
            if !deduped.contains(&e) {
                deduped.push(e);
            }
        }
        self.nodes[n.index()].edges = deduped;
    }

    /// The out-edges of `n`.
    pub fn edges(&self, n: NodeId) -> &[Edge] {
        self.check(n);
        &self.nodes[n.index()].edges
    }

    /// Out-degree of `n`.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.edges(n).len()
    }

    /// True if `n` has no out-edges (it denotes the empty set / a leaf).
    pub fn is_leaf(&self, n: NodeId) -> bool {
        self.edges(n).is_empty()
    }

    /// Targets of edges out of `n` whose label is the symbol `sym`.
    pub fn successors_by_symbol(&self, n: NodeId, sym: SymbolId) -> Vec<NodeId> {
        self.edges(n)
            .iter()
            .filter(|e| e.label == Label::Symbol(sym))
            .map(|e| e.to)
            .collect()
    }

    /// Targets of edges out of `n` whose label is the symbol named `name`
    /// (no interning: unknown names simply match nothing).
    pub fn successors_by_name(&self, n: NodeId, name: &str) -> Vec<NodeId> {
        match self.symbols.get(name) {
            Some(sym) => self.successors_by_symbol(n, sym),
            None => Vec::new(),
        }
    }

    /// The base values hanging directly off `n` (labels of value edges).
    pub fn values_at(&self, n: NodeId) -> Vec<&Value> {
        self.edges(n)
            .iter()
            .filter_map(|e| e.label.as_value())
            .collect()
    }

    /// If `n` carries exactly one value edge *to a leaf* and nothing else,
    /// return that value. The usual "atomic object" pattern. (The leaf
    /// requirement matters: an integer-labeled edge into a complex node —
    /// an array slot, §2 — is not an atom.)
    pub fn atomic_value(&self, n: NodeId) -> Option<&Value> {
        let edges = self.edges(n);
        match edges {
            [Edge {
                label: Label::Value(v),
                to,
            }] if self.is_leaf(*to) => Some(v),
            _ => None,
        }
    }

    /// Number of nodes in the arena (including unreachable ones; see
    /// [`Graph::gc`](crate::ops) for compaction).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.edges.len()).sum()
    }

    /// Iterate over all node ids in the arena.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterate over every `(from, label, to)` edge in the arena.
    pub fn all_edges(&self) -> impl Iterator<Item = (NodeId, &Label, NodeId)> + '_ {
        self.nodes.iter().enumerate().flat_map(|(i, n)| {
            n.edges
                .iter()
                .map(move |e| (NodeId::from_index(i), &e.label, e.to))
        })
    }

    /// Nodes reachable from `from` by forward traversal (BFS order,
    /// including `from` itself).
    pub fn reachable_from(&self, from: NodeId) -> Vec<NodeId> {
        self.check(from);
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        seen[from.index()] = true;
        queue.push_back(from);
        while let Some(n) = queue.pop_front() {
            order.push(n);
            for e in &self.nodes[n.index()].edges {
                if !seen[e.to.index()] {
                    seen[e.to.index()] = true;
                    queue.push_back(e.to);
                }
            }
        }
        order
    }

    /// Nodes reachable from the root.
    pub fn reachable(&self) -> Vec<NodeId> {
        self.reachable_from(self.root)
    }

    /// True if every node in the arena is reachable from the root.
    pub fn is_fully_reachable(&self) -> bool {
        self.reachable().len() == self.nodes.len()
    }

    /// True if the reachable part of the graph contains a cycle.
    pub fn has_cycle(&self) -> bool {
        // Iterative DFS with colors: 0 = white, 1 = on stack, 2 = done.
        let mut color = vec![0u8; self.nodes.len()];
        let mut stack: Vec<(NodeId, usize)> = vec![(self.root, 0)];
        color[self.root.index()] = 1;
        while let Some(top) = stack.last_mut() {
            let n = top.0;
            let edges = &self.nodes[n.index()].edges;
            if top.1 < edges.len() {
                let to = edges[top.1].to;
                top.1 += 1;
                match color[to.index()] {
                    0 => {
                        color[to.index()] = 1;
                        stack.push((to, 0));
                    }
                    1 => return true,
                    _ => {}
                }
            } else {
                color[n.index()] = 2;
                stack.pop();
            }
        }
        false
    }

    /// Internal consistency check used by debug assertions and tests:
    /// every edge target is in-range and edge sets contain no duplicates.
    pub fn validate(&self) -> Result<(), String> {
        if self.root.index() >= self.nodes.len() {
            return Err(format!("root {} out of range", self.root));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for e in &n.edges {
                if e.to.index() >= self.nodes.len() {
                    return Err(format!("edge target {} out of range (from &{i})", e.to));
                }
                if !seen.insert((e.label.clone(), e.to)) {
                    return Err(format!("duplicate edge from &{i}"));
                }
            }
        }
        Ok(())
    }

    #[inline]
    fn check(&self, n: NodeId) {
        debug_assert!(
            n.index() < self.nodes.len(),
            "NodeId {} out of range (graph has {} nodes)",
            n,
            self.nodes.len()
        );
    }

    /// Remove all nodes not reachable from the root, compacting ids.
    /// Returns the mapping `old id -> new id` for reachable nodes.
    pub fn gc(&mut self) -> std::collections::HashMap<NodeId, NodeId> {
        let reachable = self.reachable();
        let mut remap = std::collections::HashMap::with_capacity(reachable.len());
        for (new_idx, old) in reachable.iter().enumerate() {
            remap.insert(*old, NodeId::from_index(new_idx));
        }
        let mut new_nodes = Vec::with_capacity(reachable.len());
        for old in &reachable {
            let mut node = std::mem::take(&mut self.nodes[old.index()]);
            for e in &mut node.edges {
                e.to = remap[&e.to];
            }
            new_nodes.push(node);
        }
        self.nodes = new_nodes;
        self.root = remap[&self.root];
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Graph {
        // root --a--> x --b--> y, root --c--> y
        let mut g = Graph::new();
        let x = g.add_node();
        let y = g.add_node();
        g.add_sym_edge(g.root(), "a", x);
        g.add_sym_edge(x, "b", y);
        g.add_sym_edge(g.root(), "c", y);
        g
    }

    #[test]
    fn empty_graph_is_single_leaf_root() {
        let g = Graph::new();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_leaf(g.root()));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn add_edge_dedupes() {
        let mut g = Graph::new();
        let x = g.add_node();
        g.add_sym_edge(g.root(), "a", x);
        g.add_sym_edge(g.root(), "a", x);
        assert_eq!(g.edge_count(), 1);
        // Different label to same target is kept.
        g.add_sym_edge(g.root(), "b", x);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn successors_by_symbol_and_name() {
        let g = small();
        let a_targets = g.successors_by_name(g.root(), "a");
        assert_eq!(a_targets.len(), 1);
        assert_eq!(g.successors_by_name(g.root(), "nope"), Vec::new());
        let sym = g.symbols().get("c").unwrap();
        assert_eq!(g.successors_by_symbol(g.root(), sym).len(), 1);
    }

    #[test]
    fn attr_and_atomic_value() {
        let mut g = Graph::new();
        let title = g.add_attr(g.root(), "Title", "Casablanca");
        assert_eq!(
            g.atomic_value(title),
            Some(&Value::Str("Casablanca".into()))
        );
        assert_eq!(g.atomic_value(g.root()), None);
        let vals = g.values_at(title);
        assert_eq!(vals.len(), 1);
    }

    #[test]
    fn reachability_and_full_reachability() {
        let mut g = small();
        assert!(g.is_fully_reachable());
        let orphan = g.add_node();
        assert!(!g.is_fully_reachable());
        assert!(!g.reachable().contains(&orphan));
    }

    #[test]
    fn cycle_detection() {
        let mut g = small();
        assert!(!g.has_cycle());
        let x = g.successors_by_name(g.root(), "a")[0];
        g.add_sym_edge(x, "back", g.root());
        assert!(g.has_cycle());
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = Graph::new();
        g.add_sym_edge(g.root(), "loop", g.root());
        assert!(g.has_cycle());
    }

    #[test]
    fn remove_edge() {
        let mut g = small();
        let x = g.successors_by_name(g.root(), "a")[0];
        let a = Label::symbol(g.symbols(), "a");
        assert!(g.remove_edge(g.root(), &a, x));
        assert!(!g.remove_edge(g.root(), &a, x));
        assert_eq!(g.successors_by_name(g.root(), "a").len(), 0);
    }

    #[test]
    fn gc_compacts_and_preserves_structure() {
        let mut g = small();
        let orphan = g.add_node();
        g.add_sym_edge(orphan, "dead", orphan);
        let before_edges = 3;
        let remap = g.gc();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), before_edges);
        assert!(g.is_fully_reachable());
        assert!(g.validate().is_ok());
        assert!(!remap.contains_key(&orphan));
        // Shared target still shared.
        let x = g.successors_by_name(g.root(), "a")[0];
        let via_b = g.successors_by_name(x, "b")[0];
        let via_c = g.successors_by_name(g.root(), "c")[0];
        assert_eq!(via_b, via_c);
    }

    #[test]
    fn gc_on_cyclic_graph() {
        let mut g = Graph::new();
        let x = g.add_node();
        g.add_sym_edge(g.root(), "f", x);
        g.add_sym_edge(x, "g", g.root());
        let _orphan = g.add_node();
        g.gc();
        assert_eq!(g.node_count(), 2);
        assert!(g.has_cycle());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn set_edges_replaces_and_dedupes() {
        let mut g = Graph::new();
        let x = g.add_node();
        let l = Label::symbol(g.symbols(), "a");
        g.set_edges(
            g.root(),
            vec![
                Edge {
                    label: l.clone(),
                    to: x,
                },
                Edge {
                    label: l.clone(),
                    to: x,
                },
            ],
        );
        assert_eq!(g.out_degree(g.root()), 1);
    }

    #[test]
    fn all_edges_enumerates_everything() {
        let g = small();
        let edges: Vec<_> = g.all_edges().collect();
        assert_eq!(edges.len(), 3);
    }

    #[test]
    fn shared_symbol_tables() {
        let g1 = Graph::new();
        let g2 = Graph::with_symbols(g1.symbols_handle());
        let g3 = Graph::new();
        assert!(g1.shares_symbols(&g2));
        assert!(!g1.shares_symbols(&g3));
    }

    #[test]
    fn set_root_reroots() {
        let mut g = small();
        let x = g.successors_by_name(g.root(), "a")[0];
        g.set_root(x);
        assert_eq!(g.root(), x);
        assert_eq!(g.reachable().len(), 2);
    }
}
