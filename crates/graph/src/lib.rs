//! # ssd-graph — the semistructured data model
//!
//! An implementation of the edge-labeled graph model of Peter Buneman's
//! PODS '97 tutorial *Semistructured Data*:
//!
//! ```text
//! type label = int | string | ... | symbol
//! type tree  = set(label × tree)
//! ```
//!
//! Data is a rooted, possibly-cyclic graph whose edges carry either
//! *symbols* (attribute-like names) or *base values* — the data is
//! self-describing. This crate provides:
//!
//! * the arena-based [`Graph`] with cheap node ids that double as OEM-style
//!   object identities,
//! * construction via [`builder::TreeSpec`] or the textual
//!   [`literal`] syntax (`{Movie: {Title: "Casablanca"}}`, with `@x = ...`
//!   markers for sharing and cycles),
//! * extensional equality by [`bisim`]ulation, plus quotienting,
//! * whole-graph [`ops`] (union, cross-database copy),
//! * the model [`variants`] surveyed in §2 (leaf-value trees, node-labeled
//!   graphs) with mappings in both directions,
//! * [`encode`]ings of relational and object-oriented databases,
//! * an [`oem`] view (Object Exchange Model, the Tsimmis interchange
//!   format),
//! * value/label/path [`index`]es supporting the §1.3 browsing queries,
//! * [`dot`] export for visualisation.

pub mod bisim;
pub mod builder;
pub mod dot;
pub mod encode;
pub mod graph;
pub mod index;
pub mod json;
pub mod label;
pub mod literal;
pub mod oem;
pub mod ops;
pub mod stats;
pub mod symbol;
pub mod value;
pub mod variants;
pub mod xml;

pub use graph::{Edge, Graph, NodeId};
pub use label::{Label, LabelKind};
pub use symbol::{new_symbols, SymbolId, SymbolTable, Symbols};
pub use value::{Value, ValueKind};
