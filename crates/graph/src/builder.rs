//! Ergonomic construction of data trees.
//!
//! [`TreeSpec`] is an owned, recursive description of a tree fragment —
//! essentially the `type tree = set(label × tree)` of §2 as a Rust value —
//! that can be instantiated into a [`Graph`]. Sharing and cycles are
//! expressed with named markers ([`TreeSpec::Ref`] / [`TreeBuilder::define`]),
//! mirroring how OEM uses object identities as "place-holders to define
//! trees".

use crate::graph::{Graph, NodeId};
use crate::label::Label;
use crate::value::Value;
use std::collections::HashMap;

/// A recursive tree description.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeSpec {
    /// A node with the given labeled children.
    Node(Vec<(LabelSpec, TreeSpec)>),
    /// An atomic value: desugars to a node with a single value edge to a
    /// leaf, i.e. `{v: {}}`.
    Atom(Value),
    /// A reference to a node named by [`TreeBuilder::define`] or by a
    /// `Def`. Enables shared substructure and cycles.
    Ref(String),
    /// Define name = tree, then behave as that tree. Forward references to
    /// `name` (including from inside `tree` itself) resolve to this node.
    Def(String, Box<TreeSpec>),
}

/// A label description (strings intern lazily at build time).
#[derive(Debug, Clone, PartialEq)]
pub enum LabelSpec {
    Symbol(String),
    Value(Value),
}

impl From<&str> for LabelSpec {
    fn from(s: &str) -> Self {
        LabelSpec::Symbol(s.to_owned())
    }
}

impl From<String> for LabelSpec {
    fn from(s: String) -> Self {
        LabelSpec::Symbol(s)
    }
}

impl From<Value> for LabelSpec {
    fn from(v: Value) -> Self {
        LabelSpec::Value(v)
    }
}

impl From<i64> for LabelSpec {
    fn from(v: i64) -> Self {
        LabelSpec::Value(Value::Int(v))
    }
}

impl TreeSpec {
    /// The empty tree `{}`.
    pub fn empty() -> TreeSpec {
        TreeSpec::Node(Vec::new())
    }

    /// A single-edge tree `{label: sub}` — UnQL's singleton constructor.
    pub fn singleton(label: impl Into<LabelSpec>, sub: TreeSpec) -> TreeSpec {
        TreeSpec::Node(vec![(label.into(), sub)])
    }

    /// An atomic value tree.
    pub fn atom(v: impl Into<Value>) -> TreeSpec {
        TreeSpec::Atom(v.into())
    }

    /// An attribute edge to an atomic value: `{name: {v}}`.
    pub fn attr(name: &str, v: impl Into<Value>) -> (LabelSpec, TreeSpec) {
        (LabelSpec::from(name), TreeSpec::Atom(v.into()))
    }

    /// Union of the edge sets of two tree specs (only defined on `Node`s;
    /// other variants are first wrapped as singleton unions at build time by
    /// the caller).
    pub fn union(self, other: TreeSpec) -> TreeSpec {
        match (self, other) {
            (TreeSpec::Node(mut a), TreeSpec::Node(b)) => {
                a.extend(b);
                TreeSpec::Node(a)
            }
            (a, b) => TreeSpec::Node(vec![
                (LabelSpec::Symbol("_left".into()), a),
                (LabelSpec::Symbol("_right".into()), b),
            ]),
        }
    }
}

/// Incremental builder that instantiates [`TreeSpec`]s into a graph.
pub struct TreeBuilder<'g> {
    graph: &'g mut Graph,
    named: HashMap<String, NodeId>,
}

impl<'g> TreeBuilder<'g> {
    pub fn new(graph: &'g mut Graph) -> Self {
        TreeBuilder {
            graph,
            named: HashMap::new(),
        }
    }

    /// Pre-bind `name` to an existing node so `TreeSpec::Ref(name)` resolves
    /// to it.
    pub fn define(&mut self, name: &str, node: NodeId) {
        self.named.insert(name.to_owned(), node);
    }

    /// Look up a previously defined name.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        self.named.get(name).copied()
    }

    /// Instantiate `spec` as a fresh subtree, returning its root node.
    pub fn build(&mut self, spec: &TreeSpec) -> NodeId {
        match spec {
            TreeSpec::Node(entries) => {
                let n = self.graph.add_node();
                for (lspec, sub) in entries {
                    let child = self.build(sub);
                    let label = self.label(lspec);
                    self.graph.add_edge(n, label, child);
                }
                n
            }
            TreeSpec::Atom(v) => {
                let n = self.graph.add_node();
                self.graph.add_value_edge(n, v.clone());
                n
            }
            TreeSpec::Ref(name) => *self
                .named
                .get(name)
                .unwrap_or_else(|| panic!("undefined tree reference @{name}")),
            TreeSpec::Def(name, sub) => {
                // Allocate the node first so the definition can refer to
                // itself (cycles).
                let n = self.graph.add_node();
                let prev = self.named.insert(name.clone(), n);
                let body = self.build(sub);
                // Graft the body's edges onto the pre-allocated node.
                let edges = self.graph.edges(body).to_vec();
                self.graph.set_edges(n, edges);
                if let Some(p) = prev {
                    self.named.insert(name.clone(), p);
                }
                n
            }
        }
    }

    /// Instantiate `spec` and attach it under the graph root with `label`.
    pub fn attach_to_root(&mut self, label: impl Into<LabelSpec>, spec: &TreeSpec) -> NodeId {
        let node = self.build(spec);
        let label = self.label(&label.into());
        let root = self.graph.root();
        self.graph.add_edge(root, label, node);
        node
    }

    fn label(&mut self, spec: &LabelSpec) -> Label {
        match spec {
            LabelSpec::Symbol(s) => Label::symbol(self.graph.symbols(), s),
            LabelSpec::Value(v) => Label::Value(v.clone()),
        }
    }
}

/// Check that every [`TreeSpec::Ref`] in `spec` is preceded (in build
/// order) by a definition of its name, mirroring [`TreeBuilder::build`]'s
/// scoping exactly. Returns the offending name on failure.
pub fn check_refs(spec: &TreeSpec) -> Result<(), String> {
    fn walk(
        spec: &TreeSpec,
        defined: &mut std::collections::HashSet<String>,
    ) -> Result<(), String> {
        match spec {
            TreeSpec::Node(entries) => {
                for (_, sub) in entries {
                    walk(sub, defined)?;
                }
                Ok(())
            }
            TreeSpec::Atom(_) => Ok(()),
            TreeSpec::Ref(name) => {
                if defined.contains(name) {
                    Ok(())
                } else {
                    Err(format!("undefined tree reference @{name}"))
                }
            }
            TreeSpec::Def(name, sub) => {
                defined.insert(name.clone());
                walk(sub, defined)
            }
        }
    }
    walk(spec, &mut std::collections::HashSet::new())
}

/// Build a graph whose root is the instantiation of `spec`.
pub fn graph_from_spec(spec: &TreeSpec) -> Graph {
    let mut g = Graph::new();
    let root = {
        let mut b = TreeBuilder::new(&mut g);
        b.build(spec)
    };
    g.set_root(root);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_flat_node() {
        let spec = TreeSpec::Node(vec![
            TreeSpec::attr("Title", "Casablanca"),
            TreeSpec::attr("Year", 1942i64),
        ]);
        let g = graph_from_spec(&spec);
        assert_eq!(g.out_degree(g.root()), 2);
        let title = g.successors_by_name(g.root(), "Title")[0];
        assert_eq!(
            g.atomic_value(title),
            Some(&Value::Str("Casablanca".into()))
        );
    }

    #[test]
    fn empty_and_singleton() {
        let g = graph_from_spec(&TreeSpec::empty());
        assert!(g.is_leaf(g.root()));
        let g2 = graph_from_spec(&TreeSpec::singleton("a", TreeSpec::empty()));
        assert_eq!(g2.out_degree(g2.root()), 1);
    }

    #[test]
    fn def_and_ref_create_shared_node() {
        // {x: @n = {v: {}}, y: @n}
        let spec = TreeSpec::Node(vec![
            (
                "x".into(),
                TreeSpec::Def(
                    "n".into(),
                    Box::new(TreeSpec::singleton("v", TreeSpec::empty())),
                ),
            ),
            ("y".into(), TreeSpec::Ref("n".into())),
        ]);
        let g = graph_from_spec(&spec);
        let x = g.successors_by_name(g.root(), "x")[0];
        let y = g.successors_by_name(g.root(), "y")[0];
        assert_eq!(x, y);
    }

    #[test]
    fn self_referential_def_creates_cycle() {
        // @c = {next: @c}
        let spec = TreeSpec::Def(
            "c".into(),
            Box::new(TreeSpec::singleton("next", TreeSpec::Ref("c".into()))),
        );
        let g = graph_from_spec(&spec);
        assert!(g.has_cycle());
        let next = g.successors_by_name(g.root(), "next")[0];
        assert_eq!(next, g.root());
    }

    #[test]
    #[should_panic(expected = "undefined tree reference")]
    fn dangling_ref_panics() {
        graph_from_spec(&TreeSpec::Ref("nope".into()));
    }

    #[test]
    fn union_merges_edge_sets() {
        let a = TreeSpec::singleton("a", TreeSpec::empty());
        let b = TreeSpec::singleton("b", TreeSpec::empty());
        let g = graph_from_spec(&a.union(b));
        assert_eq!(g.out_degree(g.root()), 2);
    }

    #[test]
    fn integer_labels_model_arrays() {
        // §2: "arrays may be represented by labeling internal edges with integers"
        let spec = TreeSpec::Node(vec![
            (1i64.into(), TreeSpec::atom("first")),
            (2i64.into(), TreeSpec::atom("second")),
        ]);
        let g = graph_from_spec(&spec);
        assert_eq!(g.out_degree(g.root()), 2);
        let e = &g.edges(g.root())[0];
        assert!(e.label.is_value());
    }

    #[test]
    fn attach_to_root() {
        let mut g = Graph::new();
        let mut b = TreeBuilder::new(&mut g);
        b.attach_to_root("Entry", &TreeSpec::singleton("Movie", TreeSpec::empty()));
        b.attach_to_root("Entry", &TreeSpec::singleton("TVShow", TreeSpec::empty()));
        assert_eq!(g.out_degree(g.root()), 2);
    }

    #[test]
    fn def_shadowing_restores_previous_binding() {
        // outer @n, inner @n, then a Ref after the inner def resolves to outer.
        let spec = TreeSpec::Node(vec![
            (
                "a".into(),
                TreeSpec::Def("n".into(), Box::new(TreeSpec::empty())),
            ),
            (
                "b".into(),
                TreeSpec::Node(vec![(
                    "inner".into(),
                    TreeSpec::Def(
                        "n".into(),
                        Box::new(TreeSpec::singleton("i", TreeSpec::empty())),
                    ),
                )]),
            ),
            ("c".into(), TreeSpec::Ref("n".into())),
        ]);
        let g = graph_from_spec(&spec);
        let a = g.successors_by_name(g.root(), "a")[0];
        let c = g.successors_by_name(g.root(), "c")[0];
        assert_eq!(a, c);
    }
}
