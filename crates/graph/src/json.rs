//! JSON interchange.
//!
//! The tutorial's data model is, in hindsight, proto-JSON: nested,
//! self-describing, schema-optional. This module converts between the two
//! — the "extremely flexible format for data exchange between disparate
//! databases" motivation of §1.2, aimed at today's actual exchange format.
//!
//! Mapping (JSON → graph):
//!
//! * an object `{"k": v}` becomes a node with a symbol edge `k` per member;
//! * an array `[a, b]` becomes a node with integer-labeled edges `1`, `2`
//!   (§2: "arrays may be represented by labeling internal edges with
//!   integers");
//! * scalars become atoms (`{v: {}}`); `null` becomes the empty node `{}`.
//!
//! The reverse direction ([`to_json`]) inverts this exactly on graphs in
//! the image of [`from_json`]; on general graphs it (a) groups
//! duplicate-label edges into arrays, and (b) refuses cycles with
//! [`JsonError::Cyclic`] — JSON has no reference syntax, so cyclic
//! databases must be exported in the literal syntax instead.

use crate::graph::{Graph, NodeId};
use crate::label::Label;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Errors from JSON conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Parse error at a byte offset.
    Parse { at: usize, message: String },
    /// The graph contains a cycle; JSON cannot express it.
    Cyclic,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::Parse { at, message } => {
                write!(f, "JSON parse error at byte {at}: {message}")
            }
            JsonError::Cyclic => write!(f, "graph is cyclic; JSON cannot express cycles"),
        }
    }
}

impl std::error::Error for JsonError {}

// --------------------------------------------------------------------------
// Parsing (a small, strict JSON subset parser: no surrogate-pair escapes).

struct P<'a> {
    src: &'a str,
    pos: usize,
    depth: usize,
}

impl<'a> P<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError::Parse {
            at: self.pos,
            message: message.into(),
        })
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        let r = self.rest();
        let t = r.trim_start();
        self.pos += r.len() - t.len();
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest().chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), JsonError> {
        if self.eat(c) {
            Ok(())
        } else {
            self.err(format!("expected '{c}'"))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect('"')?;
        let mut out = String::new();
        let mut chars = self.rest().char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            match chars.next().and_then(|(_, h)| h.to_digit(16)) {
                                Some(d) => code = code * 16 + d,
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        match char::from_u32(code) {
                            Some(ch) => out.push(ch),
                            None => return self.err("bad unicode escape"),
                        }
                    }
                    _ => return self.err("bad escape"),
                },
                _ => out.push(c),
            }
        }
        self.err("unterminated string")
    }

    fn value(&mut self, g: &mut Graph) -> Result<NodeId, JsonError> {
        self.depth += 1;
        if self.depth > crate::literal::MAX_PARSE_DEPTH {
            return Err(JsonError::Parse {
                at: self.pos,
                message: crate::literal::depth_message(),
            });
        }
        let out = self.value_inner(g);
        self.depth -= 1;
        out
    }

    fn value_inner(&mut self, g: &mut Graph) -> Result<NodeId, JsonError> {
        match self.peek() {
            Some('{') => {
                self.expect('{')?;
                let node = g.add_node();
                if self.eat('}') {
                    return Ok(node);
                }
                loop {
                    let key = self.string()?;
                    self.expect(':')?;
                    let child = self.value(g)?;
                    g.add_sym_edge(node, &key, child);
                    if self.eat(',') {
                        continue;
                    }
                    self.expect('}')?;
                    break;
                }
                Ok(node)
            }
            Some('[') => {
                self.expect('[')?;
                let node = g.add_node();
                if self.eat(']') {
                    return Ok(node);
                }
                let mut i = 1i64;
                loop {
                    let child = self.value(g)?;
                    g.add_edge(node, Label::int(i), child);
                    i += 1;
                    if self.eat(',') {
                        continue;
                    }
                    self.expect(']')?;
                    break;
                }
                Ok(node)
            }
            Some('"') => {
                let s = self.string()?;
                let node = g.add_node();
                g.add_value_edge(node, s);
                Ok(node)
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let v = self.number()?;
                let node = g.add_node();
                g.add_value_edge(node, v);
                Ok(node)
            }
            Some('t') if self.rest().starts_with("true") => {
                self.pos += 4;
                let node = g.add_node();
                g.add_value_edge(node, true);
                Ok(node)
            }
            Some('f') if self.rest().starts_with("false") => {
                self.pos += 5;
                let node = g.add_node();
                g.add_value_edge(node, false);
                Ok(node)
            }
            Some('n') if self.rest().starts_with("null") => {
                self.pos += 4;
                Ok(g.add_node()) // null → the empty node
            }
            _ => self.err("expected a JSON value"),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let r = self.rest();
        let mut end = 0;
        let mut real = false;
        for (i, c) in r.char_indices() {
            match c {
                '0'..='9' => end = i + 1,
                '-' if i == 0 => end = i + 1,
                '.' | 'e' | 'E' => {
                    real = true;
                    end = i + 1;
                }
                '+' | '-' if real => end = i + 1,
                _ => break,
            }
        }
        if end == 0 {
            return self.err("expected number");
        }
        let text = &r[..end];
        self.pos += end;
        if real {
            text.parse()
                .map(Value::Real)
                .or_else(|_| self.err("bad number"))
        } else {
            text.parse()
                .map(Value::Int)
                .or_else(|_| self.err("bad number"))
        }
    }
}

/// Parse a JSON document into a fresh rooted graph.
pub fn from_json(src: &str) -> Result<Graph, JsonError> {
    let mut g = Graph::new();
    let mut p = P {
        src,
        pos: 0,
        depth: 0,
    };
    let root = p.value(&mut g)?;
    p.skip_ws();
    if p.pos != src.len() {
        return p.err("trailing input after JSON value");
    }
    g.set_root(root);
    g.gc();
    Ok(g)
}

// --------------------------------------------------------------------------
// Serialization.

/// Serialize the subgraph under `node` as JSON. Fails on cycles. Shared
/// subtrees are duplicated (JSON has no references).
pub fn to_json(g: &Graph, node: NodeId) -> Result<String, JsonError> {
    if g.has_cycle() {
        return Err(JsonError::Cyclic);
    }
    let mut out = String::new();
    write_node(g, node, &mut out);
    Ok(out)
}

/// Serialize the whole graph from its root.
pub fn graph_to_json(g: &Graph) -> Result<String, JsonError> {
    to_json(g, g.root())
}

fn write_node(g: &Graph, n: NodeId, out: &mut String) {
    // Atom?
    if let Some(v) = g.atomic_value(n) {
        write_scalar(v, out);
        return;
    }
    let edges = g.edges(n);
    if edges.is_empty() {
        out.push_str("null");
        return;
    }
    // Pure array? (all labels are ints — emit positionally, sorted).
    let all_ints = edges
        .iter()
        .all(|e| matches!(e.label.as_value(), Some(Value::Int(_))));
    if all_ints {
        let mut items: Vec<(i64, NodeId)> = edges
            .iter()
            .map(|e| match e.label.as_value() {
                Some(Value::Int(i)) => (*i, e.to),
                _ => unreachable!("checked all_ints"),
            })
            .collect();
        items.sort_by_key(|(i, _)| *i);
        out.push('[');
        for (k, (_, to)) in items.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            write_node(g, *to, out);
        }
        out.push(']');
        return;
    }
    // Object: group edges by label text; duplicate labels become arrays.
    let mut groups: Vec<(String, Vec<NodeId>)> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    for e in edges {
        let key = match &e.label {
            Label::Symbol(s) => g.symbols().resolve(*s).to_string(),
            Label::Value(v) => match v {
                Value::Str(s) => s.clone(),
                other => other.to_string(),
            },
        };
        match index.get(&key) {
            Some(&i) => groups[i].1.push(e.to),
            None => {
                index.insert(key.clone(), groups.len());
                groups.push((key, vec![e.to]));
            }
        }
    }
    out.push('{');
    for (k, (key, targets)) in groups.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        write_string(key, out);
        out.push(':');
        if targets.len() == 1 {
            write_node(g, targets[0], out);
        } else {
            out.push('[');
            for (j, t) in targets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_node(g, *t, out);
            }
            out.push(']');
        }
    }
    out.push('}');
}

fn write_scalar(v: &Value, out: &mut String) {
    match v {
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Real(r) => {
            if !r.is_finite() {
                out.push_str("null"); // JSON has no NaN/inf
            } else if r.fract() == 0.0 && r.abs() < 1e15 {
                // Keep reals distinguishable from ints on re-import.
                let _ = write!(out, "{r:.1}");
            } else {
                let _ = write!(out, "{r}");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisim::graphs_bisimilar;
    use crate::literal::parse_graph;

    #[test]
    fn import_object() {
        let g = from_json(r#"{"Movie": {"Title": "Casablanca", "Year": 1942}}"#).unwrap();
        let m = g.successors_by_name(g.root(), "Movie")[0];
        let t = g.successors_by_name(m, "Title")[0];
        assert_eq!(g.atomic_value(t), Some(&Value::Str("Casablanca".into())));
        let y = g.successors_by_name(m, "Year")[0];
        assert_eq!(g.atomic_value(y), Some(&Value::Int(1942)));
    }

    #[test]
    fn import_array_uses_int_labels() {
        let g = from_json(r#"{"cast": ["Bogart", "Bacall"]}"#).unwrap();
        let cast = g.successors_by_name(g.root(), "cast")[0];
        assert_eq!(g.out_degree(cast), 2);
        assert!(g.edges(cast).iter().all(|e| e.label.is_value()));
    }

    #[test]
    fn import_scalars_and_null() {
        let g = from_json(r#"{"i": 1, "r": 2.5, "s": "x", "b": true, "n": null}"#).unwrap();
        let n = g.successors_by_name(g.root(), "n")[0];
        assert!(g.is_leaf(n));
        let r = g.successors_by_name(g.root(), "r")[0];
        assert_eq!(g.atomic_value(r), Some(&Value::Real(2.5)));
        let b = g.successors_by_name(g.root(), "b")[0];
        assert_eq!(g.atomic_value(b), Some(&Value::Bool(true)));
    }

    #[test]
    fn import_escapes() {
        let g = from_json(r#"{"s": "a\"b\nA"}"#).unwrap();
        let s = g.successors_by_name(g.root(), "s")[0];
        assert_eq!(g.atomic_value(s), Some(&Value::Str("a\"b\nA".into())));
    }

    #[test]
    fn import_errors() {
        assert!(from_json("{").is_err());
        assert!(from_json("{}extra").is_err());
        assert!(from_json(r#"{"a" 1}"#).is_err());
        assert!(from_json("[1,]").is_err());
        assert!(from_json("nul").is_err());
    }

    #[test]
    fn json_round_trip() {
        let src = r#"{"Movie":{"Title":"Casablanca","Cast":["Bogart","Bacall"],"Year":1942,"Rating":8.5,"Color":false,"Notes":null}}"#;
        let g = from_json(src).unwrap();
        let out = graph_to_json(&g).unwrap();
        let g2 = from_json(&out).unwrap();
        assert!(graphs_bisimilar(&g, &g2), "round trip broke:\n{out}");
    }

    #[test]
    fn duplicate_labels_export_as_arrays() {
        let g = parse_graph(r#"{Cast: {Actors: "Bogart", Actors: "Bacall"}}"#).unwrap();
        let json = graph_to_json(&g).unwrap();
        assert!(json.contains(r#""Actors":["Bogart","Bacall"]"#), "{json}");
        // And re-imports to a bisimilar graph (array indices replace the
        // duplicate labels — shape differs, so compare via the Actors
        // count after a collapse of index edges... here we just re-import
        // and check the values survive).
        let g2 = from_json(&json).unwrap();
        let cast = g2.successors_by_name(g2.root(), "Cast")[0];
        let actors = g2.successors_by_name(cast, "Actors")[0];
        assert_eq!(g2.out_degree(actors), 2);
    }

    #[test]
    fn cycles_are_refused() {
        let g = parse_graph("@x = {next: @x}").unwrap();
        assert_eq!(graph_to_json(&g), Err(JsonError::Cyclic));
    }

    #[test]
    fn reals_stay_reals_through_round_trip() {
        let g = from_json(r#"{"x": 2.0}"#).unwrap();
        let json = graph_to_json(&g).unwrap();
        let g2 = from_json(&json).unwrap();
        let x = g2.successors_by_name(g2.root(), "x")[0];
        assert_eq!(g2.atomic_value(x), Some(&Value::Real(2.0)));
    }

    #[test]
    fn literal_and_json_agree_on_tree_data() {
        let lit = parse_graph(r#"{a: {b: 1, c: "x"}, d: true}"#).unwrap();
        let json = graph_to_json(&lit).unwrap();
        let back = from_json(&json).unwrap();
        assert!(graphs_bisimilar(&lit, &back));
    }

    #[test]
    fn shared_subtrees_are_duplicated() {
        let g = parse_graph("{a: @s = {v: 1}, b: @s}").unwrap();
        let json = graph_to_json(&g).unwrap();
        let back = from_json(&json).unwrap();
        // Bisimilar (extensional equality) even though sharing was lost.
        assert!(graphs_bisimilar(&g, &back));
        let a = back.successors_by_name(back.root(), "a")[0];
        let b = back.successors_by_name(back.root(), "b")[0];
        assert_ne!(a, b, "JSON cannot express sharing");
    }

    #[test]
    fn nested_arrays() {
        let g = from_json("[[1,2],[3]]").unwrap();
        assert_eq!(g.out_degree(g.root()), 2);
        let json = graph_to_json(&g).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
    }
}
