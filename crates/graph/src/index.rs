//! Label, value, and text indexes.
//!
//! §4 proposes "the addition of path or text indices on labels and strings"
//! as the optimization route for semistructured stores. This module builds
//! the edge-level indexes; path indexes (DataGuides) live in `ssd-schema`.
//!
//! These indexes answer the §1.3 browsing queries without a full scan:
//!
//! * *"Where in the database is the string "Casablanca" to be found?"* —
//!   [`GraphIndex::find_string`] (value edges and symbol edges).
//! * *"Are there integers in the database greater than 2^16?"* —
//!   [`GraphIndex::ints_in_range`].
//! * *"What objects have an attribute name that starts with 'act'?"* —
//!   [`GraphIndex::attrs_with_prefix`].

use crate::graph::{Graph, NodeId};
use crate::label::Label;
use crate::symbol::SymbolId;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// An edge occurrence `(from, to)`.
pub type Occurrence = (NodeId, NodeId);

/// Secondary indexes over all edges of a graph.
///
/// Built once by a single scan ([`GraphIndex::build`]); the index is a
/// snapshot — rebuild after mutating the graph.
#[derive(Debug, Default)]
pub struct GraphIndex {
    /// symbol-labeled edges, keyed by symbol.
    by_symbol: HashMap<SymbolId, Vec<Occurrence>>,
    /// value-labeled edges, keyed by value (ordered, enabling ranges).
    by_value: BTreeMap<Value, Vec<Occurrence>>,
    edges_indexed: usize,
}

impl GraphIndex {
    /// Scan `g` and build the index over all edges reachable from the root.
    pub fn build(g: &Graph) -> GraphIndex {
        let mut idx = GraphIndex::default();
        for n in g.reachable() {
            for e in g.edges(n) {
                idx.edges_indexed += 1;
                match &e.label {
                    Label::Symbol(s) => idx.by_symbol.entry(*s).or_default().push((n, e.to)),
                    Label::Value(v) => idx.by_value.entry(v.clone()).or_default().push((n, e.to)),
                }
            }
        }
        idx
    }

    /// Number of edges covered by the index.
    pub fn edges_indexed(&self) -> usize {
        self.edges_indexed
    }

    /// All occurrences of edges labeled with symbol `sym`.
    pub fn symbol_edges(&self, sym: SymbolId) -> &[Occurrence] {
        self.by_symbol.get(&sym).map_or(&[], Vec::as_slice)
    }

    /// All occurrences of edges labeled with exactly `value`.
    pub fn value_edges(&self, value: &Value) -> &[Occurrence] {
        self.by_value.get(value).map_or(&[], Vec::as_slice)
    }

    /// §1.3 query 1: every edge carrying the string `text`, as a value or
    /// as a symbol name.
    pub fn find_string(&self, g: &Graph, text: &str) -> Vec<Occurrence> {
        let mut out: Vec<Occurrence> = self.value_edges(&Value::Str(text.to_owned())).to_vec();
        if let Some(sym) = g.symbols().get(text) {
            out.extend_from_slice(self.symbol_edges(sym));
        }
        out
    }

    /// §1.3 query 2: integer values in `[min, max]` (either bound optional).
    pub fn ints_in_range(&self, min: Option<i64>, max: Option<i64>) -> Vec<(i64, Occurrence)> {
        let lo = match min {
            Some(m) => Bound::Included(Value::Int(m)),
            None => Bound::Included(Value::Int(i64::MIN)),
        };
        let hi = match max {
            Some(m) => Bound::Included(Value::Int(m)),
            None => Bound::Included(Value::Int(i64::MAX)),
        };
        let mut out = Vec::new();
        for (v, occs) in self.by_value.range((lo, hi)) {
            if let Value::Int(i) = v {
                for occ in occs {
                    out.push((*i, *occ));
                }
            }
        }
        out
    }

    /// §1.3 query 3: occurrences of symbol-labeled edges whose name starts
    /// with `prefix`. Returns `(symbol, from, to)` triples; the `from`
    /// nodes are "the objects that have such an attribute".
    pub fn attrs_with_prefix(&self, g: &Graph, prefix: &str) -> Vec<(SymbolId, Occurrence)> {
        let mut out = Vec::new();
        for sym in g.symbols().symbols_with_prefix(prefix) {
            for occ in self.symbol_edges(sym) {
                out.push((sym, *occ));
            }
        }
        out
    }

    /// String values with a given prefix (text index on strings, §4).
    pub fn strings_with_prefix(&self, prefix: &str) -> Vec<(&str, Occurrence)> {
        let start = Value::Str(prefix.to_owned());
        let mut out = Vec::new();
        for (v, occs) in self.by_value.range(start..) {
            match v {
                Value::Str(s) if s.starts_with(prefix) => {
                    for occ in occs {
                        out.push((s.as_str(), *occ));
                    }
                }
                Value::Str(_) => break,
                _ => break,
            }
        }
        out
    }

    /// All distinct values of a given kind present in the database.
    pub fn distinct_values(&self) -> impl Iterator<Item = &Value> {
        self.by_value.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::parse_graph;

    fn db() -> Graph {
        parse_graph(
            r#"{Entry: {Movie: {Title: "Casablanca",
                                 Cast: {Actors: "Bogart", Actors: "Bacall"},
                                 BoxOffice: 1200000}},
                Entry: {Movie: {Title: "Play it again, Sam",
                                 Cast: {Credit: {actors: "Allen"}},
                                 Year: 1972}}}"#,
        )
        .unwrap()
    }

    #[test]
    fn build_counts_edges() {
        let g = db();
        let idx = GraphIndex::build(&g);
        assert_eq!(idx.edges_indexed(), g.edge_count());
    }

    #[test]
    fn find_string_value() {
        let g = db();
        let idx = GraphIndex::build(&g);
        let hits = idx.find_string(&g, "Casablanca");
        assert_eq!(hits.len(), 1);
        assert!(idx.find_string(&g, "Nope").is_empty());
    }

    #[test]
    fn find_string_matches_symbols_too() {
        let g = db();
        let idx = GraphIndex::build(&g);
        // "Title" occurs as a symbol on two edges.
        let hits = idx.find_string(&g, "Title");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn ints_greater_than_2_pow_16() {
        let g = db();
        let idx = GraphIndex::build(&g);
        let hits = idx.ints_in_range(Some(1 << 16), None);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 1_200_000);
        // Both integers are >= 0.
        assert_eq!(idx.ints_in_range(Some(0), None).len(), 2);
        // Bounded range excludes the big one.
        assert_eq!(idx.ints_in_range(Some(0), Some(10_000)).len(), 1);
    }

    #[test]
    fn attr_prefix_act_is_case_sensitive() {
        let g = db();
        let idx = GraphIndex::build(&g);
        // "Actors" x2 edges plus "actors" x1 — prefix "Act" matches only the former.
        assert_eq!(idx.attrs_with_prefix(&g, "Act").len(), 2);
        assert_eq!(idx.attrs_with_prefix(&g, "act").len(), 1);
        assert_eq!(idx.attrs_with_prefix(&g, "zzz").len(), 0);
    }

    #[test]
    fn string_prefix_search() {
        let g = db();
        let idx = GraphIndex::build(&g);
        let hits = idx.strings_with_prefix("Ca");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, "Casablanca");
        assert_eq!(idx.strings_with_prefix("B").len(), 2);
        assert!(idx.strings_with_prefix("zz").is_empty());
    }

    #[test]
    fn value_edges_exact() {
        let g = db();
        let idx = GraphIndex::build(&g);
        assert_eq!(idx.value_edges(&Value::Int(1972)).len(), 1);
        assert_eq!(idx.value_edges(&Value::Int(9999)).len(), 0);
    }

    #[test]
    fn unreachable_edges_are_not_indexed() {
        let mut g = db();
        let orphan = g.add_node();
        let leaf = g.add_node();
        g.add_edge(orphan, Label::str("ghost"), leaf);
        let idx = GraphIndex::build(&g);
        assert!(idx.find_string(&g, "ghost").is_empty());
    }

    #[test]
    fn distinct_values_sorted() {
        let g = db();
        let idx = GraphIndex::build(&g);
        let vals: Vec<&Value> = idx.distinct_values().collect();
        assert!(vals.windows(2).all(|w| w[0] < w[1]));
    }
}
