//! Graphviz (DOT) export, for visualising instances like Figure 1.

use crate::graph::{Graph, NodeId};
use std::fmt::Write as _;

/// Options for DOT rendering.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name in the `digraph <name> { ... }` header.
    pub name: String,
    /// Only render nodes reachable from the root.
    pub reachable_only: bool,
    /// Mark the root with a doubled circle.
    pub highlight_root: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "ssd".to_owned(),
            reachable_only: true,
            highlight_root: true,
        }
    }
}

/// Render `g` as a DOT digraph. Nodes are anonymous circles (the model puts
/// all information on edges); edge labels show symbols bare and values in
/// their literal form.
pub fn to_dot(g: &Graph, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(&opts.name));
    let _ = writeln!(out, "  node [shape=circle, label=\"\", width=0.15];");
    let nodes: Vec<NodeId> = if opts.reachable_only {
        g.reachable()
    } else {
        g.node_ids().collect()
    };
    for &n in &nodes {
        if opts.highlight_root && n == g.root() {
            let _ = writeln!(out, "  n{} [shape=doublecircle];", n.index());
        } else {
            let _ = writeln!(out, "  n{};", n.index());
        }
    }
    for &n in &nodes {
        for e in g.edges(n) {
            let label = e.label.display(g.symbols()).to_string();
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{}\"];",
                n.index(),
                e.to.index(),
                escape(&label)
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Render with default options.
pub fn to_dot_default(g: &Graph) -> String {
    to_dot(g, &DotOptions::default())
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "g".to_owned()
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::parse_graph;

    #[test]
    fn renders_nodes_and_edges() {
        let g = parse_graph(r#"{Movie: {Title: "Casablanca"}}"#).unwrap();
        let dot = to_dot_default(&g);
        assert!(dot.starts_with("digraph ssd {"));
        assert!(dot.contains("label=\"Movie\""));
        assert!(dot.contains("label=\"\\\"Casablanca\\\"\""));
        assert!(dot.contains("doublecircle"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn reachable_only_hides_orphans() {
        let mut g = parse_graph("{a: 1}").unwrap();
        let orphan = g.add_node();
        let dot = to_dot_default(&g);
        assert!(!dot.contains(&format!("n{};", orphan.index())));
        let all = to_dot(
            &g,
            &DotOptions {
                reachable_only: false,
                ..DotOptions::default()
            },
        );
        assert!(all.contains(&format!("n{};", orphan.index())));
    }

    #[test]
    fn sanitize_graph_name() {
        let g = parse_graph("{}").unwrap();
        let dot = to_dot(
            &g,
            &DotOptions {
                name: "my graph!".into(),
                ..DotOptions::default()
            },
        );
        assert!(dot.starts_with("digraph my_graph_ {"));
    }

    #[test]
    fn cycles_render() {
        let g = parse_graph("@x = {next: @x}").unwrap();
        let dot = to_dot_default(&g);
        assert!(dot.contains("-> n"));
    }
}
