//! Edge labels: the tagged union `int | string | ... | symbol` of §2.
//!
//! A [`Label`] is either a *symbol* (an interned attribute/class-like name
//! such as `Movie`, `Title`, or an array index rendered as a symbol-free
//! integer) or a *base value* (the data carried on leaf edges such as
//! `"Casablanca"` or `1.2E6` in Figure 1).
//!
//! Note that the paper's model puts arrays in by "labeling internal edges
//! with integers" — that is a `Label::Value(Value::Int(i))` here.

use crate::symbol::{SymbolId, SymbolTable};
use crate::value::{Value, ValueKind};
use std::fmt;

/// The label on an edge of the data graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Label {
    /// A schema-like name (`Movie`, `Title`, ...). Interned.
    Symbol(SymbolId),
    /// A base data value (`"Casablanca"`, `1`, `true`, ...).
    Value(Value),
}

/// Dynamic type of a label, extending [`ValueKind`] with `Symbol`.
///
/// This is the "switch on the type" discriminator that makes the data
/// self-describing (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LabelKind {
    Symbol,
    Int,
    Real,
    Str,
    Bool,
}

impl LabelKind {
    pub fn name(self) -> &'static str {
        match self {
            LabelKind::Symbol => "symbol",
            LabelKind::Int => "int",
            LabelKind::Real => "real",
            LabelKind::Str => "string",
            LabelKind::Bool => "bool",
        }
    }

    pub fn from_value_kind(k: ValueKind) -> Self {
        match k {
            ValueKind::Int => LabelKind::Int,
            ValueKind::Real => LabelKind::Real,
            ValueKind::Str => LabelKind::Str,
            ValueKind::Bool => LabelKind::Bool,
        }
    }
}

impl fmt::Display for LabelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Label {
    /// Construct a symbol label, interning `name` in `symbols`.
    pub fn symbol(symbols: &SymbolTable, name: &str) -> Label {
        Label::Symbol(symbols.intern(name))
    }

    /// Construct a value label.
    pub fn value(v: impl Into<Value>) -> Label {
        Label::Value(v.into())
    }

    /// An integer value label (array index or data).
    pub fn int(i: i64) -> Label {
        Label::Value(Value::Int(i))
    }

    /// A string value label.
    pub fn str(s: impl Into<String>) -> Label {
        Label::Value(Value::Str(s.into()))
    }

    pub fn kind(&self) -> LabelKind {
        match self {
            Label::Symbol(_) => LabelKind::Symbol,
            Label::Value(v) => LabelKind::from_value_kind(v.kind()),
        }
    }

    pub fn is_symbol(&self) -> bool {
        matches!(self, Label::Symbol(_))
    }

    pub fn is_value(&self) -> bool {
        matches!(self, Label::Value(_))
    }

    pub fn as_symbol(&self) -> Option<SymbolId> {
        match self {
            Label::Symbol(s) => Some(*s),
            _ => None,
        }
    }

    pub fn as_value(&self) -> Option<&Value> {
        match self {
            Label::Value(v) => Some(v),
            _ => None,
        }
    }

    /// Render this label as a string using `symbols` to resolve names.
    pub fn display<'a>(&'a self, symbols: &'a SymbolTable) -> LabelDisplay<'a> {
        LabelDisplay {
            label: self,
            symbols,
        }
    }

    /// The text of this label: the symbol name, or the string contents of a
    /// `Str` value. Used by text search over labels.
    pub fn text(&self, symbols: &SymbolTable) -> Option<String> {
        match self {
            Label::Symbol(s) => Some(symbols.resolve(*s).to_string()),
            Label::Value(Value::Str(s)) => Some(s.clone()),
            Label::Value(_) => None,
        }
    }
}

impl From<Value> for Label {
    fn from(v: Value) -> Self {
        Label::Value(v)
    }
}

impl From<SymbolId> for Label {
    fn from(s: SymbolId) -> Self {
        Label::Symbol(s)
    }
}

/// Display adaptor pairing a label with its symbol table.
pub struct LabelDisplay<'a> {
    label: &'a Label,
    symbols: &'a SymbolTable,
}

impl fmt::Display for LabelDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.label {
            Label::Symbol(s) => write!(f, "{}", self.symbols.resolve(*s)),
            Label::Value(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::new_symbols;

    #[test]
    fn symbol_label_round_trip() {
        let syms = new_symbols();
        let l = Label::symbol(&syms, "Movie");
        assert!(l.is_symbol());
        assert_eq!(l.kind(), LabelKind::Symbol);
        assert_eq!(l.display(&syms).to_string(), "Movie");
        assert_eq!(l.text(&syms).as_deref(), Some("Movie"));
    }

    #[test]
    fn value_label_kinds() {
        assert_eq!(Label::int(3).kind(), LabelKind::Int);
        assert_eq!(Label::str("x").kind(), LabelKind::Str);
        assert_eq!(Label::value(1.5).kind(), LabelKind::Real);
        assert_eq!(Label::value(true).kind(), LabelKind::Bool);
    }

    #[test]
    fn value_label_display_quotes_strings() {
        let syms = new_symbols();
        let l = Label::str("Casablanca");
        assert_eq!(l.display(&syms).to_string(), "\"Casablanca\"");
        assert_eq!(l.text(&syms).as_deref(), Some("Casablanca"));
        assert_eq!(Label::int(7).display(&syms).to_string(), "7");
        assert_eq!(Label::int(7).text(&syms), None);
    }

    #[test]
    fn labels_order_symbols_before_values() {
        let syms = new_symbols();
        let s = Label::symbol(&syms, "a");
        let v = Label::int(0);
        assert!(s < v);
    }

    #[test]
    fn accessors() {
        let syms = new_symbols();
        let s = Label::symbol(&syms, "x");
        assert!(s.as_symbol().is_some());
        assert!(s.as_value().is_none());
        let v = Label::int(1);
        assert!(v.as_symbol().is_none());
        assert_eq!(v.as_value(), Some(&Value::Int(1)));
    }

    #[test]
    fn kind_names() {
        assert_eq!(LabelKind::Symbol.name(), "symbol");
        assert_eq!(LabelKind::Str.to_string(), "string");
    }
}
