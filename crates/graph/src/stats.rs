//! Descriptive statistics of a data graph — the numbers a user browses
//! before writing queries against an unknown database (§1.3's spirit).

use crate::graph::{Graph, NodeId};
use crate::label::{Label, LabelKind};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// A statistical profile of the reachable part of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphProfile {
    pub nodes: usize,
    pub edges: usize,
    pub leaves: usize,
    pub cyclic: bool,
    /// Edge counts per label kind (symbol/int/real/string/bool).
    pub kind_histogram: BTreeMap<LabelKind, usize>,
    /// Edge counts per symbol name, descending.
    pub symbol_histogram: Vec<(String, usize)>,
    /// Max out-degree and the node attaining it.
    pub max_out_degree: (usize, NodeId),
    /// Max in-degree (within the reachable fragment) and its node.
    pub max_in_degree: (usize, NodeId),
    /// Eccentricity of the root: the BFS depth of the farthest node.
    pub depth: usize,
}

/// Profile the reachable fragment of `g`.
pub fn profile(g: &Graph) -> GraphProfile {
    let reachable = g.reachable();
    let mut kind_histogram: BTreeMap<LabelKind, usize> = BTreeMap::new();
    let mut symbol_counts: HashMap<String, usize> = HashMap::new();
    let mut indeg: HashMap<NodeId, usize> = HashMap::new();
    let mut edges = 0usize;
    let mut leaves = 0usize;
    let mut max_out = (0usize, g.root());
    for &n in &reachable {
        let deg = g.out_degree(n);
        if deg == 0 {
            leaves += 1;
        }
        if deg > max_out.0 {
            max_out = (deg, n);
        }
        for e in g.edges(n) {
            edges += 1;
            *kind_histogram.entry(e.label.kind()).or_insert(0) += 1;
            if let Label::Symbol(s) = &e.label {
                *symbol_counts
                    .entry(g.symbols().resolve(*s).to_string())
                    .or_insert(0) += 1;
            }
            *indeg.entry(e.to).or_insert(0) += 1;
        }
    }
    let mut symbol_histogram: Vec<(String, usize)> = symbol_counts.into_iter().collect();
    symbol_histogram.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let max_in = indeg
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(&n, &c)| (c, n))
        .unwrap_or((0, g.root()));
    // Root eccentricity by BFS.
    let mut depth = 0usize;
    let mut seen = vec![false; g.node_count()];
    let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
    seen[g.root().index()] = true;
    queue.push_back((g.root(), 0));
    while let Some((n, d)) = queue.pop_front() {
        depth = depth.max(d);
        for e in g.edges(n) {
            if !seen[e.to.index()] {
                seen[e.to.index()] = true;
                queue.push_back((e.to, d + 1));
            }
        }
    }
    GraphProfile {
        nodes: reachable.len(),
        edges,
        leaves,
        cyclic: g.has_cycle(),
        kind_histogram,
        symbol_histogram,
        max_out_degree: max_out,
        max_in_degree: max_in,
        depth,
    }
}

impl std::fmt::Display for GraphProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} nodes ({} leaves), {} edges, BFS depth {}{}",
            self.nodes,
            self.leaves,
            self.edges,
            self.depth,
            if self.cyclic { ", cyclic" } else { "" }
        )?;
        writeln!(
            f,
            "max out-degree {} at {}, max in-degree {} at {}",
            self.max_out_degree.0,
            self.max_out_degree.1,
            self.max_in_degree.0,
            self.max_in_degree.1
        )?;
        write!(f, "edge kinds:")?;
        for (k, c) in &self.kind_histogram {
            write!(f, " {k}={c}")?;
        }
        writeln!(f)?;
        write!(f, "top symbols:")?;
        for (name, c) in self.symbol_histogram.iter().take(8) {
            write!(f, " {name}={c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::parse_graph;

    fn db() -> Graph {
        parse_graph(
            r#"{Movie: {Title: "C", Cast: {Actors: "B", Actors: "L"}, Year: 1942},
                Movie: {Title: "S"},
                Loop: @x = {next: @x}}"#,
        )
        .unwrap()
    }

    #[test]
    fn counts_are_consistent() {
        let g = db();
        let p = profile(&g);
        assert_eq!(p.nodes, g.reachable().len());
        assert_eq!(p.edges, g.edge_count());
        assert!(p.cyclic);
        assert!(p.leaves > 0);
        let kind_total: usize = p.kind_histogram.values().sum();
        assert_eq!(kind_total, p.edges);
    }

    #[test]
    fn symbol_histogram_sorted_desc() {
        let p = profile(&db());
        assert!(p.symbol_histogram.windows(2).all(|w| w[0].1 >= w[1].1));
        let movie = p
            .symbol_histogram
            .iter()
            .find(|(n, _)| n == "Movie")
            .expect("Movie counted");
        assert_eq!(movie.1, 2);
    }

    #[test]
    fn degrees_and_depth() {
        let g = parse_graph("{a: {b: {c: {d: 1}}}}").unwrap();
        let p = profile(&g);
        assert_eq!(p.depth, 5); // a.b.c.d + value edge
        assert_eq!(p.max_out_degree.0, 1);
        let g2 = parse_graph("{x: @s = {}, y: @s, z: @s}").unwrap();
        let p2 = profile(&g2);
        assert_eq!(p2.max_in_degree.0, 3);
        assert_eq!(p2.max_out_degree.0, 3);
    }

    #[test]
    fn empty_graph_profile() {
        let g = Graph::new();
        let p = profile(&g);
        assert_eq!(p.nodes, 1);
        assert_eq!(p.edges, 0);
        assert_eq!(p.leaves, 1);
        assert_eq!(p.depth, 0);
        assert!(!p.cyclic);
    }

    #[test]
    fn display_is_informative() {
        let shown = profile(&db()).to_string();
        assert!(shown.contains("cyclic"));
        assert!(shown.contains("edge kinds:"));
        assert!(shown.contains("Movie=2"));
    }
}
