//! Whole-graph operations: union, cross-graph copy, subgraph extraction.
//!
//! §2 singles out *union* as the operation that distinguishes the
//! edge-labeled model from node-labeled variants ("it makes the operation of
//! taking the union of two trees difficult to define"). In the edge-labeled
//! model union is trivial: the union of two trees is a node whose edge set
//! is the union of theirs.

use crate::graph::{Graph, NodeId};
use crate::label::Label;
use std::collections::HashMap;

/// Union of two trees *within one graph*: a fresh node whose edges are the
/// set-union of the edges of `a` and `b`. (UnQL's `∪`.)
pub fn union(g: &mut Graph, a: NodeId, b: NodeId) -> NodeId {
    let mut edges = g.edges(a).to_vec();
    for e in g.edges(b) {
        if !edges.contains(e) {
            edges.push(e.clone());
        }
    }
    let n = g.add_node();
    g.set_edges(n, edges);
    n
}

/// Union of many trees.
pub fn union_all(g: &mut Graph, parts: &[NodeId]) -> NodeId {
    let mut edges = Vec::new();
    for &p in parts {
        for e in g.edges(p) {
            if !edges.contains(e) {
                edges.push(e.clone());
            }
        }
    }
    let n = g.add_node();
    g.set_edges(n, edges);
    n
}

/// The singleton constructor `{label: t}`.
pub fn singleton(g: &mut Graph, label: Label, sub: NodeId) -> NodeId {
    let n = g.add_node();
    g.add_edge(n, label, sub);
    n
}

/// Copy the subgraph reachable from `src_root` in `src` into `dst`,
/// preserving sharing and cycles. Returns the image of `src_root`.
///
/// Symbols are translated through strings when the two graphs do not share
/// a symbol table, so this also serves as the data-exchange primitive
/// between databases (§1.2).
pub fn copy_subgraph(src: &Graph, src_root: NodeId, dst: &mut Graph) -> NodeId {
    let shared = src.shares_symbols(dst);
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    // Two phases so cycles work: allocate all images first, then wire edges.
    let reachable = src.reachable_from(src_root);
    for &n in &reachable {
        let img = dst.add_node();
        map.insert(n, img);
    }
    for &n in &reachable {
        let from = map[&n];
        for e in src.edges(n) {
            let label = if shared {
                e.label.clone()
            } else {
                translate_label(src, &e.label, dst)
            };
            let to = map[&e.to];
            dst.add_edge(from, label, to);
        }
    }
    map[&src_root]
}

/// Translate a label from `src`'s symbol table into `dst`'s.
pub fn translate_label(src: &Graph, label: &Label, dst: &Graph) -> Label {
    match label {
        Label::Symbol(s) => Label::symbol(dst.symbols(), &src.symbols().resolve(*s)),
        Label::Value(v) => Label::Value(v.clone()),
    }
}

/// Extract the subgraph reachable from `node` as a fresh graph rooted
/// there (sharing the symbol table).
pub fn extract_subgraph(g: &Graph, node: NodeId) -> Graph {
    let mut out = Graph::with_symbols(g.symbols_handle());
    let root = copy_subgraph(g, node, &mut out);
    out.set_root(root);
    out.gc();
    out
}

/// Deep append: attach a copy of `other` (from its root) under `g`'s root
/// with `label`. Returns the image of `other`'s root.
pub fn attach_graph(g: &mut Graph, label: Label, other: &Graph) -> NodeId {
    let img = copy_subgraph(other, other.root(), g);
    let root = g.root();
    g.add_edge(root, label, img);
    img
}

/// Union of two *graphs*: a fresh graph whose root edge set is the union of
/// both roots' edge sets.
pub fn graph_union(g1: &Graph, g2: &Graph) -> Graph {
    let mut out = Graph::with_symbols(g1.symbols_handle());
    let r1 = copy_subgraph(g1, g1.root(), &mut out);
    let r2 = copy_subgraph(g2, g2.root(), &mut out);
    let u = union(&mut out, r1, r2);
    out.set_root(u);
    out.gc();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisim::graphs_bisimilar;
    use crate::literal::{parse_graph, write_graph};

    #[test]
    fn union_merges_edges() {
        let mut g = parse_graph("{l: {a: 1}, r: {b: 2}}").unwrap();
        let l = g.successors_by_name(g.root(), "l")[0];
        let r = g.successors_by_name(g.root(), "r")[0];
        let u = union(&mut g, l, r);
        assert_eq!(g.out_degree(u), 2);
        assert_eq!(g.successors_by_name(u, "a").len(), 1);
        assert_eq!(g.successors_by_name(u, "b").len(), 1);
    }

    #[test]
    fn union_dedupes_shared_edges() {
        let mut g = parse_graph("{l: {a: @s = {}}, r: {}}").unwrap();
        let l = g.successors_by_name(g.root(), "l")[0];
        let u = union(&mut g, l, l);
        assert_eq!(g.out_degree(u), 1);
    }

    #[test]
    fn union_all_of_empty_is_empty() {
        let mut g = Graph::new();
        let u = union_all(&mut g, &[]);
        assert!(g.is_leaf(u));
    }

    #[test]
    fn copy_preserves_sharing_and_cycles() {
        let src = parse_graph("{a: @x = {next: @x}, b: @x}").unwrap();
        let mut dst = Graph::new();
        let img = copy_subgraph(&src, src.root(), &mut dst);
        dst.set_root(img);
        assert!(dst.has_cycle());
        let a = dst.successors_by_name(dst.root(), "a")[0];
        let b = dst.successors_by_name(dst.root(), "b")[0];
        assert_eq!(a, b);
        assert!(graphs_bisimilar(&src, &dst));
    }

    #[test]
    fn copy_translates_symbols_across_tables() {
        let src = parse_graph("{Movie: {Title: \"C\"}}").unwrap();
        let mut dst = Graph::new(); // different symbol table
        assert!(!src.shares_symbols(&dst));
        let img = copy_subgraph(&src, src.root(), &mut dst);
        dst.set_root(img);
        assert_eq!(dst.successors_by_name(dst.root(), "Movie").len(), 1);
        assert!(graphs_bisimilar(&src, &dst));
    }

    #[test]
    fn extract_subgraph_roots_at_node() {
        let g = parse_graph("{a: {inner: {x: 1}}, b: 2}").unwrap();
        let a = g.successors_by_name(g.root(), "a")[0];
        let sub = extract_subgraph(&g, a);
        assert_eq!(sub.successors_by_name(sub.root(), "inner").len(), 1);
        assert!(sub.is_fully_reachable());
        let expect = parse_graph("{inner: {x: 1}}").unwrap();
        assert!(graphs_bisimilar(&sub, &expect));
    }

    #[test]
    fn graph_union_is_commutative_up_to_bisim() {
        let g1 = parse_graph("{a: 1}").unwrap();
        let g2 = parse_graph("{b: 2}").unwrap();
        let u12 = graph_union(&g1, &g2);
        let u21 = graph_union(&g2, &g1);
        assert!(graphs_bisimilar(&u12, &u21));
        assert_eq!(u12.out_degree(u12.root()), 2);
    }

    #[test]
    fn graph_union_identity_is_empty() {
        let g = parse_graph("{a: {b: 2}}").unwrap();
        let empty = Graph::new();
        let u = graph_union(&g, &empty);
        assert!(graphs_bisimilar(&u, &g));
    }

    #[test]
    fn attach_graph_under_label() {
        let mut g = parse_graph("{existing: 1}").unwrap();
        let other = parse_graph("{x: 2}").unwrap();
        let label = Label::symbol(g.symbols(), "imported");
        attach_graph(&mut g, label, &other);
        let imp = g.successors_by_name(g.root(), "imported")[0];
        assert_eq!(g.successors_by_name(imp, "x").len(), 1);
        // Serialization still works after surgery.
        let _ = write_graph(&g);
    }

    #[test]
    fn singleton_constructor() {
        let mut g = Graph::new();
        let leaf = g.add_node();
        let l = Label::symbol(g.symbols(), "only");
        let s = singleton(&mut g, l, leaf);
        assert_eq!(g.out_degree(s), 1);
    }
}
