//! Encodings of structured databases into the semistructured model.
//!
//! §2: "It is straightforward to encode relational and object-oriented
//! databases in this model, although in the latter case one must take care
//! to deal with the issue of object-identity. However, the coding is not
//! unique, and the examples in \[10\] and \[5\] show some differences in how
//! tuples of sets are treated."
//!
//! * [`relational`] — flat relations, in both the \[10\] (UnQL) coding and
//!   the \[5\] (Lorel) coding, with decoders.
//! * [`object`] — a small object-oriented database (classes, objects,
//!   reference attributes) encoded with node identities carrying the OIDs.

pub mod object;
pub mod relational;

pub use object::{AttrValue, ObjDb, ObjError, ObjId};
pub use relational::{decode_relation, encode_style10, encode_style5, NamedRelation};
