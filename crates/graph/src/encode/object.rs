//! Encoding a small object-oriented database into the semistructured model.
//!
//! §2: encoding OO databases is straightforward "although ... one must take
//! care to deal with the issue of object-identity". An [`ObjDb`] holds
//! classes with typed attributes, where reference attributes may form
//! cycles. The encoding maps each object to one graph node (so identity is
//! preserved as node identity and reference sharing survives), with the
//! class reachable as a `class` attribute edge.

use crate::graph::{Graph, NodeId};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// An attribute value of an object: a base value or a reference.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    Base(Value),
    Ref(ObjId),
    /// A set of references (one-to-many).
    RefSet(Vec<ObjId>),
}

/// Object identifier within an [`ObjDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u32);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Object {
    class: String,
    attrs: Vec<(String, AttrValue)>,
}

/// A toy object-oriented database: named classes, objects with attributes.
#[derive(Debug, Clone, Default)]
pub struct ObjDb {
    objects: Vec<Object>,
    /// Named entry points (extents).
    extents: Vec<(String, Vec<ObjId>)>,
}

/// Errors in object database construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjError {
    UnknownObject(ObjId),
}

impl fmt::Display for ObjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjError::UnknownObject(o) => write!(f, "unknown object {o}"),
        }
    }
}

impl std::error::Error for ObjError {}

impl ObjDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an object of `class` with the given attributes.
    pub fn add_object(&mut self, class: &str, attrs: Vec<(&str, AttrValue)>) -> ObjId {
        let id = ObjId(u32::try_from(self.objects.len()).expect("too many objects"));
        self.objects.push(Object {
            class: class.to_owned(),
            attrs: attrs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
        });
        id
    }

    /// Set (or add) an attribute on an existing object. Needed to create
    /// cyclic references: create both objects first, then wire them.
    pub fn set_attr(&mut self, obj: ObjId, name: &str, value: AttrValue) -> Result<(), ObjError> {
        let o = self
            .objects
            .get_mut(obj.0 as usize)
            .ok_or(ObjError::UnknownObject(obj))?;
        if let Some(slot) = o.attrs.iter_mut().find(|(k, _)| k == name) {
            slot.1 = value;
        } else {
            o.attrs.push((name.to_owned(), value));
        }
        Ok(())
    }

    /// Register a named extent (a class's collection of roots).
    pub fn add_extent(&mut self, name: &str, members: Vec<ObjId>) {
        self.extents.push((name.to_owned(), members));
    }

    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    fn check(&self, id: ObjId) -> Result<(), ObjError> {
        if (id.0 as usize) < self.objects.len() {
            Ok(())
        } else {
            Err(ObjError::UnknownObject(id))
        }
    }

    /// Validate all references.
    pub fn validate(&self) -> Result<(), ObjError> {
        for o in &self.objects {
            for (_, v) in &o.attrs {
                match v {
                    AttrValue::Ref(r) => self.check(*r)?,
                    AttrValue::RefSet(rs) => {
                        for r in rs {
                            self.check(*r)?;
                        }
                    }
                    AttrValue::Base(_) => {}
                }
            }
        }
        for (_, members) in &self.extents {
            for m in members {
                self.check(*m)?;
            }
        }
        Ok(())
    }

    /// Encode into the edge-labeled model.
    ///
    /// Layout: `root --extent-name--> obj-node` for every extent member;
    /// each object node has a `class` attribute edge plus one edge per
    /// attribute. Reference attributes point *directly* at the target
    /// object's node — identity becomes node identity and cycles are
    /// preserved (the "care" §2 asks for).
    pub fn to_graph(&self) -> Result<Graph, ObjError> {
        self.validate()?;
        let mut g = Graph::new();
        let mut map: HashMap<ObjId, NodeId> = HashMap::new();
        for i in 0..self.objects.len() {
            let n = g.add_node();
            map.insert(ObjId(i as u32), n);
        }
        for (i, o) in self.objects.iter().enumerate() {
            let n = map[&ObjId(i as u32)];
            g.add_attr(n, "class", o.class.clone());
            for (name, v) in &o.attrs {
                match v {
                    AttrValue::Base(b) => {
                        g.add_attr(n, name, b.clone());
                    }
                    AttrValue::Ref(r) => {
                        g.add_sym_edge(n, name, map[r]);
                    }
                    AttrValue::RefSet(rs) => {
                        let set = g.add_node();
                        g.add_sym_edge(n, name, set);
                        for (idx, r) in rs.iter().enumerate() {
                            // Sets of references use integer edge labels so
                            // duplicates in the set survive as array slots
                            // (§2: "arrays may be represented by labeling
                            // internal edges with integers").
                            g.add_edge(set, crate::label::Label::int(idx as i64 + 1), map[r]);
                        }
                    }
                }
            }
        }
        for (name, members) in &self.extents {
            for m in members {
                let root = g.root();
                g.add_sym_edge(root, name, map[m]);
            }
        }
        g.gc();
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small movie OO database with a cyclic actor<->movie reference.
    fn sample() -> (ObjDb, ObjId, ObjId) {
        let mut db = ObjDb::new();
        let movie = db.add_object(
            "Movie",
            vec![
                ("title", AttrValue::Base(Value::from("Casablanca"))),
                ("year", AttrValue::Base(Value::from(1942i64))),
            ],
        );
        let actor = db.add_object(
            "Actor",
            vec![("name", AttrValue::Base(Value::from("Bogart")))],
        );
        db.set_attr(movie, "cast", AttrValue::RefSet(vec![actor]))
            .unwrap();
        db.set_attr(actor, "appears_in", AttrValue::Ref(movie))
            .unwrap();
        db.add_extent("movies", vec![movie]);
        db.add_extent("actors", vec![actor]);
        (db, movie, actor)
    }

    #[test]
    fn validates() {
        let (db, _, _) = sample();
        assert!(db.validate().is_ok());
        assert_eq!(db.object_count(), 2);
    }

    #[test]
    fn dangling_ref_detected() {
        let mut db = ObjDb::new();
        db.add_object("C", vec![("r", AttrValue::Ref(ObjId(42)))]);
        assert_eq!(db.validate(), Err(ObjError::UnknownObject(ObjId(42))));
    }

    #[test]
    fn set_attr_on_unknown_object_fails() {
        let mut db = ObjDb::new();
        assert!(db
            .set_attr(ObjId(0), "x", AttrValue::Base(Value::from(1i64)))
            .is_err());
    }

    #[test]
    fn encoding_preserves_identity_and_cycles() {
        let (db, _, _) = sample();
        let g = db.to_graph().unwrap();
        assert!(g.has_cycle());
        // The actor node reachable via movies/cast is the same node as via
        // the actors extent.
        let movie = g.successors_by_name(g.root(), "movies")[0];
        let cast = g.successors_by_name(movie, "cast")[0];
        let actor_via_cast = g.edges(cast)[0].to;
        let actor_direct = g.successors_by_name(g.root(), "actors")[0];
        assert_eq!(actor_via_cast, actor_direct);
    }

    #[test]
    fn class_attribute_reachable() {
        let (db, _, _) = sample();
        let g = db.to_graph().unwrap();
        let movie = g.successors_by_name(g.root(), "movies")[0];
        let class = g.successors_by_name(movie, "class")[0];
        assert_eq!(g.atomic_value(class), Some(&Value::Str("Movie".into())));
    }

    #[test]
    fn refset_uses_integer_labels() {
        let mut db = ObjDb::new();
        let a = db.add_object("A", vec![]);
        let b = db.add_object("B", vec![]);
        let holder = db.add_object("H", vec![("items", AttrValue::RefSet(vec![a, b]))]);
        db.add_extent("hs", vec![holder]);
        let g = db.to_graph().unwrap();
        let h = g.successors_by_name(g.root(), "hs")[0];
        let items = g.successors_by_name(h, "items")[0];
        assert_eq!(g.out_degree(items), 2);
        assert!(g.edges(items).iter().all(|e| e.label.is_value()));
    }

    #[test]
    fn set_attr_overwrites() {
        let mut db = ObjDb::new();
        let o = db.add_object("C", vec![("x", AttrValue::Base(Value::from(1i64)))]);
        db.set_attr(o, "x", AttrValue::Base(Value::from(2i64)))
            .unwrap();
        db.add_extent("os", vec![o]);
        let g = db.to_graph().unwrap();
        let on = g.successors_by_name(g.root(), "os")[0];
        let x = g.successors_by_name(on, "x")[0];
        assert_eq!(g.atomic_value(x), Some(&Value::Int(2)));
    }
}
