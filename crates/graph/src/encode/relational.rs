//! Encoding relational databases as semistructured data.
//!
//! Two codings from the literature, per §2's remark that "the coding is not
//! unique":
//!
//! * **Style \[10\] (UnQL)** — a relation `R(A, B)` with tuples `(a, b)`
//!   becomes `{R: {tup: {A: {a}, B: {b}}, tup: ...}}`: one `tup` edge per
//!   tuple, attribute edges inside.
//! * **Style \[5\] (Lorel)** — `{R: {A: {a}, B: {b}}, R: ...}`: one `R` edge
//!   per tuple, attributes directly inside. (The relation name is repeated
//!   on every tuple edge.)
//!
//! Both decoders are provided; decoding recovers the bag of tuples and then
//! dedupes to set semantics.

use crate::graph::{Graph, NodeId};
use crate::value::Value;
use std::collections::BTreeSet;

/// A flat named relation with a header of column names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedRelation {
    pub name: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl NamedRelation {
    pub fn new(name: &str, columns: &[&str]) -> Self {
        NamedRelation {
            name: name.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Add a row; panics if the arity does not match the header.
    pub fn push(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity {} != header arity {} for relation {}",
            row.len(),
            self.columns.len(),
            self.name
        );
        self.rows.push(row);
    }

    /// Set-semantics view of the rows (sorted, deduped).
    pub fn row_set(&self) -> BTreeSet<Vec<Value>> {
        self.rows.iter().cloned().collect()
    }
}

/// Encode relations under `g`'s root in the \[10\] style.
///
/// Returns the node under the relation-name edge for each relation.
pub fn encode_style10(g: &mut Graph, relations: &[NamedRelation]) -> Vec<NodeId> {
    let mut rel_nodes = Vec::with_capacity(relations.len());
    for rel in relations {
        let rel_node = g.add_node();
        let root = g.root();
        g.add_sym_edge(root, &rel.name, rel_node);
        for row in &rel.rows {
            let tup = g.add_node();
            g.add_sym_edge(rel_node, "tup", tup);
            for (col, val) in rel.columns.iter().zip(row) {
                g.add_attr(tup, col, val.clone());
            }
        }
        rel_nodes.push(rel_node);
    }
    rel_nodes
}

/// Encode relations under `g`'s root in the \[5\] style: one edge named after
/// the relation per tuple.
pub fn encode_style5(g: &mut Graph, relations: &[NamedRelation]) {
    for rel in relations {
        for row in &rel.rows {
            let tup = g.add_node();
            let root = g.root();
            g.add_sym_edge(root, &rel.name, tup);
            for (col, val) in rel.columns.iter().zip(row) {
                g.add_attr(tup, col, val.clone());
            }
        }
    }
}

/// Errors when decoding a graph region back into a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// A tuple node is missing the given attribute.
    MissingAttribute(String),
    /// An attribute node does not carry exactly one atomic value.
    NonAtomicAttribute(String),
    /// The relation-name edge was not found at the root.
    RelationNotFound(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::MissingAttribute(a) => write!(f, "tuple missing attribute {a}"),
            DecodeError::NonAtomicAttribute(a) => {
                write!(f, "attribute {a} is not a single atomic value")
            }
            DecodeError::RelationNotFound(r) => write!(f, "relation {r} not found at root"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decode a relation from either encoding style.
///
/// * If the root has a single `name` edge whose target fans out through
///   `tup` edges, the \[10\] style is assumed.
/// * Otherwise every `name` edge at the root is taken as one tuple
///   (\[5\] style).
pub fn decode_relation(
    g: &Graph,
    name: &str,
    columns: &[&str],
) -> Result<NamedRelation, DecodeError> {
    let rel_targets = g.successors_by_name(g.root(), name);
    if rel_targets.is_empty() {
        return Err(DecodeError::RelationNotFound(name.to_owned()));
    }
    // Style [10]: exactly one target whose out-edges are all `tup`.
    let tuple_nodes: Vec<NodeId> = if rel_targets.len() == 1 {
        let tups = g.successors_by_name(rel_targets[0], "tup");
        if !tups.is_empty() || g.is_leaf(rel_targets[0]) {
            tups
        } else {
            rel_targets
        }
    } else {
        rel_targets
    };
    let mut rel = NamedRelation::new(name, columns);
    for tup in tuple_nodes {
        let mut row = Vec::with_capacity(columns.len());
        for col in columns {
            let attrs = g.successors_by_name(tup, col);
            let attr = attrs
                .first()
                .ok_or_else(|| DecodeError::MissingAttribute((*col).to_owned()))?;
            let v = g
                .atomic_value(*attr)
                .ok_or_else(|| DecodeError::NonAtomicAttribute((*col).to_owned()))?;
            row.push(v.clone());
        }
        rel.push(row);
    }
    // Set semantics.
    let set = rel.row_set();
    rel.rows = set.into_iter().collect();
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movies() -> NamedRelation {
        let mut r = NamedRelation::new("movie", &["title", "year"]);
        r.push(vec![Value::from("Casablanca"), Value::from(1942i64)]);
        r.push(vec![
            Value::from("Play it again, Sam"),
            Value::from(1972i64),
        ]);
        r
    }

    #[test]
    fn style10_structure() {
        let mut g = Graph::new();
        let rel_nodes = encode_style10(&mut g, &[movies()]);
        assert_eq!(rel_nodes.len(), 1);
        let rel = g.successors_by_name(g.root(), "movie")[0];
        assert_eq!(rel, rel_nodes[0]);
        let tups = g.successors_by_name(rel, "tup");
        assert_eq!(tups.len(), 2);
        for t in tups {
            assert_eq!(g.successors_by_name(t, "title").len(), 1);
            assert_eq!(g.successors_by_name(t, "year").len(), 1);
        }
    }

    #[test]
    fn style5_structure() {
        let mut g = Graph::new();
        encode_style5(&mut g, &[movies()]);
        let tups = g.successors_by_name(g.root(), "movie");
        assert_eq!(tups.len(), 2);
    }

    #[test]
    fn decode_style10_round_trip() {
        let mut g = Graph::new();
        let rel = movies();
        encode_style10(&mut g, std::slice::from_ref(&rel));
        let back = decode_relation(&g, "movie", &["title", "year"]).unwrap();
        assert_eq!(back.row_set(), rel.row_set());
    }

    #[test]
    fn decode_style5_round_trip() {
        let mut g = Graph::new();
        let rel = movies();
        encode_style5(&mut g, std::slice::from_ref(&rel));
        let back = decode_relation(&g, "movie", &["title", "year"]).unwrap();
        assert_eq!(back.row_set(), rel.row_set());
    }

    #[test]
    fn decode_missing_relation() {
        let g = Graph::new();
        assert_eq!(
            decode_relation(&g, "nope", &["a"]),
            Err(DecodeError::RelationNotFound("nope".into()))
        );
    }

    #[test]
    fn decode_missing_attribute() {
        let mut g = Graph::new();
        encode_style5(&mut g, &[movies()]);
        assert_eq!(
            decode_relation(&g, "movie", &["title", "director"]),
            Err(DecodeError::MissingAttribute("director".into()))
        );
    }

    #[test]
    fn both_styles_decode_to_the_same_set() {
        let rel = movies();
        let mut g10 = Graph::new();
        encode_style10(&mut g10, std::slice::from_ref(&rel));
        let mut g5 = Graph::new();
        encode_style5(&mut g5, std::slice::from_ref(&rel));
        let d10 = decode_relation(&g10, "movie", &["title", "year"]).unwrap();
        let d5 = decode_relation(&g5, "movie", &["title", "year"]).unwrap();
        assert_eq!(d10.row_set(), d5.row_set());
    }

    #[test]
    fn multiple_relations() {
        let mut people = NamedRelation::new("person", &["name"]);
        people.push(vec![Value::from("Bogart")]);
        let mut g = Graph::new();
        encode_style10(&mut g, &[movies(), people.clone()]);
        assert!(decode_relation(&g, "movie", &["title", "year"]).is_ok());
        let p = decode_relation(&g, "person", &["name"]).unwrap();
        assert_eq!(p.row_set(), people.row_set());
    }

    #[test]
    fn duplicate_rows_collapse_to_set() {
        let mut r = NamedRelation::new("r", &["a"]);
        r.push(vec![Value::from(1i64)]);
        r.push(vec![Value::from(1i64)]);
        let mut g = Graph::new();
        encode_style10(&mut g, &[r]);
        let back = decode_relation(&g, "r", &["a"]).unwrap();
        assert_eq!(back.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut r = NamedRelation::new("r", &["a", "b"]);
        r.push(vec![Value::from(1i64)]);
    }

    #[test]
    fn empty_relation_encodes_and_decodes() {
        let r = NamedRelation::new("empty", &["x"]);
        let mut g = Graph::new();
        encode_style10(&mut g, &[r]);
        let back = decode_relation(&g, "empty", &["x"]).unwrap();
        assert!(back.rows.is_empty());
    }
}
