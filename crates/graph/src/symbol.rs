//! Interned symbols.
//!
//! The paper (§2): "Edges are also \[labeled\] with names such as `Movie` and
//! `Title` that would normally be used for attribute or class names. We shall
//! refer to such labels as *symbols*. Internally they are represented as
//! strings."
//!
//! We intern symbol strings into dense `u32` ids so that edge labels are a
//! single word and label comparisons are integer comparisons. A
//! [`SymbolTable`] can be shared between several graphs (`Arc`), which makes
//! cross-graph operations (union, copy, bisimulation between databases) free
//! of string translation.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A dense identifier for an interned symbol string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub(crate) u32);

impl SymbolId {
    /// Raw index, for use as an array/bitset key.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A thread-safe string interner.
///
/// Interning is append-only: ids are stable for the lifetime of the table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    inner: RwLock<SymbolTableInner>,
}

#[derive(Debug, Default)]
struct SymbolTableInner {
    map: HashMap<Arc<str>, SymbolId>,
    strings: Vec<Arc<str>>,
}

impl SymbolTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its stable id.
    pub fn intern(&self, s: &str) -> SymbolId {
        if let Some(id) = self.inner.read().map.get(s) {
            return *id;
        }
        let mut inner = self.inner.write();
        // Re-check: another thread may have interned between the read and
        // write lock acquisitions.
        if let Some(id) = inner.map.get(s) {
            return *id;
        }
        let id = SymbolId(
            u32::try_from(inner.strings.len()).expect("symbol table exceeded u32::MAX entries"),
        );
        let arc: Arc<str> = Arc::from(s);
        inner.strings.push(Arc::clone(&arc));
        inner.map.insert(arc, id);
        id
    }

    /// Look up a symbol without interning it.
    pub fn get(&self, s: &str) -> Option<SymbolId> {
        self.inner.read().map.get(s).copied()
    }

    /// The string for `id`. Panics if `id` was produced by a different table.
    pub fn resolve(&self, id: SymbolId) -> Arc<str> {
        Arc::clone(
            self.inner
                .read()
                .strings
                .get(id.index())
                .expect("SymbolId from a foreign SymbolTable"),
        )
    }

    /// Number of distinct symbols interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All symbols whose string starts with `prefix`, in id order.
    ///
    /// This supports the §1.3 browsing query "what objects have an attribute
    /// name that starts with `act`" without scanning the data graph.
    pub fn symbols_with_prefix(&self, prefix: &str) -> Vec<SymbolId> {
        let inner = self.inner.read();
        inner
            .strings
            .iter()
            .enumerate()
            .filter(|(_, s)| s.starts_with(prefix))
            .map(|(i, _)| SymbolId(i as u32))
            .collect()
    }

    /// Snapshot of all interned strings, indexed by `SymbolId`.
    pub fn snapshot(&self) -> Vec<Arc<str>> {
        self.inner.read().strings.clone()
    }
}

/// A shareable handle to a symbol table.
pub type Symbols = Arc<SymbolTable>;

/// Create a fresh shareable symbol table.
pub fn new_symbols() -> Symbols {
    Arc::new(SymbolTable::new())
}

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn intern_is_idempotent() {
        let t = SymbolTable::new();
        let a = t.intern("Movie");
        let b = t.intern("Movie");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let t = SymbolTable::new();
        let a = t.intern("Title");
        let b = t.intern("Cast");
        assert_eq!(&*t.resolve(a), "Title");
        assert_eq!(&*t.resolve(b), "Cast");
        assert_ne!(a, b);
    }

    #[test]
    fn get_does_not_intern() {
        let t = SymbolTable::new();
        assert_eq!(t.get("x"), None);
        let id = t.intern("x");
        assert_eq!(t.get("x"), Some(id));
    }

    #[test]
    fn prefix_search() {
        let t = SymbolTable::new();
        let actors = t.intern("Actors");
        t.intern("Director");
        let act = t.intern("act");
        let found = t.symbols_with_prefix("Act");
        assert_eq!(found, vec![actors]);
        let found_lower = t.symbols_with_prefix("act");
        assert_eq!(found_lower, vec![act]);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let t = new_symbols();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&t);
            handles.push(thread::spawn(move || {
                (0..100)
                    .map(|i| t.intern(&format!("sym{}", i % 10)))
                    .collect::<Vec<_>>()
            }));
        }
        let results: Vec<Vec<SymbolId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(t.len(), 10);
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    #[should_panic(expected = "foreign SymbolTable")]
    fn foreign_id_panics() {
        let a = SymbolTable::new();
        let b = SymbolTable::new();
        let id = a.intern("only-in-a");
        let _ = b.resolve(id);
    }
}
