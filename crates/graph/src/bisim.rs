//! Bisimulation: the extensional equality of semistructured trees.
//!
//! §2 distinguishes object identity ("apart from an equality test, not
//! observable in the query language") from value equality. UnQL avoids
//! object identity altogether and treats a graph as the possibly-infinite
//! tree of its unfoldings; two nodes denote the same tree exactly when they
//! are *bisimilar*. Bisimulation is also the congruence under which
//! structural recursion (§3's "vertical" computations) is well defined on
//! cyclic data.
//!
//! Two algorithms are provided:
//!
//! * [`bisimilarity_classes`] — global partition refinement (Kanellakis–
//!   Smolka style): start from one block and split by edge signatures until
//!   a fixpoint. `O(m · n)` worst case, `O(m log n)`-ish in practice; this
//!   is the workhorse used by schema extraction and dedup.
//! * [`naive_bisimilar`] — a coinductive pairwise checker used as a
//!   property-test oracle.

use crate::graph::{Graph, NodeId};
use crate::label::Label;
use std::collections::{HashMap, HashSet};

/// Partition the nodes of `g` into bisimilarity classes.
///
/// Returns `classes[node.index()] = class id`, with class ids dense in
/// `0..num_classes`. Nodes in the same class are bisimilar; nodes in
/// different classes are not.
pub fn bisimilarity_classes(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    // Start with a single block.
    let mut class: Vec<usize> = vec![0; n];
    let mut num_classes = 1usize;
    loop {
        // Signature of a node: the *set* of (label, class-of-target) pairs.
        let mut sig_ids: HashMap<Vec<(Label, usize)>, usize> = HashMap::new();
        let mut next: Vec<usize> = Vec::with_capacity(n);
        for id in g.node_ids() {
            let mut sig: Vec<(Label, usize)> = g
                .edges(id)
                .iter()
                .map(|e| (e.label.clone(), class[e.to.index()]))
                .collect();
            sig.sort();
            sig.dedup();
            let fresh = sig_ids.len();
            let cid = *sig_ids.entry(sig).or_insert(fresh);
            next.push(cid);
        }
        let next_num = sig_ids.len();
        if next_num == num_classes && next == class {
            return class;
        }
        // Classes can only split, never merge, so strictly increasing count
        // guarantees termination within n iterations.
        class = next;
        num_classes = next_num;
        if num_classes == n {
            return class;
        }
    }
}

/// Are two nodes of the same graph bisimilar?
pub fn bisimilar(g: &Graph, a: NodeId, b: NodeId) -> bool {
    let classes = bisimilarity_classes(g);
    classes[a.index()] == classes[b.index()]
}

/// Extensional equality of two graphs: are their roots bisimilar?
///
/// Handles graphs with distinct symbol tables by translating labels through
/// strings when needed.
pub fn graphs_bisimilar(g1: &Graph, g2: &Graph) -> bool {
    let (merged, r1, r2) = merge_for_comparison(g1, g2);
    bisimilar(&merged, r1, r2)
}

/// Copy the reachable parts of both graphs into one arena (sharing one
/// symbol table), returning the two root images. Used by cross-database
/// comparisons.
pub fn merge_for_comparison(g1: &Graph, g2: &Graph) -> (Graph, NodeId, NodeId) {
    let mut merged = Graph::with_symbols(g1.symbols_handle());
    let r1 = crate::ops::copy_subgraph(g1, g1.root(), &mut merged);
    let r2 = crate::ops::copy_subgraph(g2, g2.root(), &mut merged);
    (merged, r1, r2)
}

/// Naive greatest-fixpoint bisimulation check between `(g1, a)` and
/// `(g2, b)`.
///
/// Starts from all pairs of reachable nodes and repeatedly deletes pairs
/// that violate the transfer property until a fixpoint; `(a, b)` is
/// bisimilar iff it survives. `O(n² · m)` — used as a property-test oracle
/// against [`bisimilarity_classes`], which is much faster but subtler.
pub fn naive_bisimilar(g1: &Graph, a: NodeId, g2: &Graph, b: NodeId) -> bool {
    let shared = g1.shares_symbols(g2);
    let left = g1.reachable_from(a);
    let right = g2.reachable_from(b);
    let mut alive: HashSet<(NodeId, NodeId)> = left
        .iter()
        .flat_map(|&x| right.iter().map(move |&y| (x, y)))
        .collect();
    loop {
        let to_remove: Vec<(NodeId, NodeId)> = alive
            .iter()
            .copied()
            .filter(|&(x, y)| !transfer_ok(g1, x, g2, y, shared, &alive))
            .collect();
        if to_remove.is_empty() {
            break;
        }
        for p in to_remove {
            alive.remove(&p);
        }
    }
    alive.contains(&(a, b))
}

/// One-step transfer property: every edge of `x` is matched by an edge of
/// `y` into an `alive` pair, and vice versa.
fn transfer_ok(
    g1: &Graph,
    x: NodeId,
    g2: &Graph,
    y: NodeId,
    shared: bool,
    alive: &HashSet<(NodeId, NodeId)>,
) -> bool {
    let fwd = g1.edges(x).iter().all(|ea| {
        g2.edges(y).iter().any(|eb| {
            labels_match(g1, &ea.label, g2, &eb.label, shared) && alive.contains(&(ea.to, eb.to))
        })
    });
    if !fwd {
        return false;
    }
    g2.edges(y).iter().all(|eb| {
        g1.edges(x).iter().any(|ea| {
            labels_match(g1, &ea.label, g2, &eb.label, shared) && alive.contains(&(ea.to, eb.to))
        })
    })
}

fn labels_match(g1: &Graph, l1: &Label, g2: &Graph, l2: &Label, shared: bool) -> bool {
    if shared {
        l1 == l2
    } else {
        match (l1, l2) {
            (Label::Symbol(s1), Label::Symbol(s2)) => {
                g1.symbols().resolve(*s1) == g2.symbols().resolve(*s2)
            }
            (Label::Value(v1), Label::Value(v2)) => v1 == v2,
            _ => false,
        }
    }
}

/// Quotient `g` by bisimilarity: the smallest graph bisimilar to `g`.
///
/// This is the canonical "value" of a semistructured database under
/// extensional semantics, and the first step of schema extraction (§5).
/// Returns the quotient graph (rooted at the class of `g`'s root) and the
/// mapping `node -> quotient node`.
pub fn quotient(g: &Graph) -> (Graph, Vec<NodeId>) {
    let classes = bisimilarity_classes(g);
    let num_classes = classes.iter().copied().max().map_or(0, |m| m + 1);
    let mut q = Graph::with_symbols(g.symbols_handle());
    // Allocate one node per class. Node 0 of a fresh graph is its root; we
    // re-root afterwards.
    let mut class_nodes: Vec<NodeId> = Vec::with_capacity(num_classes);
    for i in 0..num_classes {
        if i == 0 {
            class_nodes.push(q.root());
        } else {
            class_nodes.push(q.add_node());
        }
    }
    for id in g.node_ids() {
        let from = class_nodes[classes[id.index()]];
        for e in g.edges(id) {
            let to = class_nodes[classes[e.to.index()]];
            q.add_edge(from, e.label.clone(), to);
        }
    }
    q.set_root(class_nodes[classes[g.root().index()]]);
    q.gc();
    // Recompute the node mapping after gc: map each original node through
    // its class; gc may have remapped ids, so rebuild by re-running the
    // quotient classes against the compacted graph. Simpler: return the
    // pre-gc class nodes translated when possible.
    let mapping: Vec<NodeId> = classes.iter().map(|&c| class_nodes[c]).collect();
    (q, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::parse_graph;

    #[test]
    fn identical_structures_are_bisimilar() {
        let g1 = parse_graph(r#"{a: {b: 1}, c: 2}"#).unwrap();
        let g2 = parse_graph(r#"{c: 2, a: {b: 1}}"#).unwrap();
        assert!(graphs_bisimilar(&g1, &g2));
        assert!(naive_bisimilar(&g1, g1.root(), &g2, g2.root()));
    }

    #[test]
    fn different_values_are_not_bisimilar() {
        let g1 = parse_graph(r#"{a: 1}"#).unwrap();
        let g2 = parse_graph(r#"{a: 2}"#).unwrap();
        assert!(!graphs_bisimilar(&g1, &g2));
        assert!(!naive_bisimilar(&g1, g1.root(), &g2, g2.root()));
    }

    #[test]
    fn duplicate_subtrees_collapse() {
        // {a: {x}, a: {x}} has two bisimilar children of the root.
        let g = parse_graph("{a: {x}, b: {x}}").unwrap();
        let a = g.successors_by_name(g.root(), "a")[0];
        let b = g.successors_by_name(g.root(), "b")[0];
        assert!(bisimilar(&g, a, b));
    }

    #[test]
    fn set_semantics_duplicates_are_bisimilar() {
        // {a: {}, a: {}} denotes the same set as {a: {}} — but note the
        // parser dedupes identical (label, node) pairs only when targets
        // coincide; bisimulation closes the gap.
        let g1 = parse_graph("{a: {}, a: {}}").unwrap();
        let g2 = parse_graph("{a: {}}").unwrap();
        assert!(graphs_bisimilar(&g1, &g2));
    }

    #[test]
    fn cycle_vs_unfolding() {
        // An infinite unary path written as a cycle is bisimilar to a
        // two-node cycle unfolding of itself.
        let g1 = parse_graph("@x = {next: @x}").unwrap();
        let g2 = parse_graph("@x = {next: {next: @x}}").unwrap();
        assert!(graphs_bisimilar(&g1, &g2));
        assert!(naive_bisimilar(&g1, g1.root(), &g2, g2.root()));
    }

    #[test]
    fn cycle_vs_finite_path_differs() {
        let g1 = parse_graph("@x = {next: @x}").unwrap();
        let g2 = parse_graph("{next: {next: {}}}").unwrap();
        assert!(!graphs_bisimilar(&g1, &g2));
        assert!(!naive_bisimilar(&g1, g1.root(), &g2, g2.root()));
    }

    #[test]
    fn labelled_cycles_with_different_labels_differ() {
        let g1 = parse_graph("@x = {f: @x}").unwrap();
        let g2 = parse_graph("@x = {g: @x}").unwrap();
        assert!(!graphs_bisimilar(&g1, &g2));
    }

    #[test]
    fn quotient_minimises() {
        // Two parallel bisimilar branches collapse to one node.
        let g = parse_graph("{a: {x: 1}, b: {x: 1}}").unwrap();
        let (q, mapping) = quotient(&g);
        assert!(graphs_bisimilar(&g, &q));
        assert!(q.node_count() < g.node_count());
        // Mapped nodes of bisimilar originals coincide.
        let a = g.successors_by_name(g.root(), "a")[0];
        let b = g.successors_by_name(g.root(), "b")[0];
        assert_eq!(mapping[a.index()], mapping[b.index()]);
    }

    #[test]
    fn quotient_of_cycle() {
        let g = parse_graph("@x = {next: {next: @x}}").unwrap();
        let (q, _) = quotient(&g);
        assert!(graphs_bisimilar(&g, &q));
        assert_eq!(q.node_count(), 1);
        assert!(q.has_cycle());
    }

    #[test]
    fn quotient_is_idempotent() {
        let g = parse_graph("{a: {x: 1}, b: {x: 1}, c: {y: 2}}").unwrap();
        let (q1, _) = quotient(&g);
        let (q2, _) = quotient(&q1);
        assert_eq!(q1.node_count(), q2.node_count());
        assert!(graphs_bisimilar(&q1, &q2));
    }

    #[test]
    fn cross_symbol_table_comparison() {
        let g1 = parse_graph("{Movie: {Title: \"C\"}}").unwrap();
        let g2 = parse_graph("{Movie: {Title: \"C\"}}").unwrap();
        assert!(!g1.shares_symbols(&g2));
        assert!(graphs_bisimilar(&g1, &g2));
        assert!(naive_bisimilar(&g1, g1.root(), &g2, g2.root()));
    }

    #[test]
    fn naive_agrees_with_partition_on_same_graph() {
        let g =
            parse_graph("{a: @s = {v: {w: 1}}, b: @s, c: {v: {w: 1}}, d: {v: {w: 2}}}").unwrap();
        let classes = bisimilarity_classes(&g);
        for x in g.node_ids() {
            for y in g.node_ids() {
                let part = classes[x.index()] == classes[y.index()];
                let naive = naive_bisimilar(&g, x, &g, y);
                assert_eq!(part, naive, "disagree on {x} vs {y}");
            }
        }
    }
}
