//! Structural diff of two databases.
//!
//! Compares the *path languages* of two graphs (up to a depth bound) via
//! their DataGuides — the browsing-oriented answer to "what changed
//! between these two exports?" for schemaless data. Two bisimilar
//! databases always diff empty; value-level changes surface as paths
//! (values are edge labels, so a changed title is a changed path).

use crate::dataguide::DataGuide;
use ssd_graph::{Graph, Label};
use std::collections::BTreeSet;

/// The result of a structural diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathDiff {
    /// Label paths (≤ depth) present in the left graph only.
    pub only_left: Vec<Vec<Label>>,
    /// Label paths (≤ depth) present in the right graph only.
    pub only_right: Vec<Vec<Label>>,
    /// Number of shared paths.
    pub shared: usize,
    /// The depth bound used.
    pub depth: usize,
}

impl PathDiff {
    pub fn is_empty(&self) -> bool {
        self.only_left.is_empty() && self.only_right.is_empty()
    }
}

/// Diff the path languages of `left` and `right` up to `depth` edges.
///
/// Symbol labels are compared by name, so the graphs need not share a
/// symbol table.
pub fn diff_paths(left: &Graph, right: &Graph, depth: usize) -> PathDiff {
    let lg = DataGuide::build(left);
    let rg = DataGuide::build(right);
    // Render paths to comparable keys (resolving symbols through each
    // graph's own table).
    let render = |g: &Graph, path: &[Label]| -> Vec<String> {
        path.iter()
            .map(|l| l.display(g.symbols()).to_string())
            .collect()
    };
    let lpaths: BTreeSet<Vec<String>> = lg
        .paths_up_to(depth)
        .iter()
        .map(|p| render(left, p))
        .collect();
    let rpaths: BTreeSet<Vec<String>> = rg
        .paths_up_to(depth)
        .iter()
        .map(|p| render(right, p))
        .collect();
    // Keep only *maximal* missing paths? No: report shortest distinguishing
    // prefixes — a path is interesting iff its parent is shared (otherwise
    // the parent already tells the story).
    let shortest_only =
        |mine: &BTreeSet<Vec<String>>, theirs: &BTreeSet<Vec<String>>| -> Vec<Vec<String>> {
            mine.iter()
                .filter(|p| !theirs.contains(*p))
                // Shortest distinguishing prefix: report a missing path only
                // when its parent is shared (deeper extensions add no news).
                .filter(|p| p.len() == 1 || theirs.contains(&p[..p.len() - 1].to_vec()))
                .cloned()
                .collect()
        };
    let only_left_keys = shortest_only(&lpaths, &rpaths);
    let only_right_keys = shortest_only(&rpaths, &lpaths);
    let shared = lpaths.intersection(&rpaths).count();
    // Translate keys back to labels via the originating guide paths.
    let recover = |g: &Graph, guide: &DataGuide, keys: &[Vec<String>]| -> Vec<Vec<Label>> {
        let want: BTreeSet<&Vec<String>> = keys.iter().collect();
        guide
            .paths_up_to(depth)
            .into_iter()
            .filter(|p| want.contains(&render(g, p)))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    };
    PathDiff {
        only_left: recover(left, &lg, &only_left_keys),
        only_right: recover(right, &rg, &only_right_keys),
        shared,
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_graph::literal::parse_graph;

    #[test]
    fn identical_graphs_diff_empty() {
        let a = parse_graph(r#"{Movie: {Title: "C"}}"#).unwrap();
        let b = parse_graph(r#"{Movie: {Title: "C"}}"#).unwrap();
        let d = diff_paths(&a, &b, 5);
        assert!(d.is_empty());
        assert!(d.shared >= 3);
    }

    #[test]
    fn bisimilar_graphs_diff_empty() {
        let a = parse_graph("{x: @s = {v: 1}, y: @s}").unwrap();
        let b = parse_graph("{x: {v: 1}, y: {v: 1}}").unwrap();
        assert!(diff_paths(&a, &b, 6).is_empty());
    }

    #[test]
    fn value_change_surfaces_as_path() {
        let a = parse_graph(r#"{Movie: {Title: "Casablanca"}}"#).unwrap();
        let b = parse_graph(r#"{Movie: {Title: "Casablanka"}}"#).unwrap();
        let d = diff_paths(&a, &b, 5);
        assert_eq!(d.only_left.len(), 1);
        assert_eq!(d.only_right.len(), 1);
        let shown: Vec<String> = d.only_left[0]
            .iter()
            .map(|l| l.display(a.symbols()).to_string())
            .collect();
        assert_eq!(shown, vec!["Movie", "Title", "\"Casablanca\""]);
    }

    #[test]
    fn added_attribute_reports_shortest_prefix() {
        let a = parse_graph(r#"{Movie: {Title: "C"}}"#).unwrap();
        let b = parse_graph(r#"{Movie: {Title: "C", Director: {Name: "Curtiz"}}}"#).unwrap();
        let d = diff_paths(&a, &b, 6);
        assert!(d.only_left.is_empty());
        // Only Movie.Director is reported, not its deeper extensions.
        assert_eq!(d.only_right.len(), 1);
        let shown: Vec<String> = d.only_right[0]
            .iter()
            .map(|l| l.display(b.symbols()).to_string())
            .collect();
        assert_eq!(shown, vec!["Movie", "Director"]);
    }

    #[test]
    fn cross_symbol_table_comparison() {
        let a = parse_graph("{x: 1}").unwrap();
        let b = parse_graph("{x: 1}").unwrap(); // separate table
        assert!(!a.shares_symbols(&b));
        assert!(diff_paths(&a, &b, 4).is_empty());
    }

    #[test]
    fn cyclic_graphs_diff_finitely() {
        let a = parse_graph("@x = {next: @x}").unwrap();
        let b = parse_graph("@x = {next: @x, stop: 1}").unwrap();
        let d = diff_paths(&a, &b, 6);
        assert!(d.only_left.is_empty());
        assert!(!d.only_right.is_empty());
        // Every reported right-only path ends in the stop region.
        for p in &d.only_right {
            let shown: Vec<String> = p
                .iter()
                .map(|l| l.display(b.symbols()).to_string())
                .collect();
            assert!(shown.iter().any(|s| s == "stop" || s == "1"), "{shown:?}");
        }
    }
}
