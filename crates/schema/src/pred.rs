//! Label predicates — the edge alphabet of graph schemas.
//!
//! §5 / \[8\]: "a schema is defined as a graph whose edges are labeled with
//! *predicates*". A schema edge does not name one label; it names a unary
//! predicate over labels, so one schema edge can cover `Movie`, "any
//! string", "any int ≥ 0", etc. The paper's self-describing-data discussion
//! (§2) also calls for type predicates; [`Pred::Kind`] is exactly that.

use ssd_graph::{Label, LabelKind, SymbolTable, Value};
use std::fmt;

/// A unary predicate over edge labels.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// True of every label.
    Any,
    /// The label is exactly this symbol (by name, resolved per-table).
    Symbol(String),
    /// The label is a symbol whose name is in this set.
    SymbolIn(Vec<String>),
    /// The label is a symbol whose name starts with the prefix.
    SymbolPrefix(String),
    /// The label has this dynamic type (symbol/int/real/string/bool).
    Kind(LabelKind),
    /// The label is exactly this value.
    ValueEq(Value),
    /// The label is a string value with this prefix.
    StrPrefix(String),
    /// The label is an int value in the inclusive range.
    IntRange(Option<i64>, Option<i64>),
    /// Negation.
    Not(Box<Pred>),
    /// Disjunction (empty = false).
    Or(Vec<Pred>),
    /// Conjunction (empty = true).
    And(Vec<Pred>),
}

impl Pred {
    /// Does `label` satisfy this predicate? `symbols` resolves symbol names.
    pub fn matches(&self, label: &Label, symbols: &SymbolTable) -> bool {
        match self {
            Pred::Any => true,
            Pred::Symbol(name) => match label {
                Label::Symbol(s) => &*symbols.resolve(*s) == name.as_str(),
                Label::Value(_) => false,
            },
            Pred::SymbolIn(names) => match label {
                Label::Symbol(s) => {
                    let n = symbols.resolve(*s);
                    names.iter().any(|m| m.as_str() == &*n)
                }
                Label::Value(_) => false,
            },
            Pred::SymbolPrefix(prefix) => match label {
                Label::Symbol(s) => symbols.resolve(*s).starts_with(prefix.as_str()),
                Label::Value(_) => false,
            },
            Pred::Kind(k) => label.kind() == *k,
            Pred::ValueEq(v) => label.as_value() == Some(v),
            Pred::StrPrefix(prefix) => matches!(
                label.as_value(),
                Some(Value::Str(s)) if s.starts_with(prefix.as_str())
            ),
            Pred::IntRange(lo, hi) => match label.as_value() {
                Some(Value::Int(i)) => lo.is_none_or(|l| *i >= l) && hi.is_none_or(|h| *i <= h),
                _ => false,
            },
            Pred::Not(p) => !p.matches(label, symbols),
            Pred::Or(ps) => ps.iter().any(|p| p.matches(label, symbols)),
            Pred::And(ps) => ps.iter().all(|p| p.matches(label, symbols)),
        }
    }

    /// Conservative satisfiability of `self ∧ other`: `false` only when the
    /// two predicates provably share no label. Used for schema-based
    /// pruning of regular path expressions (\[20\], §5): a conservative
    /// `true` merely loses an optimization; a wrong `false` would lose
    /// answers, so this errs on the side of `true`.
    pub fn may_overlap(&self, other: &Pred) -> bool {
        use Pred::*;
        match (self, other) {
            (Any, _) | (_, Any) => true,
            (Not(_), _) | (_, Not(_)) => true, // don't reason under negation
            (Or(ps), q) | (q, Or(ps)) => ps.iter().any(|p| p.may_overlap(q)),
            (And(ps), q) | (q, And(ps)) => ps.iter().all(|p| p.may_overlap(q)),
            (Symbol(a), Symbol(b)) => a == b,
            (Symbol(a), SymbolIn(bs)) | (SymbolIn(bs), Symbol(a)) => bs.contains(a),
            (SymbolIn(xs), SymbolIn(ys)) => xs.iter().any(|x| ys.contains(x)),
            (Symbol(a), SymbolPrefix(p)) | (SymbolPrefix(p), Symbol(a)) => a.starts_with(p),
            (SymbolIn(xs), SymbolPrefix(p)) | (SymbolPrefix(p), SymbolIn(xs)) => {
                xs.iter().any(|x| x.starts_with(p))
            }
            (SymbolPrefix(a), SymbolPrefix(b)) => a.starts_with(b) || b.starts_with(a),
            (Kind(k), q) | (q, Kind(k)) => q.kind_hint().is_none_or(|qk| qk == *k),
            (ValueEq(a), ValueEq(b)) => a == b,
            (ValueEq(Value::Str(s)), StrPrefix(p)) | (StrPrefix(p), ValueEq(Value::Str(s))) => {
                s.starts_with(p)
            }
            (ValueEq(Value::Int(i)), IntRange(lo, hi))
            | (IntRange(lo, hi), ValueEq(Value::Int(i))) => {
                lo.is_none_or(|l| *i >= l) && hi.is_none_or(|h| *i <= h)
            }
            (StrPrefix(a), StrPrefix(b)) => a.starts_with(b) || b.starts_with(a),
            (IntRange(lo1, hi1), IntRange(lo2, hi2)) => {
                let lo = lo1.unwrap_or(i64::MIN).max(lo2.unwrap_or(i64::MIN));
                let hi = hi1.unwrap_or(i64::MAX).min(hi2.unwrap_or(i64::MAX));
                lo <= hi
            }
            // Symbol-only vs value-only predicates never overlap.
            (
                Symbol(_) | SymbolIn(_) | SymbolPrefix(_),
                ValueEq(_) | StrPrefix(_) | IntRange(_, _),
            ) => false,
            (
                ValueEq(_) | StrPrefix(_) | IntRange(_, _),
                Symbol(_) | SymbolIn(_) | SymbolPrefix(_),
            ) => false,
            // Value predicates of visibly different kinds.
            (a, b) => match (a.kind_hint(), b.kind_hint()) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            },
        }
    }

    /// The single label kind this predicate can match, if statically known.
    fn kind_hint(&self) -> Option<LabelKind> {
        match self {
            Pred::Symbol(_) | Pred::SymbolIn(_) | Pred::SymbolPrefix(_) => Some(LabelKind::Symbol),
            Pred::Kind(k) => Some(*k),
            Pred::ValueEq(v) => Some(match v {
                Value::Int(_) => LabelKind::Int,
                Value::Real(_) => LabelKind::Real,
                Value::Str(_) => LabelKind::Str,
                Value::Bool(_) => LabelKind::Bool,
            }),
            Pred::StrPrefix(_) => Some(LabelKind::Str),
            Pred::IntRange(_, _) => Some(LabelKind::Int),
            _ => None,
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Any => write!(f, "%"),
            Pred::Symbol(s) => write!(f, "{s}"),
            Pred::SymbolIn(ss) => write!(f, "({})", ss.join("|")),
            Pred::SymbolPrefix(p) => write!(f, "{p}*"),
            Pred::Kind(k) => write!(f, "[{k}]"),
            Pred::ValueEq(v) => write!(f, "{v}"),
            Pred::StrPrefix(p) => write!(f, "{p:?}*"),
            Pred::IntRange(lo, hi) => write!(
                f,
                "[{}..{}]",
                lo.map_or(String::new(), |l| l.to_string()),
                hi.map_or(String::new(), |h| h.to_string())
            ),
            Pred::Not(p) => write!(f, "!({p})"),
            Pred::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Pred::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_graph::new_symbols;

    #[test]
    fn basic_matching() {
        let syms = new_symbols();
        let movie = Label::symbol(&syms, "Movie");
        let title = Label::symbol(&syms, "Title");
        let s = Label::str("Casablanca");
        let i = Label::int(42);

        assert!(Pred::Any.matches(&movie, &syms));
        assert!(Pred::Symbol("Movie".into()).matches(&movie, &syms));
        assert!(!Pred::Symbol("Movie".into()).matches(&title, &syms));
        assert!(!Pred::Symbol("Casablanca".into()).matches(&s, &syms));
        assert!(Pred::Kind(LabelKind::Str).matches(&s, &syms));
        assert!(Pred::Kind(LabelKind::Symbol).matches(&movie, &syms));
        assert!(Pred::ValueEq(Value::Int(42)).matches(&i, &syms));
        assert!(Pred::StrPrefix("Casa".into()).matches(&s, &syms));
        assert!(!Pred::StrPrefix("casa".into()).matches(&s, &syms));
        assert!(Pred::IntRange(Some(0), Some(100)).matches(&i, &syms));
        assert!(!Pred::IntRange(Some(43), None).matches(&i, &syms));
    }

    #[test]
    fn symbol_sets_and_prefixes() {
        let syms = new_symbols();
        let actors = Label::symbol(&syms, "Actors");
        assert!(Pred::SymbolIn(vec!["Cast".into(), "Actors".into()]).matches(&actors, &syms));
        assert!(!Pred::SymbolIn(vec!["Cast".into()]).matches(&actors, &syms));
        assert!(Pred::SymbolPrefix("Act".into()).matches(&actors, &syms));
        assert!(!Pred::SymbolPrefix("act".into()).matches(&actors, &syms));
    }

    #[test]
    fn boolean_combinators() {
        let syms = new_symbols();
        let i = Label::int(5);
        let p = Pred::And(vec![
            Pred::Kind(LabelKind::Int),
            Pred::Not(Box::new(Pred::ValueEq(Value::Int(6)))),
        ]);
        assert!(p.matches(&i, &syms));
        let q = Pred::Or(vec![]);
        assert!(!q.matches(&i, &syms));
        let r = Pred::And(vec![]);
        assert!(r.matches(&i, &syms));
    }

    #[test]
    fn overlap_symbols() {
        let a = Pred::Symbol("Movie".into());
        let b = Pred::Symbol("Movie".into());
        let c = Pred::Symbol("TVShow".into());
        assert!(a.may_overlap(&b));
        assert!(!a.may_overlap(&c));
        assert!(a.may_overlap(&Pred::SymbolPrefix("Mo".into())));
        assert!(!a.may_overlap(&Pred::SymbolPrefix("TV".into())));
        assert!(a.may_overlap(&Pred::Any));
    }

    #[test]
    fn overlap_kinds_and_values() {
        assert!(!Pred::Symbol("x".into()).may_overlap(&Pred::ValueEq(Value::Int(1))));
        assert!(!Pred::Kind(LabelKind::Int).may_overlap(&Pred::Kind(LabelKind::Str)));
        assert!(Pred::Kind(LabelKind::Int).may_overlap(&Pred::IntRange(Some(0), None)));
        assert!(!Pred::IntRange(Some(0), Some(5)).may_overlap(&Pred::IntRange(Some(6), None)));
        assert!(Pred::IntRange(None, Some(5)).may_overlap(&Pred::IntRange(Some(5), None)));
        assert!(Pred::StrPrefix("ab".into()).may_overlap(&Pred::StrPrefix("abc".into())));
        assert!(!Pred::ValueEq(Value::Str("xy".into())).may_overlap(&Pred::StrPrefix("ab".into())));
    }

    #[test]
    fn overlap_is_conservative_under_negation() {
        // We never claim disjointness involving Not.
        let p = Pred::Not(Box::new(Pred::Any));
        assert!(p.may_overlap(&Pred::Symbol("x".into())));
    }

    #[test]
    fn overlap_soundness_on_samples() {
        // If both predicates match some concrete label, may_overlap must be
        // true (soundness spot-check).
        let syms = new_symbols();
        let labels = [
            Label::symbol(&syms, "Movie"),
            Label::symbol(&syms, "Actors"),
            Label::str("Casablanca"),
            Label::int(7),
            Label::value(true),
        ];
        let preds = vec![
            Pred::Any,
            Pred::Symbol("Movie".into()),
            Pred::SymbolPrefix("Act".into()),
            Pred::Kind(LabelKind::Int),
            Pred::Kind(LabelKind::Symbol),
            Pred::ValueEq(Value::Int(7)),
            Pred::StrPrefix("Casa".into()),
            Pred::IntRange(Some(0), Some(10)),
        ];
        for p in &preds {
            for q in &preds {
                let both = labels
                    .iter()
                    .any(|l| p.matches(l, &syms) && q.matches(l, &syms));
                if both {
                    assert!(p.may_overlap(q), "unsound disjointness: {p} vs {q}");
                }
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Pred::Any.to_string(), "%");
        assert_eq!(Pred::Symbol("Movie".into()).to_string(), "Movie");
        assert_eq!(Pred::Kind(LabelKind::Int).to_string(), "[int]");
        assert_eq!(
            Pred::Or(vec![Pred::Symbol("a".into()), Pred::Symbol("b".into())]).to_string(),
            "(a | b)"
        );
    }
}
