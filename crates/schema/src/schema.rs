//! Graph schemas: rooted graphs with predicate-labeled edges (\[8\], §5).
//!
//! A schema "places loose constraints on the data" (§1): data conforms when
//! the data graph is *simulated* by the schema graph (see
//! [`crate::simulation()`]). Schemas are deliberately permissive — a node with
//! no matching schema edge for one of its data edges breaks conformance,
//! but extra schema edges cost nothing.

use crate::pred::Pred;
use std::fmt;

/// Index of a schema node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SchemaNodeId(pub(crate) u32);

impl SchemaNodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(i: usize) -> SchemaNodeId {
        SchemaNodeId(u32::try_from(i).expect("schema too large"))
    }

    /// Reconstruct an id from a raw index (caller guarantees validity;
    /// used by cross-crate product constructions such as schema pruning).
    pub fn from_raw(i: usize) -> SchemaNodeId {
        Self::from_index(i)
    }
}

impl fmt::Display for SchemaNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A predicate-labeled schema edge.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaEdge {
    pub pred: Pred,
    pub to: SchemaNodeId,
}

/// A rooted schema graph.
#[derive(Debug, Clone)]
pub struct Schema {
    nodes: Vec<Vec<SchemaEdge>>,
    root: SchemaNodeId,
}

impl Default for Schema {
    fn default() -> Self {
        Self::new()
    }
}

impl Schema {
    /// A schema with a single edgeless root (conforms only to leaf data...
    /// and to nothing else).
    pub fn new() -> Schema {
        Schema {
            nodes: vec![Vec::new()],
            root: SchemaNodeId(0),
        }
    }

    /// The universal schema: one node with an `Any` self-loop; every data
    /// graph conforms. The "no schema at all" end of the looseness
    /// spectrum.
    pub fn universal() -> Schema {
        let mut s = Schema::new();
        let root = s.root();
        s.add_edge(root, Pred::Any, root);
        s
    }

    pub fn root(&self) -> SchemaNodeId {
        self.root
    }

    pub fn set_root(&mut self, n: SchemaNodeId) {
        assert!(n.index() < self.nodes.len(), "schema node out of range");
        self.root = n;
    }

    pub fn add_node(&mut self) -> SchemaNodeId {
        let id = SchemaNodeId::from_index(self.nodes.len());
        self.nodes.push(Vec::new());
        id
    }

    pub fn add_edge(&mut self, from: SchemaNodeId, pred: Pred, to: SchemaNodeId) {
        let edge = SchemaEdge { pred, to };
        let edges = &mut self.nodes[from.index()];
        if !edges.contains(&edge) {
            edges.push(edge);
        }
    }

    pub fn edges(&self, n: SchemaNodeId) -> &[SchemaEdge] {
        &self.nodes[n.index()]
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn node_ids(&self) -> impl Iterator<Item = SchemaNodeId> + '_ {
        (0..self.nodes.len()).map(SchemaNodeId::from_index)
    }

    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(Vec::len).sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schema (root {}):", self.root)?;
        for id in self.node_ids() {
            for e in self.edges(id) {
                writeln!(f, "  {} --{}--> {}", id, e.pred, e.to)?;
            }
        }
        Ok(())
    }
}

/// Convenience: the movie-database schema of Figure 1, used by examples and
/// tests. Entries are movies or TV shows; both have titles and casts; casts
/// are strings reached directly or through named sub-structures; a
/// References loop connects entries.
pub fn figure1_schema() -> Schema {
    use ssd_graph::LabelKind;
    let mut s = Schema::new();
    let root = s.root();
    let entry = s.add_node();
    let inner = s.add_node();
    let leafval = s.add_node();
    s.add_edge(root, Pred::Symbol("Entry".into()), entry);
    // An entry is a movie or a TV show, and may be referenced back from
    // another entry (the Figure 1 cycle).
    s.add_edge(
        entry,
        Pred::SymbolIn(vec!["Movie".into(), "TV_Show".into()]),
        inner,
    );
    s.add_edge(entry, Pred::Symbol("Is_referenced_in".into()), entry);
    // Inside an entry: any symbol-labeled substructure (Title, Cast,
    // Credit, Episode, Special_Guests, ...), integer array indices
    // (which may lead to further values), and value leaves of any base
    // type. References jump back to the *entry* level.
    s.add_edge(inner, Pred::Symbol("References".into()), entry);
    s.add_edge(inner, Pred::Kind(LabelKind::Symbol), inner);
    s.add_edge(inner, Pred::Kind(LabelKind::Int), inner);
    s.add_edge(inner, Pred::Kind(LabelKind::Str), leafval);
    s.add_edge(inner, Pred::Kind(LabelKind::Real), leafval);
    s.add_edge(inner, Pred::Kind(LabelKind::Bool), leafval);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schema() {
        let s = Schema::new();
        assert_eq!(s.node_count(), 1);
        assert_eq!(s.edge_count(), 0);
        assert!(s.edges(s.root()).is_empty());
    }

    #[test]
    fn universal_schema_has_self_loop() {
        let s = Schema::universal();
        assert_eq!(s.edge_count(), 1);
        assert_eq!(s.edges(s.root())[0].to, s.root());
        assert_eq!(s.edges(s.root())[0].pred, Pred::Any);
    }

    #[test]
    fn add_edge_dedupes() {
        let mut s = Schema::new();
        let n = s.add_node();
        let root = s.root();
        s.add_edge(root, Pred::Any, n);
        s.add_edge(root, Pred::Any, n);
        assert_eq!(s.edge_count(), 1);
    }

    #[test]
    fn set_root_reroots() {
        let mut s = Schema::new();
        let n = s.add_node();
        s.set_root(n);
        assert_eq!(s.root(), n);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_root_checks_range() {
        let mut s = Schema::new();
        s.set_root(SchemaNodeId(99));
    }

    #[test]
    fn display_lists_edges() {
        let s = Schema::universal();
        let shown = s.to_string();
        assert!(shown.contains("--%-->"));
    }

    #[test]
    fn figure1_schema_builds() {
        let s = figure1_schema();
        assert!(s.node_count() >= 4);
        assert!(s.edge_count() >= 6);
    }
}
