//! Schema extraction — "discovering" structure in the data (§5).
//!
//! §5: "it may be appropriate to impose (or to *discover*) some form of
//! structure in the data". We extract a schema from a data graph in two
//! steps:
//!
//! 1. quotient the data graph by bisimilarity (the minimal equivalent
//!    database, [`ssd_graph::bisim::quotient`]), then
//! 2. generalise edge labels to predicates: symbols stay exact, value
//!    labels widen to their type ([`Pred::Kind`]) so the schema describes
//!    "a string goes here" rather than each constant.
//!
//! By construction, the data conforms to its extracted schema (tested), and
//! the schema stays *loose*: other databases with the same shape but
//! different constants also conform — exactly the ACeDB situation of §1.1.

use crate::pred::Pred;
use crate::schema::{Schema, SchemaNodeId};
use ssd_graph::bisim;
use ssd_graph::{Graph, Label, LabelKind};
use ssd_guard::{Exhausted, Guard};
use std::collections::HashMap;

/// Fault-injection seam: hit once per quotient node mapped into the schema.
pub const FP_SCHEMA_EXTRACT: &str = "schema.extract";

/// Options controlling how much the extracted schema generalises.
#[derive(Debug, Clone)]
pub struct ExtractOptions {
    /// Widen value labels to their kind (`true`, the default) or keep exact
    /// values (`false` — the schema then accepts only these constants).
    pub widen_values: bool,
    /// Merge schema nodes that end up with identical predicate signatures
    /// after widening (a second quotient pass at the schema level).
    pub merge_equal_signatures: bool,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            widen_values: true,
            merge_equal_signatures: true,
        }
    }
}

/// Extract a schema from the data graph.
pub fn extract_schema(g: &Graph, opts: &ExtractOptions) -> Schema {
    // An unlimited guard never reports exhaustion.
    try_extract_schema(g, opts, &Guard::unlimited()).unwrap_or_default()
}

/// As [`extract_schema`], under a resource [`Guard`]: fuel is ticked per
/// quotient node/edge and per signature-refinement round. In partial mode
/// exhaustion yields a well-formed (if coarser or incomplete) schema.
pub fn try_extract_schema(
    g: &Graph,
    opts: &ExtractOptions,
    guard: &Guard,
) -> Result<Schema, Exhausted> {
    // Step 1: minimal bisimilar graph. The quotient is polynomial in the
    // data; charge its size up front.
    guard.tick(g.node_count() as u64)?;
    let (q, _) = bisim::quotient(g);
    // Step 2: labels → predicates.
    let mut schema = Schema::new();
    let mut map: HashMap<ssd_graph::NodeId, SchemaNodeId> = HashMap::new();
    'nodes: for n in q.reachable() {
        if !(guard.tick(1)? && guard.fail_point(FP_SCHEMA_EXTRACT)?) {
            break 'nodes;
        }
        let s = if n == q.root() {
            schema.root()
        } else {
            schema.add_node()
        };
        map.insert(n, s);
    }
    'edges: for n in q.reachable() {
        // Nodes skipped by a partial-mode stop above have no mapping.
        let Some(&from) = map.get(&n) else { continue };
        for e in q.edges(n) {
            if !guard.tick(1)? {
                break 'edges;
            }
            let Some(&to) = map.get(&e.to) else { continue };
            let pred = label_to_pred(&q, &e.label, opts.widen_values);
            schema.add_edge(from, pred, to);
        }
    }
    if opts.merge_equal_signatures {
        schema = merge_signatures(&schema, guard)?;
    }
    Ok(schema)
}

/// Extract with default options.
pub fn extract_schema_default(g: &Graph) -> Schema {
    extract_schema(g, &ExtractOptions::default())
}

fn label_to_pred(g: &Graph, label: &Label, widen: bool) -> Pred {
    match label {
        Label::Symbol(s) => Pred::Symbol(g.symbols().resolve(*s).to_string()),
        Label::Value(v) => {
            if widen {
                Pred::Kind(match v {
                    ssd_graph::Value::Int(_) => LabelKind::Int,
                    ssd_graph::Value::Real(_) => LabelKind::Real,
                    ssd_graph::Value::Str(_) => LabelKind::Str,
                    ssd_graph::Value::Bool(_) => LabelKind::Bool,
                })
            } else {
                Pred::ValueEq(v.clone())
            }
        }
    }
}

/// Merge schema nodes whose outgoing predicate signatures are equal, to a
/// fixpoint (a bisimulation quotient at the schema level, with syntactic
/// predicate equality standing in for semantic equivalence). Stopping the
/// refinement early (partial mode) only leaves classes coarser, i.e. the
/// merged schema looser — still well-formed.
fn merge_signatures(schema: &Schema, guard: &Guard) -> Result<Schema, Exhausted> {
    // Signature refinement, mirroring ssd_graph::bisim::bisimilarity_classes
    // but over Pred-labeled edges compared syntactically via Display.
    let n = schema.node_count();
    let mut class: Vec<usize> = vec![0; n];
    loop {
        if !guard.tick(n as u64)? {
            break;
        }
        let mut sig_ids: HashMap<Vec<(String, usize)>, usize> = HashMap::new();
        let mut next = Vec::with_capacity(n);
        for id in schema.node_ids() {
            let mut sig: Vec<(String, usize)> = schema
                .edges(id)
                .iter()
                .map(|e| (e.pred.to_string(), class[e.to.index()]))
                .collect();
            sig.sort();
            sig.dedup();
            let fresh = sig_ids.len();
            let cid = *sig_ids.entry(sig).or_insert(fresh);
            next.push(cid);
        }
        if next == class {
            break;
        }
        class = next;
    }
    let num_classes = class.iter().copied().max().map_or(0, |m| m + 1);
    let mut out = Schema::new();
    let mut nodes: Vec<SchemaNodeId> = Vec::with_capacity(num_classes);
    for i in 0..num_classes {
        nodes.push(if i == 0 { out.root() } else { out.add_node() });
    }
    for id in schema.node_ids() {
        let from = nodes[class[id.index()]];
        for e in schema.edges(id) {
            out.add_edge(from, e.pred.clone(), nodes[class[e.to.index()]]);
        }
    }
    out.set_root(nodes[class[schema.root().index()]]);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::conforms;
    use ssd_graph::literal::parse_graph;

    fn movie_db() -> Graph {
        parse_graph(
            r#"{Movie: {Title: "C", Year: 1942},
                Movie: {Title: "S", Year: 1972}}"#,
        )
        .unwrap()
    }

    #[test]
    fn data_conforms_to_extracted_schema() {
        let g = movie_db();
        let s = extract_schema_default(&g);
        assert!(conforms(&g, &s));
    }

    #[test]
    fn widened_schema_accepts_fresh_constants() {
        let g = movie_db();
        let s = extract_schema_default(&g);
        let other = parse_graph(r#"{Movie: {Title: "Brand New Film", Year: 2024}}"#).unwrap();
        assert!(conforms(&other, &s));
    }

    #[test]
    fn unwidened_schema_rejects_fresh_constants() {
        let g = movie_db();
        let s = extract_schema(
            &g,
            &ExtractOptions {
                widen_values: false,
                merge_equal_signatures: true,
            },
        );
        assert!(conforms(&g, &s));
        let other = parse_graph(r#"{Movie: {Title: "New", Year: 2024}}"#).unwrap();
        assert!(!conforms(&other, &s));
    }

    #[test]
    fn schema_rejects_different_shape() {
        let g = movie_db();
        let s = extract_schema_default(&g);
        let other = parse_graph(r#"{Movie: {Director: "Curtiz"}}"#).unwrap();
        assert!(!conforms(&other, &s));
    }

    #[test]
    fn extraction_compresses_repetition() {
        // 50 structurally identical movies collapse to a constant-size schema.
        let mut src = String::from("{");
        for i in 0..50 {
            src.push_str(&format!("Movie: {{Title: \"m{i}\", Year: {}}}", 1900 + i));
            if i != 49 {
                src.push(',');
            }
        }
        src.push('}');
        let g = parse_graph(&src).unwrap();
        let s = extract_schema_default(&g);
        assert!(
            s.node_count() <= 6,
            "expected tiny schema, got {} nodes",
            s.node_count()
        );
        assert!(conforms(&g, &s));
    }

    #[test]
    fn cyclic_data_extracts_cyclic_schema() {
        let g = parse_graph("@x = {next: @x}").unwrap();
        let s = extract_schema_default(&g);
        assert!(conforms(&g, &s));
        assert_eq!(s.node_count(), 1);
        assert!(s.edges(s.root()).iter().any(|e| e.to == s.root()));
    }

    #[test]
    fn heterogeneous_records_extract_union_schema() {
        // Figure 1's situation: two cast representations.
        let g = parse_graph(
            r#"{Movie: {Cast: {Actors: "B"}},
                Movie: {Cast: {Credit: {Actors: "A"}}}}"#,
        )
        .unwrap();
        let s = extract_schema_default(&g);
        assert!(conforms(&g, &s));
        // Either representation alone also conforms.
        let only_direct = parse_graph(r#"{Movie: {Cast: {Actors: "X"}}}"#).unwrap();
        assert!(conforms(&only_direct, &s));
    }

    #[test]
    fn signature_merge_reduces_node_count() {
        let g = movie_db();
        let merged = extract_schema(
            &g,
            &ExtractOptions {
                widen_values: true,
                merge_equal_signatures: true,
            },
        );
        let unmerged = extract_schema(
            &g,
            &ExtractOptions {
                widen_values: true,
                merge_equal_signatures: false,
            },
        );
        assert!(merged.node_count() <= unmerged.node_count());
    }
}
