//! Data statistics for static cost analysis (ssd-cost).
//!
//! §4 frames optimization of path queries as reasoning against schemas
//! and DataGuides; Goldman–Widom attach *statistics* to the summary so
//! the optimizer can estimate how many objects a path touches. This
//! module is that collector: one deterministic pass over the reachable
//! fragment of a data graph records global sizes (node/edge counts,
//! fan-out, per-label edge counts) and — when a schema is supplied — the
//! number of data nodes assigned to each schema node by the reachable
//! product of data and schema (every data node reachable *while* the
//! schema tracks it with a matching predicate edge).
//!
//! The product numbers are what make schema-typed cardinality bounds
//! sound: when the data conforms to the schema, every data path matched
//! by a query path lands on nodes counted under the schema nodes the
//! typing analysis reaches, so `Σ assigned(t)` over the typing-reachable
//! schema nodes bounds the binding's match count from above.

use crate::schema::{Schema, SchemaNodeId};
use crate::simulation::conforms;
use ssd_graph::{Graph, Label, NodeId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Statistics over the reachable fragment of one data graph, optionally
/// refined by a schema. All counts are finite and deterministic: the
/// collector is a plain BFS with ordered sets, so the same graph always
/// yields the same profile (cycles included).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DataStats {
    /// Nodes reachable from the root.
    pub nodes_reachable: u64,
    /// Edges with a reachable source.
    pub edges_reachable: u64,
    /// Largest out-degree among reachable nodes.
    pub max_fanout: u64,
    /// Out-degree of the root.
    pub root_fanout: u64,
    /// Distinct nodes appearing as an endpoint of a reachable edge, plus
    /// the root — exactly the `node/1` EDB relation the triple shredder
    /// produces.
    pub edb_nodes: u64,
    /// Distinct edge labels in the reachable fragment.
    pub distinct_labels: u64,
    /// Does the graph contain a cycle? Acyclic data bounds the number of
    /// label words any path expression can match even without a schema.
    pub cyclic: bool,
    /// Edge count per label (displayed form; symbols by name).
    pub label_counts: BTreeMap<String, u64>,
    /// With a schema: for each schema node, how many distinct data nodes
    /// the reachable data×schema product assigns to it. Empty without a
    /// schema.
    pub per_schema_node: Vec<u64>,
    /// With a schema: does the data conform (simulation)? Conformance is
    /// what licenses the per-schema-node counts as cardinality bounds.
    pub conforms: bool,
}

impl DataStats {
    /// Collect global statistics only (no schema refinement).
    pub fn collect(g: &Graph) -> DataStats {
        let mut stats = DataStats::default();
        let reachable = g.reachable();
        stats.nodes_reachable = reachable.len() as u64;
        stats.root_fanout = g.out_degree(g.root()) as u64;
        stats.cyclic = g.has_cycle();
        let mut endpoints: BTreeSet<NodeId> = BTreeSet::new();
        endpoints.insert(g.root());
        for &n in &reachable {
            let deg = g.out_degree(n) as u64;
            stats.max_fanout = stats.max_fanout.max(deg);
            for e in g.edges(n) {
                stats.edges_reachable += 1;
                endpoints.insert(n);
                endpoints.insert(e.to);
                *stats
                    .label_counts
                    .entry(label_key(&e.label, g))
                    .or_insert(0) += 1;
            }
        }
        stats.edb_nodes = endpoints.len() as u64;
        stats.distinct_labels = stats.label_counts.len() as u64;
        stats
    }

    /// Collect global statistics plus per-schema-node assignment counts
    /// from the reachable data×schema product, and the conformance flag.
    pub fn collect_with_schema(g: &Graph, schema: &Schema) -> DataStats {
        let mut stats = DataStats::collect(g);
        let mut assigned: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); schema.node_count()];
        let mut visited: BTreeSet<(NodeId, SchemaNodeId)> = BTreeSet::new();
        let start = (g.root(), schema.root());
        visited.insert(start);
        assigned[schema.root().index()].insert(g.root());
        let mut queue: VecDeque<(NodeId, SchemaNodeId)> = VecDeque::new();
        queue.push_back(start);
        while let Some((n, s)) = queue.pop_front() {
            for e in g.edges(n) {
                for se in schema.edges(s) {
                    if se.pred.matches(&e.label, g.symbols()) {
                        let next = (e.to, se.to);
                        if visited.insert(next) {
                            assigned[se.to.index()].insert(e.to);
                            queue.push_back(next);
                        }
                    }
                }
            }
        }
        stats.per_schema_node = assigned.iter().map(|s| s.len() as u64).collect();
        stats.conforms = conforms(g, schema);
        stats
    }

    /// Data nodes assigned to `n` by the product traversal, if a schema
    /// was supplied at collection time.
    pub fn schema_extent(&self, n: SchemaNodeId) -> Option<u64> {
        self.per_schema_node.get(n.index()).copied()
    }

    /// Edges carrying `label` (by displayed form), zero if absent.
    pub fn label_count(&self, label: &str) -> u64 {
        self.label_counts.get(label).copied().unwrap_or(0)
    }

    /// Fraction of reachable edges carrying `label` (by displayed form),
    /// in `[0, 1]` — the per-step selectivity the index access-path
    /// planner feeds on when weighing a POS label scan against an SPO
    /// frontier gallop.
    pub fn label_selectivity(&self, label: &str) -> f64 {
        if self.edges_reachable == 0 {
            0.0
        } else {
            self.label_count(label) as f64 / self.edges_reachable as f64
        }
    }
}

impl std::fmt::Display for DataStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} node(s), {} edge(s), {} distinct label(s), max fan-out {}",
            self.nodes_reachable, self.edges_reachable, self.distinct_labels, self.max_fanout
        )?;
        if !self.per_schema_node.is_empty() {
            write!(
                f,
                ", schema extents {:?}{}",
                self.per_schema_node,
                if self.conforms {
                    " (conforming)"
                } else {
                    " (non-conforming)"
                }
            )?;
        }
        Ok(())
    }
}

/// Stable display key for a label: symbol name, or the value's display.
fn label_key(label: &Label, g: &Graph) -> String {
    match label {
        Label::Symbol(s) => g.symbols().resolve(*s).to_string(),
        Label::Value(v) => v.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::figure1_schema;
    use ssd_graph::literal::parse_graph;

    /// Figure 1's movie database with the References/Is_referenced_in
    /// back-edges, so the data graph is genuinely cyclic.
    fn cyclic_figure1() -> Graph {
        parse_graph(
            r#"{Entry: @e1 = {Movie: {Title: "Casablanca",
                                      Cast: {Actors: "Bogart"},
                                      References: @e2 = {Movie: {Title: "Play it again, Sam",
                                                                 References: @e1}}}},
                Entry: @e2}"#,
        )
        .unwrap()
    }

    #[test]
    fn global_stats_on_cyclic_graph_are_finite() {
        let g = cyclic_figure1();
        assert!(g.has_cycle(), "fixture must be cyclic");
        let stats = DataStats::collect(&g);
        assert!(stats.cyclic);
        assert_eq!(stats.nodes_reachable, g.reachable().len() as u64);
        assert_eq!(stats.edges_reachable, g.edge_count() as u64);
        assert_eq!(stats.label_count("Entry"), 2);
        assert_eq!(stats.label_count("Title"), 2);
        assert_eq!(stats.label_count("References"), 2);
        // Value labels key by their displayed (quoted) form.
        assert_eq!(stats.label_count("\"Casablanca\""), 1);
        assert_eq!(stats.root_fanout, 2);
        assert!(stats.max_fanout >= 3, "movie node has 3 edges");
        assert_eq!(
            stats.edges_reachable,
            stats.label_counts.values().sum::<u64>()
        );
        // Every reachable node is an edge endpoint here.
        assert_eq!(stats.edb_nodes, stats.nodes_reachable);
    }

    #[test]
    fn collection_is_deterministic() {
        let g = cyclic_figure1();
        let schema = figure1_schema();
        let a = DataStats::collect_with_schema(&g, &schema);
        let b = DataStats::collect_with_schema(&g, &schema);
        assert_eq!(a, b);
        // And stable across graph re-parses of the same literal.
        let c = DataStats::collect_with_schema(&cyclic_figure1(), &schema);
        assert_eq!(a.per_schema_node, c.per_schema_node);
        assert_eq!(a.label_counts, c.label_counts);
    }

    #[test]
    fn schema_product_assigns_cyclic_data_finitely() {
        let g = cyclic_figure1();
        let schema = figure1_schema();
        let stats = DataStats::collect_with_schema(&g, &schema);
        assert!(stats.conforms, "fixture conforms to the Figure 1 schema");
        assert_eq!(stats.per_schema_node.len(), schema.node_count());
        // Root schema node holds exactly the data root.
        assert_eq!(stats.schema_extent(schema.root()), Some(1));
        // No schema node can be assigned more data nodes than exist.
        for &count in &stats.per_schema_node {
            assert!(count <= stats.nodes_reachable);
        }
        // The entry schema node (s1) covers both entry nodes.
        assert_eq!(stats.per_schema_node[1], 2);
    }

    #[test]
    fn nonconforming_data_is_flagged() {
        // A label the Figure 1 schema's root does not allow.
        let g = parse_graph(r#"{Unexpected: {X: 1}}"#).unwrap();
        let stats = DataStats::collect_with_schema(&g, &figure1_schema());
        assert!(!stats.conforms);
        // Global stats are still collected.
        assert!(stats.nodes_reachable > 0);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::new();
        let stats = DataStats::collect(&g);
        assert_eq!(stats.nodes_reachable, 1);
        assert_eq!(stats.edges_reachable, 0);
        assert_eq!(stats.edb_nodes, 1);
        assert_eq!(stats.distinct_labels, 0);
        assert_eq!(stats.max_fanout, 0);
    }

    #[test]
    fn display_mentions_extents_with_schema() {
        let g = cyclic_figure1();
        let with = DataStats::collect_with_schema(&g, &figure1_schema());
        assert!(with.to_string().contains("schema extents"));
        assert!(with.to_string().contains("conforming"));
        let without = DataStats::collect(&g);
        assert!(!without.to_string().contains("schema extents"));
    }
}
