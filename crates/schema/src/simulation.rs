//! Simulation between data graphs and schemas.
//!
//! §5 / \[8\]: "the property of *simulation* is used to describe the
//! relationship between data and schema". A data graph `D` conforms to a
//! schema `S` when there is a simulation of `D` by `S`: a relation `R`
//! containing `(root_D, root_S)` such that whenever `(d, s) ∈ R` and
//! `d --l--> d'` in the data, there is a schema edge `s --p--> s'` with
//! `p(l)` true and `(d', s') ∈ R`.
//!
//! We compute the *greatest* simulation by fixpoint refinement of
//! per-data-node candidate sets — `O(|D| · |S| · iterations)`, which is the
//! classical algorithm (Henzinger–Henzinger–Kopke refine further; the
//! simple fixpoint is what \[8\] describes and is plenty for our scale; E12
//! measures it).

use crate::schema::{Schema, SchemaNodeId};
use ssd_graph::{Graph, NodeId};
use std::collections::HashSet;

/// The greatest simulation of `g` by `schema`: for each data node, the set
/// of schema nodes that simulate it.
#[derive(Debug)]
pub struct Simulation {
    /// `candidates[node.index()]` = schema nodes simulating that node.
    candidates: Vec<HashSet<SchemaNodeId>>,
    /// Refinement sweeps performed until fixpoint.
    pub iterations: usize,
}

impl Simulation {
    /// Schema nodes simulating `n`.
    pub fn simulators(&self, n: NodeId) -> &HashSet<SchemaNodeId> {
        &self.candidates[n.index()]
    }

    /// True if schema node `s` simulates data node `n`.
    pub fn simulates(&self, s: SchemaNodeId, n: NodeId) -> bool {
        self.candidates[n.index()].contains(&s)
    }
}

/// Compute the greatest simulation of the reachable part of `g` by
/// `schema`. Unreachable data nodes get empty candidate sets.
pub fn simulation(g: &Graph, schema: &Schema) -> Simulation {
    let reachable = g.reachable();
    let mut in_scope = vec![false; g.node_count()];
    for &n in &reachable {
        in_scope[n.index()] = true;
    }
    // Start: every schema node is a candidate for every reachable data node.
    let all: HashSet<SchemaNodeId> = schema.node_ids().collect();
    let mut candidates: Vec<HashSet<SchemaNodeId>> = (0..g.node_count())
        .map(|i| {
            if in_scope[i] {
                all.clone()
            } else {
                HashSet::new()
            }
        })
        .collect();
    // Refine: s survives at d iff every data edge (l, d') has a schema edge
    // (p, s') with p(l) and s' ∈ candidates[d'].
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let mut changed = false;
        for &d in &reachable {
            let survivors: HashSet<SchemaNodeId> = candidates[d.index()]
                .iter()
                .copied()
                .filter(|&s| {
                    g.edges(d).iter().all(|e| {
                        schema.edges(s).iter().any(|se| {
                            se.pred.matches(&e.label, g.symbols())
                                && candidates[e.to.index()].contains(&se.to)
                        })
                    })
                })
                .collect();
            if survivors.len() != candidates[d.index()].len() {
                candidates[d.index()] = survivors;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Simulation {
        candidates,
        iterations,
    }
}

/// Does `g` conform to `schema`? (Is the data root simulated by the schema
/// root?)
pub fn conforms(g: &Graph, schema: &Schema) -> bool {
    simulation(g, schema).simulates(schema.root(), g.root())
}

/// Classify data nodes by schema node: for each schema node, the data
/// nodes it simulates. This is the "partial answers to queries" use of
/// schemas (§5): the extent of a schema node over-approximates the nodes a
/// query confined to that schema region can reach.
pub fn extents(g: &Graph, schema: &Schema) -> Vec<Vec<NodeId>> {
    let sim = simulation(g, schema);
    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); schema.node_count()];
    for n in g.reachable() {
        for s in sim.simulators(n) {
            out[s.index()].push(n);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pred::Pred;
    use ssd_graph::literal::parse_graph;
    use ssd_graph::LabelKind;

    /// Schema: root --Movie--> m, m --Title--> str, str --[string]--> leaf.
    fn movie_schema() -> Schema {
        let mut s = Schema::new();
        let root = s.root();
        let m = s.add_node();
        let title = s.add_node();
        let leaf = s.add_node();
        s.add_edge(root, Pred::Symbol("Movie".into()), m);
        s.add_edge(m, Pred::Symbol("Title".into()), title);
        s.add_edge(title, Pred::Kind(LabelKind::Str), leaf);
        s
    }

    #[test]
    fn conforming_data() {
        let g = parse_graph(r#"{Movie: {Title: "Casablanca"}, Movie: {Title: "Sam"}}"#).unwrap();
        assert!(conforms(&g, &movie_schema()));
    }

    #[test]
    fn missing_schema_edge_breaks_conformance() {
        // Director edges are not allowed by the schema.
        let g = parse_graph(r#"{Movie: {Title: "C", Director: "Curtiz"}}"#).unwrap();
        assert!(!conforms(&g, &movie_schema()));
    }

    #[test]
    fn wrong_value_type_breaks_conformance() {
        let g = parse_graph(r#"{Movie: {Title: 42}}"#).unwrap();
        assert!(!conforms(&g, &movie_schema()));
    }

    #[test]
    fn empty_data_conforms_to_anything() {
        // A leaf root has no edges, so the transfer condition is vacuous.
        let g = parse_graph("{}").unwrap();
        assert!(conforms(&g, &movie_schema()));
        assert!(conforms(&g, &Schema::new()));
    }

    #[test]
    fn universal_schema_accepts_everything() {
        let s = Schema::universal();
        for src in [
            "{}",
            r#"{a: 1, b: {c: {d: true}}}"#,
            "@x = {next: @x}",
            r#"{Movie: {Title: "C"}}"#,
        ] {
            let g = parse_graph(src).unwrap();
            assert!(conforms(&g, &s), "universal schema rejected {src}");
        }
    }

    #[test]
    fn empty_schema_rejects_nonempty_data() {
        let g = parse_graph("{a: {}}").unwrap();
        assert!(!conforms(&g, &Schema::new()));
    }

    #[test]
    fn cyclic_data_against_cyclic_schema() {
        let g = parse_graph("@x = {next: @x}").unwrap();
        let mut s = Schema::new();
        let root = s.root();
        s.add_edge(root, Pred::Symbol("next".into()), root);
        assert!(conforms(&g, &s));
        // But a schema expecting a finite chain rejects it.
        let mut fin = Schema::new();
        let end = fin.add_node();
        let froot = fin.root();
        fin.add_edge(froot, Pred::Symbol("next".into()), end);
        assert!(!conforms(&g, &fin));
    }

    #[test]
    fn simulation_exposes_candidates() {
        let g = parse_graph(r#"{Movie: {Title: "C"}}"#).unwrap();
        let schema = movie_schema();
        let sim = simulation(&g, &schema);
        assert!(sim.simulates(schema.root(), g.root()));
        let movie_node = g.successors_by_name(g.root(), "Movie")[0];
        // The movie node is simulated by schema node m (index 1).
        assert!(sim.simulators(movie_node).iter().any(|s| s.index() == 1));
        assert!(sim.iterations >= 1);
    }

    #[test]
    fn extents_partition_matches_simulation() {
        let g = parse_graph(r#"{Movie: {Title: "C"}}"#).unwrap();
        let schema = movie_schema();
        let ex = extents(&g, &schema);
        assert_eq!(ex.len(), schema.node_count());
        // Root is in the extent of the schema root.
        assert!(ex[schema.root().index()].contains(&g.root()));
    }

    #[test]
    fn looseness_extra_schema_edges_are_free() {
        let mut s = movie_schema();
        let junk = s.add_node();
        let root = s.root();
        s.add_edge(root, Pred::Symbol("NeverUsed".into()), junk);
        let g = parse_graph(r#"{Movie: {Title: "C"}}"#).unwrap();
        assert!(conforms(&g, &s));
    }

    #[test]
    fn figure1_schema_accepts_figure1_like_data() {
        let g = parse_graph(
            r#"{Entry: {Movie: {Title: "Casablanca",
                                Cast: {Actors: "Bogart", Actors: "Bacall"},
                                Director: "Curtiz"}},
                Entry: {Movie: {Title: "Play it again, Sam",
                                 BoxOffice: 1200000}}}"#,
        )
        .unwrap();
        assert!(conforms(&g, &crate::schema::figure1_schema()));
    }
}
