//! The 1-index: a bisimulation-based structural summary (\[31\], §5).
//!
//! Nestorov, Ullman, Wiener & Chawathe's *representative objects* (and the
//! later 1-index of Milo & Suciu) summarise a database by **backward
//! bisimulation**: two nodes are equivalent when the sets of label paths
//! *into* them (from the root) are forced equal by bisimilarity on the
//! reversed graph. The summary has one node per equivalence class, so it
//! is never larger than the data — in contrast to the strong
//! [`DataGuide`](crate::dataguide::DataGuide), whose subset construction
//! can blow up on irregular data. The price: the 1-index is
//! *nondeterministic* (several same-labeled edges may leave a class), so
//! lookups walk it like a small graph instead of following one pointer.
//!
//! Soundness & completeness: a label path from the root reaches data node
//! `n` iff the same path in the 1-index reaches the class of `n` — tested
//! here and in the property suite.

use ssd_graph::{Graph, Label, NodeId};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// A 1-index summary of a data graph.
#[derive(Debug)]
pub struct OneIndex {
    /// The summary graph (classes and their transitions), sharing the data
    /// graph's symbol table. The root is the class of the data root.
    summary: Graph,
    /// Extent of each summary node: the data nodes in that class.
    extents: HashMap<NodeId, Vec<NodeId>>,
}

impl OneIndex {
    /// Build the 1-index of the reachable part of `g` by partition
    /// refinement on *incoming* edges (backward bisimulation), with the
    /// root separated so class = set of nodes with the same incoming path
    /// language certificate.
    pub fn build(g: &Graph) -> OneIndex {
        let reachable = g.reachable();
        let in_scope: std::collections::HashSet<NodeId> = reachable.iter().copied().collect();
        // Reverse adjacency restricted to the reachable fragment.
        let mut rev: HashMap<NodeId, Vec<(Label, NodeId)>> = HashMap::new();
        for &n in &reachable {
            for e in g.edges(n) {
                if in_scope.contains(&e.to) {
                    rev.entry(e.to).or_default().push((e.label.clone(), n));
                }
            }
        }
        // Partition refinement on reversed edges. Initial partition: the
        // root alone vs everything else (the root has the empty incoming
        // path, which no other node shares observationally).
        let mut class: HashMap<NodeId, usize> = reachable
            .iter()
            .map(|&n| (n, if n == g.root() { 0 } else { 1 }))
            .collect();
        loop {
            let mut sig_ids: HashMap<(usize, Vec<(Label, usize)>), usize> = HashMap::new();
            let mut next: HashMap<NodeId, usize> = HashMap::new();
            for &n in &reachable {
                let mut sig: Vec<(Label, usize)> = rev
                    .get(&n)
                    .map(|edges| {
                        edges
                            .iter()
                            .map(|(l, from)| (l.clone(), class[from]))
                            .collect()
                    })
                    .unwrap_or_default();
                sig.sort();
                sig.dedup();
                // Keep the root separated by folding the old class into the
                // signature.
                let key = (class[&n], sig);
                let fresh = sig_ids.len();
                let id = *sig_ids.entry(key).or_insert(fresh);
                next.insert(n, id);
            }
            if next == class {
                break;
            }
            class = next;
        }
        // Build the summary graph: one node per class, then compact and
        // carry the extents through gc's remap.
        let num_classes = class.values().copied().max().map_or(0, |m| m + 1);
        let root_class = class[&g.root()];
        let mut summary = Graph::with_symbols(g.symbols_handle());
        let mut nodes: Vec<NodeId> = Vec::with_capacity(num_classes);
        for i in 0..num_classes {
            nodes.push(if i == root_class {
                summary.root()
            } else {
                summary.add_node()
            });
        }
        for &n in &reachable {
            let from = nodes[class[&n]];
            for e in g.edges(n) {
                if in_scope.contains(&e.to) {
                    summary.add_edge(from, e.label.clone(), nodes[class[&e.to]]);
                }
            }
        }
        let remap = summary.gc();
        let mut extents: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &n in &reachable {
            if let Some(&img) = remap.get(&nodes[class[&n]]) {
                extents.entry(img).or_default().push(n);
            }
        }
        for ext in extents.values_mut() {
            ext.sort_unstable();
            ext.dedup();
        }
        OneIndex { summary, extents }
    }

    /// The summary graph.
    pub fn graph(&self) -> &Graph {
        &self.summary
    }

    /// Number of classes (summary nodes).
    pub fn node_count(&self) -> usize {
        self.summary.node_count()
    }

    /// The data nodes belonging to a summary class.
    pub fn extent(&self, class: NodeId) -> &[NodeId] {
        self.extents.get(&class).map_or(&[], Vec::as_slice)
    }

    /// The data nodes reachable from the root by the label path `path`
    /// (union of the extents of all summary nodes the path reaches — the
    /// 1-index is nondeterministic, so this walks a frontier).
    pub fn path_targets(&self, path: &[Label]) -> Vec<NodeId> {
        let mut frontier: BTreeSet<NodeId> = std::iter::once(self.summary.root()).collect();
        for label in path {
            let mut next = BTreeSet::new();
            for &s in &frontier {
                for e in self.summary.edges(s) {
                    if &e.label == label {
                        next.insert(e.to);
                    }
                }
            }
            if next.is_empty() {
                return Vec::new();
            }
            frontier = next;
        }
        let mut out: BTreeSet<NodeId> = BTreeSet::new();
        for s in frontier {
            out.extend(self.extent(s).iter().copied());
        }
        out.into_iter().collect()
    }

    /// Every label path of length ≤ `max_len` in the summary (equals the
    /// data's path set — soundness/completeness of the 1-index).
    pub fn paths_up_to(&self, max_len: usize) -> BTreeSet<Vec<Label>> {
        let mut out = BTreeSet::new();
        let mut queue: VecDeque<(NodeId, Vec<Label>)> =
            std::iter::once((self.summary.root(), Vec::new())).collect();
        while let Some((n, path)) = queue.pop_front() {
            if path.len() >= max_len {
                continue;
            }
            for e in self.summary.edges(n) {
                let mut p = path.clone();
                p.push(e.label.clone());
                // Re-walk even seen paths while under the bound: the
                // summary is nondeterministic, so one path can continue
                // differently from different summary nodes.
                let fresh = out.insert(p.clone());
                if fresh || p.len() < max_len {
                    queue.push_back((e.to, p));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataguide::{data_paths_up_to, DataGuide};
    use ssd_graph::literal::parse_graph;

    fn movie_db() -> Graph {
        parse_graph(
            r#"{Movie: {Title: "C", Cast: {Actors: "Bogart", Actors: "Bacall"}},
                Movie: {Title: "S", Cast: {Credit: {Actors: "Allen"}}}}"#,
        )
        .unwrap()
    }

    #[test]
    fn never_larger_than_data() {
        for src in [
            "{}",
            "{a: {c: {x: 1}}, b: {c: {y: 2}}}",
            "@x = {next: @x, v: 1}",
            r#"{Movie: {Title: "C"}, Movie: {Title: "D"}}"#,
        ] {
            let g = parse_graph(src).unwrap();
            let idx = OneIndex::build(&g);
            assert!(
                idx.node_count() <= g.reachable().len(),
                "1-index larger than data for {src}"
            );
        }
    }

    #[test]
    fn paths_equal_data_paths() {
        let g = movie_db();
        let idx = OneIndex::build(&g);
        assert_eq!(idx.paths_up_to(5), data_paths_up_to(&g, 5));
    }

    #[test]
    fn path_targets_match_dataguide() {
        let g = movie_db();
        let one = OneIndex::build(&g);
        let guide = DataGuide::build(&g);
        let syms = g.symbols();
        let paths: Vec<Vec<Label>> = vec![
            vec![Label::symbol(syms, "Movie")],
            vec![Label::symbol(syms, "Movie"), Label::symbol(syms, "Title")],
            vec![
                Label::symbol(syms, "Movie"),
                Label::symbol(syms, "Cast"),
                Label::symbol(syms, "Actors"),
            ],
            vec![Label::symbol(syms, "Nope")],
        ];
        for p in paths {
            let a: BTreeSet<NodeId> = one.path_targets(&p).into_iter().collect();
            let b: BTreeSet<NodeId> = guide.path_targets(&p).iter().copied().collect();
            assert_eq!(a, b, "disagree on path {p:?}");
        }
    }

    #[test]
    fn collapses_symmetric_structure() {
        // 10 identical movies: classes collapse to a handful.
        let mut src = String::from("{");
        for i in 0..10 {
            src.push_str(&format!("Movie: {{Title: \"m\", N: {i}}},"));
        }
        src.pop();
        src.push('}');
        let g = parse_graph(&src).unwrap();
        let idx = OneIndex::build(&g);
        // Root + movie-class + title-class + n-class + leaves classes —
        // far fewer than the ~41 data nodes.
        assert!(idx.node_count() < g.reachable().len() / 2);
    }

    #[test]
    fn extents_partition_the_data() {
        let g = movie_db();
        let idx = OneIndex::build(&g);
        let mut all: Vec<NodeId> = Vec::new();
        for class in idx.graph().reachable() {
            all.extend(idx.extent(class).iter().copied());
        }
        all.sort_unstable();
        let mut expected = g.reachable();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn nondeterminism_on_reconverging_paths() {
        // a.c and b.c converge by label but reach different nodes; the
        // 1-index keeps them in separate classes (different incoming
        // paths), so 'c' leaves two classes: walking must follow both.
        let g = parse_graph("{a: {c: {x: 1}}, b: {c: {y: 2}}}").unwrap();
        let idx = OneIndex::build(&g);
        let syms = g.symbols();
        let a_c = idx.path_targets(&[Label::symbol(syms, "a"), Label::symbol(syms, "c")]);
        assert_eq!(a_c.len(), 1);
        let targets_x = idx.path_targets(&[
            Label::symbol(syms, "a"),
            Label::symbol(syms, "c"),
            Label::symbol(syms, "x"),
        ]);
        assert_eq!(targets_x.len(), 1);
        // b.c.x must NOT match (x is only under a.c).
        let wrong = idx.path_targets(&[
            Label::symbol(syms, "b"),
            Label::symbol(syms, "c"),
            Label::symbol(syms, "x"),
        ]);
        assert!(wrong.is_empty());
    }

    #[test]
    fn cyclic_data_summarises_finitely() {
        let g = parse_graph("@x = {next: {next: @x}, stop: 1}").unwrap();
        let idx = OneIndex::build(&g);
        assert!(idx.node_count() <= g.reachable().len());
        assert!(idx.graph().has_cycle());
        let syms = g.symbols();
        let deep: Vec<Label> = std::iter::repeat_n(Label::symbol(syms, "next"), 7)
            .chain(std::iter::once(Label::symbol(syms, "stop")))
            .collect();
        // Odd-length next-chains don't reach stop (stop hangs off the
        // root, reached after even numbers of next steps).
        let hits = idx.path_targets(&deep);
        let direct = {
            // Oracle: walk the data.
            let mut frontier: BTreeSet<NodeId> = std::iter::once(g.root()).collect();
            for l in &deep {
                let mut next = BTreeSet::new();
                for &n in &frontier {
                    for e in g.edges(n) {
                        if &e.label == l {
                            next.insert(e.to);
                        }
                    }
                }
                frontier = next;
            }
            frontier
        };
        assert_eq!(hits.into_iter().collect::<BTreeSet<_>>(), direct);
    }
}
