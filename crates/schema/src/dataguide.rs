//! DataGuides: deterministic structural summaries (\[22\], §5).
//!
//! Goldman & Widom's *strong DataGuide* is the subset-construction
//! determinisation of the data graph viewed as an automaton over edge
//! labels: each guide node stands for the exact set of data nodes reachable
//! by some label path from the root, and every label path of the data
//! occurs in the guide exactly once (and vice versa). The guide is itself a
//! semistructured database — we expose it as a [`Graph`] — so it can be
//! browsed, queried, and used as the path index of §4 ("path ... indices on
//! labels").

use ssd_graph::{Graph, Label, NodeId};
use ssd_guard::{Exhausted, Guard};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Fault-injection seam: hit once per subset-construction state expanded.
pub const FP_DATAGUIDE_STATE: &str = "dataguide.state";

/// Approximate bytes one guide state costs (target-set entry + state map).
const STATE_COST: u64 = 56;

/// A strong DataGuide over a data graph.
#[derive(Debug)]
pub struct DataGuide {
    /// The summary, itself an edge-labeled graph sharing the data graph's
    /// symbol table.
    guide: Graph,
    /// For each guide node, the *target set*: the data nodes reachable by
    /// the label paths leading to that guide node.
    targets: HashMap<NodeId, Vec<NodeId>>,
}

impl DataGuide {
    /// Build the strong DataGuide of the reachable part of `g`.
    ///
    /// Subset construction: states are sets of data nodes; the start state
    /// is `{root}`; state `S --l--> { d' | d ∈ S, d --l--> d' }` for every
    /// label `l` on an edge out of `S`. Terminates because there are
    /// finitely many distinct target sets (guides of cyclic data are
    /// cyclic, not infinite).
    pub fn build(g: &Graph) -> DataGuide {
        // An unlimited guard never reports exhaustion.
        match DataGuide::try_build(g, &Guard::unlimited()) {
            Ok(dg) => dg,
            Err(_) => DataGuide {
                guide: Graph::with_symbols(g.symbols_handle()),
                targets: HashMap::new(),
            },
        }
    }

    /// As [`DataGuide::build`], under a resource [`Guard`]. The subset
    /// construction is worst-case exponential in the data, so this is the
    /// primary defence against guide blow-up: fuel is ticked per state
    /// expansion and per grouped edge, memory accounted per target-set
    /// entry. In partial mode exhaustion yields the guide built so far
    /// (sound for pruning: absent paths are simply not pruned).
    pub fn try_build(g: &Graph, guard: &Guard) -> Result<DataGuide, Exhausted> {
        let mut guide = Graph::with_symbols(g.symbols_handle());
        let mut targets: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        let mut state_ids: HashMap<BTreeSet<NodeId>, NodeId> = HashMap::new();

        let start: BTreeSet<NodeId> = std::iter::once(g.root()).collect();
        let start_id = guide.root();
        state_ids.insert(start.clone(), start_id);
        targets.insert(start_id, start.iter().copied().collect());

        let mut queue: VecDeque<BTreeSet<NodeId>> = VecDeque::new();
        queue.push_back(start);
        'subset: while let Some(state) = queue.pop_front() {
            if !(guard.tick(1)? && guard.fail_point(FP_DATAGUIDE_STATE)?) {
                break 'subset;
            }
            let from_id = state_ids[&state];
            // Group successors of the whole state by label.
            let mut by_label: HashMap<Label, BTreeSet<NodeId>> = HashMap::new();
            for &d in &state {
                for e in g.edges(d) {
                    by_label.entry(e.label.clone()).or_default().insert(e.to);
                }
            }
            // Deterministic iteration order for reproducible guides.
            let mut grouped: Vec<(Label, BTreeSet<NodeId>)> = by_label.into_iter().collect();
            grouped.sort_by(|a, b| a.0.cmp(&b.0));
            for (label, succ) in grouped {
                if !guard.tick(1)? {
                    break 'subset;
                }
                let to_id = match state_ids.get(&succ) {
                    Some(&id) => id,
                    None => {
                        if !guard.alloc(succ.len() as u64 * STATE_COST)? {
                            break 'subset;
                        }
                        let id = guide.add_node();
                        state_ids.insert(succ.clone(), id);
                        targets.insert(id, succ.iter().copied().collect());
                        queue.push_back(succ);
                        id
                    }
                };
                guide.add_edge(from_id, label, to_id);
            }
        }
        Ok(DataGuide { guide, targets })
    }

    /// The summary graph.
    pub fn graph(&self) -> &Graph {
        &self.guide
    }

    /// Number of guide nodes (states).
    pub fn node_count(&self) -> usize {
        self.guide.node_count()
    }

    /// The target set of a guide node.
    pub fn targets(&self, guide_node: NodeId) -> &[NodeId] {
        self.targets.get(&guide_node).map_or(&[], Vec::as_slice)
    }

    /// Follow a label path from the guide root. Returns the guide node, or
    /// `None` if the path does not occur in the data.
    pub fn lookup(&self, path: &[Label]) -> Option<NodeId> {
        let mut cur = self.guide.root();
        for label in path {
            let nexts: Vec<NodeId> = self
                .guide
                .edges(cur)
                .iter()
                .filter(|e| &e.label == label)
                .map(|e| e.to)
                .collect();
            match nexts.as_slice() {
                [] => return None,
                // A strong DataGuide is deterministic, so there is exactly
                // one next state; following the first keeps lookup total
                // even if that invariant were ever violated.
                [one, ..] => cur = *one,
            }
        }
        Some(cur)
    }

    /// The data nodes reachable by a label path — the path-index query.
    pub fn path_targets(&self, path: &[Label]) -> &[NodeId] {
        match self.lookup(path) {
            Some(n) => self.targets(n),
            None => &[],
        }
    }

    /// Enumerate every label path of length ≤ `max_len` present in the
    /// guide (hence in the data). Used for browsing (§1.3) and for the
    /// soundness/completeness property tests.
    pub fn paths_up_to(&self, max_len: usize) -> Vec<Vec<Label>> {
        let mut out = Vec::new();
        let mut stack: Vec<(NodeId, Vec<Label>)> = vec![(self.guide.root(), Vec::new())];
        while let Some((n, path)) = stack.pop() {
            if path.len() >= max_len {
                continue;
            }
            for e in self.guide.edges(n) {
                let mut p = path.clone();
                p.push(e.label.clone());
                out.push(p.clone());
                stack.push((e.to, p));
            }
        }
        out
    }
}

/// Enumerate label paths of length ≤ `max_len` in a *data* graph by direct
/// traversal (the expensive operation the guide precomputes). Paths are
/// deduplicated.
pub fn data_paths_up_to(g: &Graph, max_len: usize) -> BTreeSet<Vec<Label>> {
    let mut out = BTreeSet::new();
    // BFS over (node-set, path) is exponential; instead walk (node, path)
    // pairs with dedup of (node, depth, path) via the output set — for the
    // test scale this is fine, and it is the honest naive baseline.
    let mut frontier: Vec<(NodeId, Vec<Label>)> = vec![(g.root(), Vec::new())];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for (n, path) in frontier {
            for e in g.edges(n) {
                let mut p = path.clone();
                p.push(e.label.clone());
                if out.insert(p.clone()) || p.len() < max_len {
                    next.push((e.to, p));
                }
            }
        }
        // Dedup the frontier to keep the walk polynomial on DAG-ish data.
        next.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        next.dedup();
        frontier = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_graph::literal::parse_graph;

    fn movie_db() -> Graph {
        parse_graph(
            r#"{Movie: {Title: "C", Cast: {Actors: "Bogart", Actors: "Bacall"}},
                Movie: {Title: "S", Cast: {Credit: {Actors: "Allen"}}}}"#,
        )
        .unwrap()
    }

    #[test]
    fn guide_is_deterministic() {
        let g = movie_db();
        let dg = DataGuide::build(&g);
        for n in dg.graph().reachable() {
            let mut labels: Vec<&Label> = dg.graph().edges(n).iter().map(|e| &e.label).collect();
            let before = labels.len();
            labels.sort();
            labels.dedup();
            assert_eq!(labels.len(), before, "duplicate label out of guide node");
        }
    }

    #[test]
    fn guide_paths_equal_data_paths() {
        let g = movie_db();
        let dg = DataGuide::build(&g);
        let from_guide: BTreeSet<Vec<Label>> = dg.paths_up_to(5).into_iter().collect();
        let from_data = data_paths_up_to(&g, 5);
        assert_eq!(from_guide, from_data);
    }

    #[test]
    fn guide_merges_same_label_paths() {
        let g = movie_db();
        let dg = DataGuide::build(&g);
        // Both movies' Title edges collapse to one guide path.
        let movie = Label::symbol(g.symbols(), "Movie");
        let title = Label::symbol(g.symbols(), "Title");
        let t = dg.lookup(&[movie.clone(), title.clone()]).unwrap();
        // Target set covers the title nodes of *both* movies.
        assert_eq!(dg.targets(t).len(), 2);
    }

    #[test]
    fn lookup_missing_path_is_none() {
        let g = movie_db();
        let dg = DataGuide::build(&g);
        let junk = Label::symbol(g.symbols(), "Junk");
        assert!(dg.lookup(&[junk]).is_none());
        assert!(dg.path_targets(&[Label::str("nope")]).is_empty());
    }

    #[test]
    fn empty_path_targets_root() {
        let g = movie_db();
        let dg = DataGuide::build(&g);
        assert_eq!(dg.path_targets(&[]), &[g.root()]);
    }

    #[test]
    fn guide_of_cycle_is_finite_and_cyclic() {
        let g = parse_graph("@x = {next: @x}").unwrap();
        let dg = DataGuide::build(&g);
        assert_eq!(dg.node_count(), 1);
        assert!(dg.graph().has_cycle());
        // Arbitrarily deep lookups still resolve.
        let next = Label::symbol(g.symbols(), "next");
        let path: Vec<Label> = std::iter::repeat_n(next, 10).collect();
        assert!(dg.lookup(&path).is_some());
    }

    #[test]
    fn guide_can_be_larger_than_data() {
        // The classic case: determinisation can blow up. Two paths that
        // diverge then reconverge under different labels force subset
        // states that do not correspond to single data nodes.
        let g = parse_graph("{a: {c: {x: 1}}, b: {c: {y: 2}}}").unwrap();
        let dg = DataGuide::build(&g);
        // Data has distinct c-targets; guide keeps them separate since the
        // paths differ (a.c vs b.c), but shares nothing improperly:
        let a = Label::symbol(g.symbols(), "a");
        let c = Label::symbol(g.symbols(), "c");
        let ac = dg.path_targets(&[a, c]);
        assert_eq!(ac.len(), 1);
    }

    #[test]
    fn shared_prefixes_produce_union_target_sets() {
        // Two Movie edges from the root: guide state after Movie is the
        // 2-element set.
        let g = movie_db();
        let dg = DataGuide::build(&g);
        let movie = Label::symbol(g.symbols(), "Movie");
        assert_eq!(dg.path_targets(&[movie]).len(), 2);
    }

    #[test]
    fn guide_of_empty_graph() {
        let g = parse_graph("{}").unwrap();
        let dg = DataGuide::build(&g);
        assert_eq!(dg.node_count(), 1);
        assert!(dg.paths_up_to(3).is_empty());
    }

    #[test]
    fn guide_is_reproducible() {
        let g = movie_db();
        let a = DataGuide::build(&g);
        let b = DataGuide::build(&g);
        assert_eq!(
            ssd_graph::literal::write_graph(a.graph()),
            ssd_graph::literal::write_graph(b.graph())
        );
    }
}
