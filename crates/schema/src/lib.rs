//! # ssd-schema — adding structure to semistructured data (§5)
//!
//! "One of the main attractions of semistructured data is that it is
//! unconstrained. Nevertheless, it may be appropriate to impose (or to
//! discover) some form of structure in the data."
//!
//! * [`pred`] — unary predicates over edge labels, the alphabet of schemas.
//! * [`schema`] — rooted graphs with predicate-labeled edges (\[8\]).
//! * [`mod@simulation`] — conformance via the greatest simulation; extents.
//! * [`dataguide`] — strong DataGuides (\[22\]): deterministic path
//!   summaries with target sets, usable as path indexes (§4).
//! * [`oneindex`] — the backward-bisimulation 1-index (\[31\]'s
//!   representative objects): a nondeterministic summary that is never
//!   larger than the data.
//! * [`extract`] — schema discovery by bisimulation quotient + label
//!   widening.

pub mod dataguide;
pub mod diff;
pub mod extract;
pub mod oneindex;
pub mod pred;
pub mod schema;
pub mod simulation;
pub mod stats;

pub use dataguide::{data_paths_up_to, DataGuide, FP_DATAGUIDE_STATE};
pub use diff::{diff_paths, PathDiff};
pub use extract::{
    extract_schema, extract_schema_default, try_extract_schema, ExtractOptions, FP_SCHEMA_EXTRACT,
};
pub use oneindex::OneIndex;
pub use pred::Pred;
pub use schema::{figure1_schema, Schema, SchemaEdge, SchemaNodeId};
pub use simulation::{conforms, extents, simulation, Simulation};
pub use stats::DataStats;
