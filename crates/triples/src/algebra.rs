//! Relational algebra over the shredded edge relation.
//!
//! §3: "model the graph as a relational database and then exploit a
//! relational query language ... consider the expressive power of
//! relational languages on this structure". This module gives the classical
//! named-column algebra (select / project / natural join / rename / union /
//! difference) over relations whose fields are node ids or labels, so
//! graph queries can be phrased as relational plans and compared against
//! native traversal (experiment E5).

use crate::store::TripleStore;
use ssd_graph::{Label, NodeId, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A field of a relational tuple: an (opaque) node id or a label.
///
/// §3 complication 3: node ids "may only be used as temporary node labels,
/// and one may want to limit the way they can appear in the output" —
/// [`Relation::project`] away `Node` columns before surfacing results.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Datum {
    Node(NodeId),
    Label(Label),
}

impl Datum {
    pub fn as_node(&self) -> Option<NodeId> {
        match self {
            Datum::Node(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_label(&self) -> Option<&Label> {
        match self {
            Datum::Label(l) => Some(l),
            _ => None,
        }
    }

    pub fn as_value(&self) -> Option<&Value> {
        self.as_label().and_then(Label::as_value)
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Node(n) => write!(f, "{n}"),
            Datum::Label(l) => write!(f, "{l:?}"),
        }
    }
}

/// A relation: named columns and a *set* of rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    columns: Vec<String>,
    rows: BTreeSet<Vec<Datum>>,
}

/// Errors from malformed algebra expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    UnknownColumn(String),
    SchemaMismatch {
        left: Vec<String>,
        right: Vec<String>,
    },
    ArityMismatch {
        expected: usize,
        got: usize,
    },
    DuplicateColumn(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            AlgebraError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch: {left:?} vs {right:?}")
            }
            AlgebraError::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: expected {expected}, got {got}")
            }
            AlgebraError::DuplicateColumn(c) => write!(f, "duplicate column {c}"),
        }
    }
}

impl std::error::Error for AlgebraError {}

impl Relation {
    /// An empty relation with the given header.
    pub fn empty(columns: &[&str]) -> Relation {
        Relation {
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: BTreeSet::new(),
        }
    }

    /// Build from rows; every row must match the header arity.
    pub fn from_rows(columns: &[&str], rows: Vec<Vec<Datum>>) -> Result<Relation, AlgebraError> {
        let mut rel = Relation::empty(columns);
        for row in rows {
            rel.insert(row)?;
        }
        Ok(rel)
    }

    /// The edge relation `E(src, label, dst)` of a triple store.
    pub fn edge_relation(store: &TripleStore) -> Relation {
        let mut rows = BTreeSet::new();
        for t in store.iter() {
            rows.insert(vec![
                Datum::Node(t.src),
                Datum::Label(t.label.clone()),
                Datum::Node(t.dst),
            ]);
        }
        Relation {
            columns: vec!["src".into(), "label".into(), "dst".into()],
            rows,
        }
    }

    pub fn insert(&mut self, row: Vec<Datum>) -> Result<(), AlgebraError> {
        if row.len() != self.columns.len() {
            return Err(AlgebraError::ArityMismatch {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        self.rows.insert(row);
        Ok(())
    }

    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn rows(&self) -> impl Iterator<Item = &Vec<Datum>> {
        self.rows.iter()
    }

    pub fn contains(&self, row: &[Datum]) -> bool {
        self.rows.contains(row)
    }

    fn col_index(&self, name: &str) -> Result<usize, AlgebraError> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| AlgebraError::UnknownColumn(name.to_owned()))
    }

    /// σ — keep rows satisfying `pred` (receives the row and a
    /// column-lookup helper).
    pub fn select(&self, pred: impl Fn(&RowView<'_>) -> bool) -> Relation {
        let rows = self
            .rows
            .iter()
            .filter(|r| {
                pred(&RowView {
                    columns: &self.columns,
                    row: r,
                })
            })
            .cloned()
            .collect();
        Relation {
            columns: self.columns.clone(),
            rows,
        }
    }

    /// σ with column = constant.
    pub fn select_eq(&self, column: &str, value: &Datum) -> Result<Relation, AlgebraError> {
        let i = self.col_index(column)?;
        Ok(Relation {
            columns: self.columns.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| &r[i] == value)
                .cloned()
                .collect(),
        })
    }

    /// π — keep (and reorder to) the named columns.
    pub fn project(&self, keep: &[&str]) -> Result<Relation, AlgebraError> {
        let indices: Vec<usize> = keep
            .iter()
            .map(|c| self.col_index(c))
            .collect::<Result<_, _>>()?;
        let rows = self
            .rows
            .iter()
            .map(|r| indices.iter().map(|&i| r[i].clone()).collect())
            .collect();
        Ok(Relation {
            columns: keep.iter().map(|c| (*c).to_owned()).collect(),
            rows,
        })
    }

    /// ρ — rename a column.
    pub fn rename(&self, from: &str, to: &str) -> Result<Relation, AlgebraError> {
        let i = self.col_index(from)?;
        if self.columns.iter().any(|c| c == to) {
            return Err(AlgebraError::DuplicateColumn(to.to_owned()));
        }
        let mut columns = self.columns.clone();
        columns[i] = to.to_owned();
        Ok(Relation {
            columns,
            rows: self.rows.clone(),
        })
    }

    /// ∪ — set union; schemas must agree.
    pub fn union(&self, other: &Relation) -> Result<Relation, AlgebraError> {
        self.check_schema(other)?;
        let rows = self.rows.union(&other.rows).cloned().collect();
        Ok(Relation {
            columns: self.columns.clone(),
            rows,
        })
    }

    /// − — set difference; schemas must agree.
    pub fn difference(&self, other: &Relation) -> Result<Relation, AlgebraError> {
        self.check_schema(other)?;
        let rows = self.rows.difference(&other.rows).cloned().collect();
        Ok(Relation {
            columns: self.columns.clone(),
            rows,
        })
    }

    /// ∩ — set intersection; schemas must agree.
    pub fn intersect(&self, other: &Relation) -> Result<Relation, AlgebraError> {
        self.check_schema(other)?;
        let rows = self.rows.intersection(&other.rows).cloned().collect();
        Ok(Relation {
            columns: self.columns.clone(),
            rows,
        })
    }

    /// ⋈ — natural join on all shared column names (hash join on the
    /// shared-key projection).
    pub fn natural_join(&self, other: &Relation) -> Relation {
        let shared: Vec<String> = self
            .columns
            .iter()
            .filter(|c| other.columns.contains(c))
            .cloned()
            .collect();
        // `shared` was computed from both column lists, so the lookups
        // always succeed; filter rather than panic if that ever changes.
        let my_key: Vec<usize> = shared
            .iter()
            .filter_map(|c| self.col_index(c).ok())
            .collect();
        let their_key: Vec<usize> = shared
            .iter()
            .filter_map(|c| other.col_index(c).ok())
            .collect();
        let their_extra: Vec<usize> = (0..other.columns.len())
            .filter(|i| !shared.contains(&other.columns[*i]))
            .collect();

        // Build hash table on the smaller side.
        use std::collections::HashMap;
        let mut table: HashMap<Vec<&Datum>, Vec<&Vec<Datum>>> = HashMap::new();
        for row in &other.rows {
            let key: Vec<&Datum> = their_key.iter().map(|&i| &row[i]).collect();
            table.entry(key).or_default().push(row);
        }

        let mut columns = self.columns.clone();
        for &i in &their_extra {
            columns.push(other.columns[i].clone());
        }
        let mut rows = BTreeSet::new();
        for row in &self.rows {
            let key: Vec<&Datum> = my_key.iter().map(|&i| &row[i]).collect();
            if let Some(matches) = table.get(&key) {
                for m in matches {
                    let mut out = row.clone();
                    for &i in &their_extra {
                        out.push(m[i].clone());
                    }
                    rows.insert(out);
                }
            }
        }
        Relation { columns, rows }
    }

    /// × — cartesian product (disjoint column names required).
    pub fn product(&self, other: &Relation) -> Result<Relation, AlgebraError> {
        for c in &other.columns {
            if self.columns.contains(c) {
                return Err(AlgebraError::DuplicateColumn(c.clone()));
            }
        }
        Ok(self.natural_join(other))
    }

    fn check_schema(&self, other: &Relation) -> Result<(), AlgebraError> {
        if self.columns != other.columns {
            return Err(AlgebraError::SchemaMismatch {
                left: self.columns.clone(),
                right: other.columns.clone(),
            });
        }
        Ok(())
    }
}

/// Read-only view of one row with by-name access.
pub struct RowView<'a> {
    columns: &'a [String],
    row: &'a [Datum],
}

impl<'a> RowView<'a> {
    pub fn get(&self, column: &str) -> Option<&'a Datum> {
        let i = self.columns.iter().position(|c| c == column)?;
        self.row.get(i)
    }

    pub fn value(&self, column: &str) -> Option<&'a Value> {
        self.get(column).and_then(Datum::as_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_graph::literal::parse_graph;

    fn node(i: usize) -> Datum {
        Datum::Node(NodeId::from_index(i))
    }

    fn val(v: i64) -> Datum {
        Datum::Label(Label::int(v))
    }

    #[test]
    fn edge_relation_covers_store() {
        let g = parse_graph(r#"{a: {b: 1}}"#).unwrap();
        let s = TripleStore::from_graph(&g);
        let e = Relation::edge_relation(&s);
        assert_eq!(e.len(), s.len());
        assert_eq!(e.columns(), &["src", "label", "dst"]);
    }

    #[test]
    fn select_eq_and_closure_agree() {
        let r = Relation::from_rows(
            &["x", "y"],
            vec![vec![node(0), val(1)], vec![node(1), val(2)]],
        )
        .unwrap();
        let a = r.select_eq("y", &val(2)).unwrap();
        let b = r.select(|row| row.get("y") == Some(&val(2)));
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn select_unknown_column_errors() {
        let r = Relation::empty(&["x"]);
        assert!(matches!(
            r.select_eq("zzz", &val(0)),
            Err(AlgebraError::UnknownColumn(_))
        ));
    }

    #[test]
    fn project_reorders_and_dedupes() {
        let r = Relation::from_rows(
            &["x", "y"],
            vec![vec![node(0), val(1)], vec![node(1), val(1)]],
        )
        .unwrap();
        let p = r.project(&["y"]).unwrap();
        assert_eq!(p.len(), 1);
        let p2 = r.project(&["y", "x"]).unwrap();
        assert_eq!(p2.columns(), &["y", "x"]);
        assert_eq!(p2.len(), 2);
    }

    #[test]
    fn rename_then_join() {
        // E ⋈ ρ(E) computes paths of length two.
        let g = parse_graph("{a: {b: {c: {}}}}").unwrap();
        let s = TripleStore::from_graph(&g);
        let e = Relation::edge_relation(&s);
        let e2 = e
            .rename("src", "mid")
            .unwrap()
            .rename("dst", "end")
            .unwrap()
            .rename("label", "label2")
            .unwrap()
            .rename("mid", "dst")
            .unwrap();
        let paths2 = e.natural_join(&e2);
        // a.b and b.c
        assert_eq!(paths2.len(), 2);
        assert_eq!(paths2.columns().len(), 5);
    }

    #[test]
    fn rename_duplicate_errors() {
        let r = Relation::empty(&["x", "y"]);
        assert!(matches!(
            r.rename("x", "y"),
            Err(AlgebraError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn union_difference_intersect() {
        let a = Relation::from_rows(&["x"], vec![vec![val(1)], vec![val(2)]]).unwrap();
        let b = Relation::from_rows(&["x"], vec![vec![val(2)], vec![val(3)]]).unwrap();
        assert_eq!(a.union(&b).unwrap().len(), 3);
        assert_eq!(a.difference(&b).unwrap().len(), 1);
        assert_eq!(a.intersect(&b).unwrap().len(), 1);
        let c = Relation::empty(&["y"]);
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn natural_join_without_shared_columns_is_product() {
        let a = Relation::from_rows(&["x"], vec![vec![val(1)], vec![val(2)]]).unwrap();
        let b = Relation::from_rows(&["y"], vec![vec![val(10)], vec![val(20)]]).unwrap();
        let p = a.product(&b).unwrap();
        assert_eq!(p.len(), 4);
        assert!(a.product(&a).is_err());
    }

    #[test]
    fn join_is_commutative_up_to_column_order() {
        let a = Relation::from_rows(
            &["k", "x"],
            vec![vec![val(1), val(10)], vec![val(2), val(20)]],
        )
        .unwrap();
        let b = Relation::from_rows(
            &["k", "y"],
            vec![vec![val(1), val(100)], vec![val(3), val(300)]],
        )
        .unwrap();
        let ab = a.natural_join(&b);
        let ba = b.natural_join(&a);
        assert_eq!(ab.len(), ba.len());
        assert_eq!(ab.len(), 1);
        let ab_norm = ab.project(&["k", "x", "y"]).unwrap();
        let ba_norm = ba.project(&["k", "x", "y"]).unwrap();
        assert_eq!(ab_norm, ba_norm);
    }

    #[test]
    fn arity_checked_on_insert() {
        let mut r = Relation::empty(&["x", "y"]);
        assert!(r.insert(vec![val(1)]).is_err());
        assert!(r.insert(vec![val(1), val(2)]).is_ok());
    }

    #[test]
    fn rowview_value_accessor() {
        let r = Relation::from_rows(&["x"], vec![vec![val(5)]]).unwrap();
        let hit = r.select(|row| row.value("x").and_then(Value::as_int) == Some(5));
        assert_eq!(hit.len(), 1);
    }
}
