//! Direct path computations over the triple store: reachability and
//! transitive closure.
//!
//! These are the hand-written counterparts of the recursive datalog
//! queries; tests cross-check the two, and E6 benchmarks the gap.

use crate::store::TripleStore;
use ssd_graph::{Label, NodeId};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// Nodes reachable from `from` (inclusive) by forward traversal, optionally
/// restricted to edges whose label satisfies `label_ok`.
pub fn reachable_from(
    store: &TripleStore,
    from: NodeId,
    label_ok: impl Fn(&Label) -> bool,
) -> BTreeSet<NodeId> {
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();
    let mut queue = VecDeque::new();
    seen.insert(from);
    queue.push_back(from);
    while let Some(n) = queue.pop_front() {
        for t in store.with_src(n) {
            if label_ok(&t.label) && seen.insert(t.dst) {
                queue.push_back(t.dst);
            }
        }
    }
    seen
}

/// All-pairs transitive closure of the edge relation (label-blind):
/// `(x, y)` such that there is a nonempty path from `x` to `y`.
///
/// Computed as one BFS per source — `O(n · m)`, matching the best the
/// datalog route can do, but without the tuple-set overhead.
pub fn transitive_closure(store: &TripleStore) -> BTreeSet<(NodeId, NodeId)> {
    let mut sources: HashSet<NodeId> = HashSet::new();
    for t in store.iter() {
        sources.insert(t.src);
        sources.insert(t.dst);
    }
    sources.insert(store.root());
    let mut out = BTreeSet::new();
    for &s in &sources {
        // BFS from s, excluding the trivial empty path.
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(n) = queue.pop_front() {
            for t in store.with_src(n) {
                if seen.insert(t.dst) {
                    out.insert((s, t.dst));
                    queue.push_back(t.dst);
                }
            }
        }
    }
    out
}

/// Shortest path (in edge count) from `from` to `to`, as a list of
/// traversed triples, or `None` if unreachable.
pub fn shortest_path<'a>(
    store: &'a TripleStore,
    from: NodeId,
    to: NodeId,
) -> Option<Vec<&'a crate::triple::Triple>> {
    if from == to {
        return Some(Vec::new());
    }
    let mut prev: std::collections::HashMap<NodeId, &'a crate::triple::Triple> =
        std::collections::HashMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(n) = queue.pop_front() {
        for t in store.with_src(n) {
            if t.dst != from && !prev.contains_key(&t.dst) {
                prev.insert(t.dst, t);
                if t.dst == to {
                    // Reconstruct.
                    let mut path = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let t = prev[&cur];
                        path.push(t);
                        cur = t.src;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(t.dst);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Datum;
    use crate::datalog::{evaluate, parse_program};
    use ssd_graph::literal::parse_graph;

    #[test]
    fn reachability_with_label_filter() {
        let g = parse_graph("{a: {a: {}}, b: {c: {}}}").unwrap();
        let store = TripleStore::from_graph(&g);
        let a = Label::symbol(g.symbols(), "a");
        let only_a = reachable_from(&store, g.root(), |l| *l == a);
        assert_eq!(only_a.len(), 3);
        let all = reachable_from(&store, g.root(), |_| true);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn closure_matches_datalog() {
        let g = parse_graph("{a: @x = {f: {g: @x}}, b: {f: {h: 1}}}").unwrap();
        let store = TripleStore::from_graph(&g);
        let direct = transitive_closure(&store);
        let p = parse_program(
            "path(X, Y) :- edge(X, _L, Y).\n\
             path(X, Y) :- edge(X, _L, Z), path(Z, Y).",
            g.symbols(),
        )
        .unwrap();
        let eval = evaluate(&p, &store).unwrap();
        let from_datalog: BTreeSet<(NodeId, NodeId)> = eval
            .tuples("path")
            .map(|t| match (&t[0], &t[1]) {
                (Datum::Node(a), Datum::Node(b)) => (*a, *b),
                _ => panic!("path tuples are node pairs"),
            })
            .collect();
        assert_eq!(direct, from_datalog);
    }

    #[test]
    fn closure_on_cycle_includes_self_pairs() {
        let g = parse_graph("@x = {next: {next: @x}}").unwrap();
        let store = TripleStore::from_graph(&g);
        let tc = transitive_closure(&store);
        // Two nodes on a cycle: every ordered pair incl. self-loops = 4.
        assert_eq!(tc.len(), 4);
    }

    #[test]
    fn shortest_path_found_and_minimal() {
        // Two routes to the same node: direct (1 hop) and long (2 hops).
        let g = parse_graph("{short: @t = {leaf: 1}, long: {mid: @t}}").unwrap();
        let store = TripleStore::from_graph(&g);
        let t = g.successors_by_name(g.root(), "short")[0];
        let path = shortest_path(&store, g.root(), t).unwrap();
        assert_eq!(path.len(), 1);
    }

    #[test]
    fn shortest_path_unreachable_is_none() {
        let g = parse_graph("{a: 1}").unwrap();
        let mut g2 = g.clone();
        let island = g2.add_node();
        let store = TripleStore::from_graph(&g2);
        assert!(shortest_path(&store, g2.root(), island).is_none());
    }

    #[test]
    fn shortest_path_to_self_is_empty() {
        let g = parse_graph("{a: 1}").unwrap();
        let store = TripleStore::from_graph(&g);
        assert_eq!(shortest_path(&store, g.root(), g.root()).unwrap().len(), 0);
    }
}
