//! The triple store: the graph shredded into its edge relation, with
//! hash indexes.
//!
//! §3 lists four complications of the "graph as one big relation" approach;
//! this module addresses each:
//!
//! 1. *"Our labels are drawn from a heterogeneous collection of types, so it
//!    may be appropriate to use more than one relation."* — the store keeps
//!    one physical relation but exposes typed views
//!    ([`TripleStore::symbol_triples`], [`TripleStore::value_triples`]),
//!    and the by-label index buckets labels of every type.
//! 2. *"If information also is held at nodes, one needs additional
//!    relations to express this."* — our model holds no node information
//!    (node-labeled variants are converted first; see
//!    `ssd_graph::variants::node_labeled`).
//! 3. *"The node identifiers may only be used as temporary node labels"* —
//!    node ids appear in query results only as opaque [`NodeId`]s; the
//!    algebra layer ([`crate::algebra`]) can project them away.
//! 4. *"We are concerned with what is accessible from a given root by
//!    forward traversal"* — the store is built from the root-reachable
//!    fragment only, and records the root.

use crate::triple::Triple;
use ssd_graph::{Graph, Label, NodeId, SymbolId, Value};
use std::collections::HashMap;

/// An immutable, indexed snapshot of a graph's edge relation.
#[derive(Debug)]
pub struct TripleStore {
    triples: Vec<Triple>,
    root: NodeId,
    by_src: HashMap<NodeId, Vec<u32>>,
    by_dst: HashMap<NodeId, Vec<u32>>,
    by_label: HashMap<Label, Vec<u32>>,
    by_src_label: HashMap<(NodeId, Label), Vec<u32>>,
}

impl TripleStore {
    /// Shred the root-reachable fragment of `g` into a triple store.
    pub fn from_graph(g: &Graph) -> TripleStore {
        let mut triples = Vec::with_capacity(g.edge_count());
        for n in g.reachable() {
            for e in g.edges(n) {
                triples.push(Triple::new(n, e.label.clone(), e.to));
            }
        }
        Self::from_triples(triples, g.root())
    }

    /// Build a store from explicit triples (used by tests and by query
    /// decomposition, which re-shreds graph fragments per site).
    pub fn from_triples(triples: Vec<Triple>, root: NodeId) -> TripleStore {
        let mut by_src: HashMap<NodeId, Vec<u32>> = HashMap::new();
        let mut by_dst: HashMap<NodeId, Vec<u32>> = HashMap::new();
        let mut by_label: HashMap<Label, Vec<u32>> = HashMap::new();
        let mut by_src_label: HashMap<(NodeId, Label), Vec<u32>> = HashMap::new();
        for (i, t) in triples.iter().enumerate() {
            let i = i as u32;
            by_src.entry(t.src).or_default().push(i);
            by_dst.entry(t.dst).or_default().push(i);
            by_label.entry(t.label.clone()).or_default().push(i);
            by_src_label
                .entry((t.src, t.label.clone()))
                .or_default()
                .push(i);
        }
        TripleStore {
            triples,
            root,
            by_src,
            by_dst,
            by_label,
            by_src_label,
        }
    }

    pub fn root(&self) -> NodeId {
        self.root
    }

    pub fn len(&self) -> usize {
        self.triples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }

    fn resolve(&self, ids: Option<&Vec<u32>>) -> Vec<&Triple> {
        ids.map_or_else(Vec::new, |v| {
            v.iter().map(|&i| &self.triples[i as usize]).collect()
        })
    }

    /// Index scan: all triples with the given source.
    pub fn with_src(&self, src: NodeId) -> Vec<&Triple> {
        self.resolve(self.by_src.get(&src))
    }

    /// Index scan: all triples with the given destination (reverse
    /// traversal — note the query language restricts itself to forward
    /// traversal; this index exists for maintenance and statistics).
    pub fn with_dst(&self, dst: NodeId) -> Vec<&Triple> {
        self.resolve(self.by_dst.get(&dst))
    }

    /// Index scan: all triples with the given label.
    pub fn with_label(&self, label: &Label) -> Vec<&Triple> {
        self.resolve(self.by_label.get(label))
    }

    /// Index scan: all triples with the given source and label.
    pub fn with_src_label(&self, src: NodeId, label: &Label) -> Vec<&Triple> {
        self.resolve(self.by_src_label.get(&(src, label.clone())))
    }

    /// Typed view: symbol-labeled triples (the "schema-ish" relation).
    pub fn symbol_triples(&self) -> impl Iterator<Item = (&Triple, SymbolId)> {
        self.triples.iter().filter_map(|t| match &t.label {
            Label::Symbol(s) => Some((t, *s)),
            _ => None,
        })
    }

    /// Typed view: value-labeled triples (the "data" relation).
    pub fn value_triples(&self) -> impl Iterator<Item = (&Triple, &Value)> {
        self.triples.iter().filter_map(|t| match &t.label {
            Label::Value(v) => Some((t, v)),
            _ => None,
        })
    }

    /// Full scan with a predicate (the baseline the indexes beat).
    pub fn scan<'a>(&'a self, pred: impl Fn(&Triple) -> bool + 'a) -> Vec<&'a Triple> {
        self.triples.iter().filter(|t| pred(t)).collect()
    }

    /// Distinct labels appearing in the store.
    pub fn labels(&self) -> impl Iterator<Item = &Label> {
        self.by_label.keys()
    }

    /// Number of distinct source nodes.
    pub fn src_count(&self) -> usize {
        self.by_src.len()
    }

    /// The triples in SPO order — `(src, label, dst)`, sorted by source
    /// then destination, deduplicated. This is the columnar index's
    /// canonical build order (`ssd-index` sorts the same relation into
    /// its SPO permutation), exposed here so the two substrates can be
    /// cross-checked triple for triple.
    pub fn spo_sorted(&self) -> Vec<(NodeId, &Label, NodeId)> {
        let mut out: Vec<(NodeId, &Label, NodeId)> = self
            .triples
            .iter()
            .map(|t| (t.src, &t.label, t.dst))
            .collect();
        out.sort_by_cached_key(|(s, l, o)| (s.index(), format!("{l:?}"), o.index()));
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_graph::literal::parse_graph;

    fn store() -> (Graph, TripleStore) {
        let g = parse_graph(
            r#"{Movie: {Title: "C", Cast: {Actors: "Bogart", Actors: "Bacall"}},
                Movie: {Title: "S"}}"#,
        )
        .unwrap();
        let s = TripleStore::from_graph(&g);
        (g, s)
    }

    #[test]
    fn shreds_all_reachable_edges() {
        let (g, s) = store();
        assert_eq!(s.len(), g.edge_count());
        assert_eq!(s.root(), g.root());
    }

    #[test]
    fn unreachable_edges_excluded() {
        let mut g = parse_graph("{a: 1}").unwrap();
        let orphan = g.add_node();
        let leaf = g.add_node();
        g.add_sym_edge(orphan, "ghost", leaf);
        let s = TripleStore::from_graph(&g);
        assert_eq!(s.len(), 2); // a-edge + value edge
    }

    #[test]
    fn src_index() {
        let (g, s) = store();
        let from_root = s.with_src(g.root());
        assert_eq!(from_root.len(), 2);
        assert!(from_root.iter().all(|t| t.src == g.root()));
    }

    #[test]
    fn label_index() {
        let (g, s) = store();
        let movie = Label::symbol(g.symbols(), "Movie");
        assert_eq!(s.with_label(&movie).len(), 2);
        let actors = Label::symbol(g.symbols(), "Actors");
        assert_eq!(s.with_label(&actors).len(), 2);
        let nope = Label::symbol(g.symbols(), "Nope");
        assert!(s.with_label(&nope).is_empty());
    }

    #[test]
    fn src_label_index_matches_scan() {
        let (g, s) = store();
        let movie = Label::symbol(g.symbols(), "Movie");
        let via_index = s.with_src_label(g.root(), &movie);
        let via_scan = s.scan(|t| t.src == g.root() && t.label == movie);
        assert_eq!(via_index.len(), via_scan.len());
        assert_eq!(via_index.len(), 2);
    }

    #[test]
    fn dst_index_inverts_src() {
        let (g, s) = store();
        for t in s.iter() {
            assert!(s.with_dst(t.dst).contains(&t));
        }
        let _ = g;
    }

    #[test]
    fn typed_views_partition_the_store() {
        let (_, s) = store();
        let syms = s.symbol_triples().count();
        let vals = s.value_triples().count();
        assert_eq!(syms + vals, s.len());
        assert!(vals >= 4); // "C", "Bogart", "Bacall", "S"
    }

    #[test]
    fn labels_are_distinct() {
        let (_, s) = store();
        let labels: Vec<&Label> = s.labels().collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    fn empty_graph_empty_store() {
        let g = Graph::new();
        let s = TripleStore::from_graph(&g);
        assert!(s.is_empty());
        assert_eq!(s.src_count(), 0);
    }
}
