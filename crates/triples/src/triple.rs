//! The edge relation: `(node-id, label, node-id)` triples.
//!
//! §3, first computational strategy: "We can take the database as a large
//! relation of type (node-id, label, node-id) and consider the expressive
//! power of relational languages on this structure."

use ssd_graph::{Label, NodeId};
use std::fmt;

/// One edge of the data graph, viewed relationally.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Triple {
    pub src: NodeId,
    pub label: Label,
    pub dst: NodeId,
}

impl Triple {
    pub fn new(src: NodeId, label: Label, dst: NodeId) -> Self {
        Triple { src, label, dst }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {:?}, {})", self.src, self.label, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_compare() {
        let a = Triple::new(NodeId::from_index(0), Label::int(1), NodeId::from_index(2));
        let b = Triple::new(NodeId::from_index(0), Label::int(1), NodeId::from_index(2));
        assert_eq!(a, b);
        let c = Triple::new(NodeId::from_index(0), Label::int(2), NodeId::from_index(2));
        assert_ne!(a, c);
    }

    #[test]
    fn display_is_compact() {
        let t = Triple::new(NodeId::from_index(3), Label::int(7), NodeId::from_index(4));
        let s = t.to_string();
        assert!(s.contains("&3"));
        assert!(s.contains("&4"));
    }
}
