//! Stratified datalog evaluation: naive and semi-naive.
//!
//! The EDB is derived from a [`TripleStore`]: `edge(Src, Label, Dst)`,
//! `root(R)`, and `node(N)` (every node occurring in a triple or as root).
//! Programs are stratified on negation; within a stratum, recursion is
//! evaluated either naively (recompute everything each round) or
//! semi-naively (join only against the last round's delta). Experiment E6
//! measures the gap between the two, which §3's pointer to "graph datalog"
//! implicitly relies on being large.

use super::ast::{is_builtin, Atom, Program, Rule, Term};
use crate::algebra::Datum;
use crate::store::TripleStore;
use ssd_guard::{Exhausted, Guard};
use ssd_trace::{Phase, Tracer};
use std::collections::{BTreeSet, HashMap};

/// Fault-injection seam: hit once per fixpoint round.
pub const FP_DATALOG_ROUND: &str = "datalog.round";

/// Approximate bytes one derived tuple costs in the fact database.
/// Public so the static cost analysis charges the same unit it measures.
pub const TUPLE_COST: u64 = 96;

/// The fact database: predicate name → set of tuples.
pub type Facts = HashMap<String, BTreeSet<Vec<Datum>>>;

/// Errors from evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    Unsafe(String),
    NotStratifiable(String),
    ArityMismatch {
        pred: String,
        expected: usize,
        got: usize,
    },
    /// A resource budget (fuel, memory, deadline, cancellation, fault
    /// injection) tripped mid-fixpoint.
    Exhausted(Exhausted),
}

impl std::fmt::Display for DatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatalogError::Unsafe(m) => write!(f, "unsafe program: {m}"),
            DatalogError::NotStratifiable(p) => {
                write!(
                    f,
                    "program is not stratifiable (negative cycle through {p})"
                )
            }
            DatalogError::ArityMismatch {
                pred,
                expected,
                got,
            } => write!(
                f,
                "predicate {pred} used with arity {got}, expected {expected}"
            ),
            DatalogError::Exhausted(e) => write!(f, "{}", e.headline()),
        }
    }
}

impl std::error::Error for DatalogError {}

/// Result of evaluating a program: all facts plus iteration statistics.
#[derive(Debug)]
pub struct Evaluation {
    pub facts: Facts,
    /// Total fixpoint iterations across strata.
    pub iterations: usize,
    /// Total number of rule-body join evaluations performed (work measure
    /// for the naive vs semi-naive comparison).
    pub rule_evaluations: usize,
    /// Set when a guard in partial mode stopped evaluation early: the
    /// headline of the exhaustion cause. Facts hold everything derived up
    /// to that point (a sound under-approximation of the fixpoint).
    pub truncated: Option<String>,
}

impl Evaluation {
    /// Tuples derived for `pred` (empty slice view if none).
    pub fn tuples(&self, pred: &str) -> impl Iterator<Item = &Vec<Datum>> {
        self.facts.get(pred).into_iter().flatten()
    }

    pub fn count(&self, pred: &str) -> usize {
        self.facts.get(pred).map_or(0, BTreeSet::len)
    }
}

/// Build the EDB facts from a triple store.
pub fn edb_from_store(store: &TripleStore) -> Facts {
    let mut facts: Facts = HashMap::new();
    let mut edges = BTreeSet::new();
    let mut nodes = BTreeSet::new();
    for t in store.iter() {
        edges.insert(vec![
            Datum::Node(t.src),
            Datum::Label(t.label.clone()),
            Datum::Node(t.dst),
        ]);
        nodes.insert(vec![Datum::Node(t.src)]);
        nodes.insert(vec![Datum::Node(t.dst)]);
    }
    nodes.insert(vec![Datum::Node(store.root())]);
    facts.insert("edge".to_owned(), edges);
    facts.insert("node".to_owned(), nodes);
    facts.insert(
        "root".to_owned(),
        std::iter::once(vec![Datum::Node(store.root())]).collect(),
    );
    facts
}

/// Evaluate `program` over the EDB of `store`, semi-naively.
pub fn evaluate(program: &Program, store: &TripleStore) -> Result<Evaluation, DatalogError> {
    run(
        program,
        edb_from_store(store),
        Mode::SemiNaive,
        &Guard::unlimited(),
        None,
    )
}

/// Evaluate naively (for the E6 comparison).
// lint: allow(guard) — naive reference evaluator, kept only as the semi-naive oracle; production paths go through `evaluate_with`
pub fn evaluate_naive(program: &Program, store: &TripleStore) -> Result<Evaluation, DatalogError> {
    run(
        program,
        edb_from_store(store),
        Mode::Naive,
        &Guard::unlimited(),
        None,
    )
}

/// Evaluate semi-naively under a resource [`Guard`]. Fuel is ticked per
/// fixpoint round and per join candidate; memory is accounted per derived
/// tuple; deadline and cancellation are polled at every round boundary.
/// In partial mode exhaustion yields the facts derived so far with
/// [`Evaluation::truncated`] set; otherwise [`DatalogError::Exhausted`].
pub fn evaluate_with(
    program: &Program,
    store: &TripleStore,
    guard: &Guard,
) -> Result<Evaluation, DatalogError> {
    run(program, edb_from_store(store), Mode::SemiNaive, guard, None)
}

/// As [`evaluate_with`], with structured tracing: one [`Phase::Datalog`]
/// span for the whole fixpoint, a child span per round (stratum, round
/// number, delta size, rule evaluations, guard fuel/memory deltas), and a
/// [`Phase::Guard`] instant when the guard stops evaluation.
pub fn evaluate_traced(
    program: &Program,
    store: &TripleStore,
    guard: &Guard,
    tracer: Option<&Tracer>,
) -> Result<Evaluation, DatalogError> {
    let res = run(
        program,
        edb_from_store(store),
        Mode::SemiNaive,
        guard,
        tracer,
    );
    if let Err(e) = &res {
        ssd_trace::instant(
            tracer,
            Phase::Guard,
            "exhausted",
            vec![("cause", e.to_string().into())],
        );
    }
    res
}

/// Evaluate over explicit base facts (no store).
pub fn evaluate_with_facts(
    program: &Program,
    base: Facts,
    semi_naive: bool,
) -> Result<Evaluation, DatalogError> {
    evaluate_with_facts_guarded(program, base, semi_naive, &Guard::unlimited())
}

/// As [`evaluate_with_facts`], under a resource [`Guard`].
pub fn evaluate_with_facts_guarded(
    program: &Program,
    base: Facts,
    semi_naive: bool,
    guard: &Guard,
) -> Result<Evaluation, DatalogError> {
    run(
        program,
        base,
        if semi_naive {
            Mode::SemiNaive
        } else {
            Mode::Naive
        },
        guard,
        None,
    )
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Naive,
    SemiNaive,
}

/// Assign each IDB predicate a stratum such that positive dependencies stay
/// within or below, and negative dependencies come from strictly below.
/// Public so the static analyzer can certify stratifiability without
/// running the program.
pub fn stratify(program: &Program) -> Result<Vec<Vec<&Rule>>, DatalogError> {
    let idb: Vec<&str> = program.idb_predicates();
    let mut stratum: HashMap<&str, usize> = idb.iter().map(|p| (*p, 0)).collect();
    let max_strata = idb.len() + 1;
    // Fixpoint: raise strata until stable (Ullman's algorithm).
    let mut changed = true;
    let mut rounds = 0usize;
    while changed {
        changed = false;
        rounds += 1;
        if rounds > max_strata * program.rules.len().max(1) + 1 {
            // A stratum exceeded the number of predicates: negative cycle.
            let culprit = idb.first().copied().unwrap_or("?").to_owned();
            return Err(DatalogError::NotStratifiable(culprit));
        }
        for rule in &program.rules {
            let head_pred = rule.head.pred.as_str();
            let head_stratum = stratum[head_pred];
            for lit in &rule.body {
                let p = lit.atom.pred.as_str();
                let Some(&body_stratum) = stratum.get(p) else {
                    continue; // EDB predicate
                };
                let required = if lit.positive {
                    body_stratum
                } else {
                    body_stratum + 1
                };
                if required > head_stratum {
                    if required >= max_strata {
                        return Err(DatalogError::NotStratifiable(head_pred.to_owned()));
                    }
                    stratum.insert(head_pred, required);
                    changed = true;
                }
            }
        }
    }
    let top = stratum.values().copied().max().unwrap_or(0);
    let mut strata: Vec<Vec<&Rule>> = vec![Vec::new(); top + 1];
    for rule in &program.rules {
        strata[stratum[rule.head.pred.as_str()]].push(rule);
    }
    Ok(strata)
}

fn run(
    program: &Program,
    mut facts: Facts,
    mode: Mode,
    guard: &Guard,
    tracer: Option<&Tracer>,
) -> Result<Evaluation, DatalogError> {
    let mut dsp = ssd_trace::span(tracer, Phase::Datalog, "datalog", Some(guard));
    let exh = DatalogError::Exhausted;
    program.check_safety().map_err(DatalogError::Unsafe)?;
    check_arities(program, &facts)?;
    let strata = stratify(program)?;
    let mut iterations = 0usize;
    let mut rule_evaluations = 0usize;
    'strata: for (si, stratum_rules) in strata.iter().enumerate() {
        if stratum_rules.is_empty() {
            continue;
        }
        let recursive_preds: BTreeSet<&str> =
            stratum_rules.iter().map(|r| r.head.pred.as_str()).collect();
        // Initialise deltas with any facts already present for these preds
        // (usually empty).
        let mut delta: Facts = HashMap::new();
        for p in &recursive_preds {
            let existing = facts.get(*p).cloned().unwrap_or_default();
            delta.insert((*p).to_owned(), existing);
        }
        // First full round (naive step) to seed.
        let mut round = 0usize;
        loop {
            iterations += 1;
            let mut round_sp = ssd_trace::span(tracer, Phase::Datalog, "round", Some(guard));
            let rule_evals_before = rule_evaluations;
            // Round boundary: observe deadline/cancellation promptly even
            // when single rounds burn few ticks.
            guard.poll().map_err(exh)?;
            if !(guard.tick(1).map_err(exh)? && guard.fail_point(FP_DATALOG_ROUND).map_err(exh)?) {
                break 'strata;
            }
            let mut new_delta: Facts = HashMap::new();
            for rule in stratum_rules {
                let derived = match mode {
                    Mode::Naive => {
                        rule_evaluations += 1;
                        eval_rule(rule, &facts, None, guard).map_err(exh)?
                    }
                    Mode::SemiNaive => {
                        // One evaluation per occurrence of a recursive
                        // predicate in the body, with that occurrence
                        // restricted to the delta. Rules with no recursive
                        // body literal run only on the first iteration.
                        let rec_positions: Vec<usize> = rule
                            .body
                            .iter()
                            .enumerate()
                            .filter(|(_, l)| {
                                l.positive && recursive_preds.contains(l.atom.pred.as_str())
                            })
                            .map(|(i, _)| i)
                            .collect();
                        if rec_positions.is_empty() {
                            // Non-recursive rules fire once, on the seed round.
                            if round == 0 {
                                rule_evaluations += 1;
                                eval_rule(rule, &facts, None, guard).map_err(exh)?
                            } else {
                                BTreeSet::new()
                            }
                        } else if round == 0 {
                            // Seed round: recursive literals have no prior
                            // delta; run the rule in full once (it typically
                            // finds nothing until base rules populate facts).
                            rule_evaluations += 1;
                            eval_rule(rule, &facts, None, guard).map_err(exh)?
                        } else {
                            let mut out = BTreeSet::new();
                            for &pos in &rec_positions {
                                rule_evaluations += 1;
                                out.extend(
                                    eval_rule(rule, &facts, Some((pos, &delta)), guard)
                                        .map_err(exh)?,
                                );
                            }
                            out
                        }
                    }
                };
                'derive: for tuple in derived {
                    let known = facts
                        .get(rule.head.pred.as_str())
                        .is_some_and(|s| s.contains(&tuple));
                    if !known {
                        if !guard.alloc(TUPLE_COST).map_err(exh)? {
                            break 'derive;
                        }
                        new_delta
                            .entry(rule.head.pred.clone())
                            .or_default()
                            .insert(tuple);
                    }
                }
            }
            // Merge new facts.
            let mut grew = false;
            for (pred, tuples) in &new_delta {
                let entry = facts.entry(pred.clone()).or_default();
                for t in tuples {
                    if entry.insert(t.clone()) {
                        grew = true;
                    }
                }
            }
            if round_sp.enabled() {
                let delta_tuples: usize = new_delta.values().map(BTreeSet::len).sum();
                round_sp.field("stratum", si);
                round_sp.field("round", round);
                round_sp.field("delta", delta_tuples);
                round_sp.field("rule_evals", rule_evaluations - rule_evals_before);
            }
            round_sp.close();
            if mode == Mode::SemiNaive {
                delta = new_delta;
            }
            round += 1;
            if !grew {
                break;
            }
        }
    }
    // Ensure all head predicates exist in the output even if empty — also
    // after a partial-mode stop, so truncated results stay well-formed.
    for stratum_rules in &strata {
        for rule in stratum_rules {
            facts.entry(rule.head.pred.clone()).or_default();
        }
    }
    let truncated = guard.truncation().map(|e| e.headline());
    if let (Some(t), Some(why)) = (tracer, &truncated) {
        t.instant(
            Phase::Guard,
            "truncated",
            vec![("cause", why.as_str().into())],
        );
    }
    if dsp.enabled() {
        dsp.field("iterations", iterations);
        dsp.field("rule_evals", rule_evaluations);
        dsp.field("facts", facts.values().map(BTreeSet::len).sum::<usize>());
    }
    dsp.close();
    Ok(Evaluation {
        facts,
        iterations,
        rule_evaluations,
        truncated,
    })
}

fn check_arities(program: &Program, facts: &Facts) -> Result<(), DatalogError> {
    let mut arity: HashMap<String, usize> = HashMap::new();
    for (p, tuples) in facts {
        if let Some(t) = tuples.iter().next() {
            arity.insert(p.clone(), t.len());
        }
    }
    let check =
        |arity: &mut HashMap<String, usize>, atom: &Atom| match arity.get(atom.pred.as_str()) {
            Some(&a) if a != atom.terms.len() => Err(DatalogError::ArityMismatch {
                pred: atom.pred.clone(),
                expected: a,
                got: atom.terms.len(),
            }),
            Some(_) => Ok(()),
            None => {
                arity.insert(atom.pred.clone(), atom.terms.len());
                Ok(())
            }
        };
    for rule in &program.rules {
        check(&mut arity, &rule.head)?;
        for lit in &rule.body {
            check(&mut arity, &lit.atom)?;
        }
    }
    Ok(())
}

/// Evaluate one rule body against `facts`, optionally restricting the
/// positive literal at `delta_at.0` to the delta relation. Returns derived
/// head tuples. Fuel is ticked per join candidate considered; in partial
/// mode exhaustion returns the tuples derivable from the bindings built
/// so far.
fn eval_rule(
    rule: &Rule,
    facts: &Facts,
    delta_at: Option<(usize, &Facts)>,
    guard: &Guard,
) -> Result<BTreeSet<Vec<Datum>>, Exhausted> {
    type Binding = HashMap<String, Datum>;
    let empty = BTreeSet::new();
    let mut bindings: Vec<Binding> = vec![HashMap::new()];
    'body: for (i, lit) in rule.body.iter().enumerate() {
        if is_builtin(lit.atom.pred.as_str()) {
            // Builtins filter the current bindings; safety guarantees all
            // their variables are bound.
            bindings.retain(|b| {
                let sat = eval_builtin(&lit.atom, b);
                if lit.positive {
                    sat
                } else {
                    !sat
                }
            });
            if bindings.is_empty() {
                return Ok(BTreeSet::new());
            }
            continue;
        }
        let source: &BTreeSet<Vec<Datum>> = match delta_at {
            Some((pos, delta)) if pos == i => delta.get(lit.atom.pred.as_str()).unwrap_or(&empty),
            _ => facts.get(lit.atom.pred.as_str()).unwrap_or(&empty),
        };
        if lit.positive {
            let mut next = Vec::new();
            for b in &bindings {
                for tuple in candidates(source, &lit.atom, b) {
                    if !guard.tick(1)? {
                        bindings = next;
                        break 'body;
                    }
                    if let Some(extended) = try_match(&lit.atom, tuple, b) {
                        next.push(extended);
                    }
                }
            }
            bindings = next;
        } else {
            // Negation: all variables already bound (safety-checked), so
            // just filter.
            let mut kept = Vec::new();
            for b in bindings {
                if !guard.tick(1)? {
                    bindings = kept;
                    break 'body;
                }
                if !candidates(source, &lit.atom, &b)
                    .any(|tuple| try_match(&lit.atom, tuple, &b).is_some())
                {
                    kept.push(b);
                }
            }
            bindings = kept;
        }
        if bindings.is_empty() {
            return Ok(BTreeSet::new());
        }
    }
    let mut out = BTreeSet::new();
    'heads: for b in bindings {
        let mut tuple = Vec::with_capacity(rule.head.terms.len());
        for t in &rule.head.terms {
            match t {
                // The safety check guarantees head vars are bound; if that
                // invariant ever breaks, drop the binding rather than panic.
                Term::Var(v) => match b.get(v) {
                    Some(d) => tuple.push(d.clone()),
                    None => continue 'heads,
                },
                Term::Const(d) => tuple.push(d.clone()),
            }
        }
        out.insert(tuple);
    }
    Ok(out)
}

/// Evaluate a builtin comparison over a complete binding. Unbound
/// variables (impossible after the safety check) make the builtin
/// unsatisfied rather than panicking.
fn eval_builtin(atom: &Atom, binding: &HashMap<String, Datum>) -> bool {
    let resolve = |t: &Term| -> Option<Datum> {
        match t {
            Term::Const(d) => Some(d.clone()),
            Term::Var(v) => binding.get(v).cloned(),
        }
    };
    let (Some(a), Some(b)) = (
        atom.terms.first().and_then(&resolve),
        atom.terms.get(1).and_then(&resolve),
    ) else {
        return false;
    };
    use crate::algebra::Datum::*;
    match atom.pred.as_str() {
        "eq" => a == b,
        "neq" => a != b,
        op => match (&a, &b) {
            // Ordered comparisons apply to values only (node ids and
            // symbols have no meaningful order for queries).
            (Label(la), Label(lb)) => match (la.as_value(), lb.as_value()) {
                (Some(va), Some(vb)) => {
                    let ord = va.query_cmp(vb);
                    match op {
                        "lt" => ord == std::cmp::Ordering::Less,
                        "le" => ord != std::cmp::Ordering::Greater,
                        "gt" => ord == std::cmp::Ordering::Greater,
                        "ge" => ord != std::cmp::Ordering::Less,
                        // is_builtin covers exactly the six above; treat
                        // anything else as unsatisfied.
                        _ => false,
                    }
                }
                _ => false,
            },
            _ => false,
        },
    }
}

/// The tuples of `source` worth offering to [`try_match`] for `atom`
/// under `binding`: the relation is a lexicographically sorted set, so
/// any leading run of terms already resolved (constants or bound
/// variables) narrows the scan to the matching range instead of the
/// whole relation. For `edge(Y, 'References', Z)` with `Y` bound this
/// is the out-adjacency of one node — the difference between linear
/// and quadratic fixpoints on large graphs. Tuples outside the range
/// can never match, so candidates (and the fuel ticked per candidate)
/// shrink without changing any result.
fn candidates<'s>(
    source: &'s BTreeSet<Vec<Datum>>,
    atom: &Atom,
    binding: &HashMap<String, Datum>,
) -> Box<dyn Iterator<Item = &'s Vec<Datum>> + 's> {
    let mut prefix: Vec<Datum> = Vec::new();
    for term in &atom.terms {
        match term {
            Term::Const(d) => prefix.push(d.clone()),
            Term::Var(v) => match binding.get(v) {
                Some(d) => prefix.push(d.clone()),
                None => break,
            },
        }
    }
    if prefix.is_empty() {
        Box::new(source.iter())
    } else {
        Box::new(
            source
                .range(prefix.clone()..)
                .take_while(move |t| t.starts_with(&prefix)),
        )
    }
}

fn try_match(
    atom: &Atom,
    tuple: &[Datum],
    binding: &HashMap<String, Datum>,
) -> Option<HashMap<String, Datum>> {
    if atom.terms.len() != tuple.len() {
        return None;
    }
    let mut out = binding.clone();
    for (term, datum) in atom.terms.iter().zip(tuple) {
        match term {
            Term::Const(c) => {
                if c != datum {
                    return None;
                }
            }
            Term::Var(v) => match out.get(v) {
                Some(bound) if bound != datum => return None,
                Some(_) => {}
                None => {
                    out.insert(v.clone(), datum.clone());
                }
            },
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datalog::ast::parse_program;
    use ssd_graph::literal::parse_graph;
    use ssd_graph::Graph;

    fn chain(n: usize) -> Graph {
        // root -a-> n1 -a-> n2 ... linear chain of n edges.
        let mut g = Graph::new();
        let mut cur = g.root();
        for _ in 0..n {
            let next = g.add_node();
            g.add_sym_edge(cur, "a", next);
            cur = next;
        }
        g
    }

    fn tc_program(g: &Graph) -> Program {
        parse_program(
            "path(X, Y) :- edge(X, _L, Y).\n\
             path(X, Y) :- edge(X, _L, Z), path(Z, Y).",
            g.symbols(),
        )
        .unwrap()
    }

    #[test]
    fn transitive_closure_on_chain() {
        let g = chain(5);
        let store = TripleStore::from_graph(&g);
        let eval = evaluate(&tc_program(&g), &store).unwrap();
        // n*(n+1)/2 pairs for a 5-edge chain: 15.
        assert_eq!(eval.count("path"), 15);
    }

    #[test]
    fn naive_and_semi_naive_agree() {
        let g = parse_graph("{a: @x = {f: {g: @x}}, b: {f: {h: 1}}}").unwrap();
        let store = TripleStore::from_graph(&g);
        let p = tc_program(&g);
        let semi = evaluate(&p, &store).unwrap();
        let naive = evaluate_naive(&p, &store).unwrap();
        assert_eq!(semi.facts.get("path"), naive.facts.get("path"));
        assert!(semi.count("path") > 0);
    }

    #[test]
    fn semi_naive_does_less_work_on_long_chains() {
        let g = chain(30);
        let store = TripleStore::from_graph(&g);
        let p = tc_program(&g);
        let semi = evaluate(&p, &store).unwrap();
        let naive = evaluate_naive(&p, &store).unwrap();
        assert_eq!(semi.count("path"), naive.count("path"));
        // Work measure: naive re-derives everything each round.
        // Count derived-tuple work via rule_evaluations * average relation
        // size is implicit; here we just require semi-naive to not exceed
        // naive in iterations and to have produced the same result.
        assert!(semi.iterations <= naive.iterations + 1);
    }

    #[test]
    fn cycle_reachability_terminates() {
        let g = parse_graph("@x = {next: @x}").unwrap();
        let store = TripleStore::from_graph(&g);
        let eval = evaluate(&tc_program(&g), &store).unwrap();
        assert_eq!(eval.count("path"), 1); // (root, root)
    }

    #[test]
    fn label_constants_filter_edges() {
        let g = parse_graph("{a: {x: 1}, b: {x: 2}}").unwrap();
        let p = parse_program("hit(Y) :- edge(_X, a, Y).", g.symbols()).unwrap();
        let store = TripleStore::from_graph(&g);
        let eval = evaluate(&p, &store).unwrap();
        assert_eq!(eval.count("hit"), 1);
    }

    #[test]
    fn stratified_negation() {
        // Nodes not reachable from the root via `a` edges.
        let g = parse_graph("{a: {a: {}}, b: {c: {}}}").unwrap();
        let p = parse_program(
            "reach(X) :- root(X).\n\
             reach(Y) :- reach(X), edge(X, a, Y).\n\
             unreached(X) :- node(X), not reach(X).",
            g.symbols(),
        )
        .unwrap();
        let store = TripleStore::from_graph(&g);
        let eval = evaluate(&p, &store).unwrap();
        // Reachable via a-edges: root, its a-child, grandchild = 3 nodes.
        assert_eq!(eval.count("reach"), 3);
        assert_eq!(
            eval.count("unreached") + eval.count("reach"),
            eval.count("node")
        );
        assert!(eval.count("unreached") > 0);
    }

    #[test]
    fn non_stratifiable_rejected() {
        let g = Graph::new();
        let p = parse_program(
            "p(X) :- node(X), not q(X).\n\
             q(X) :- node(X), not p(X).",
            g.symbols(),
        )
        .unwrap();
        let store = TripleStore::from_graph(&g);
        assert!(matches!(
            evaluate(&p, &store),
            Err(DatalogError::NotStratifiable(_))
        ));
    }

    #[test]
    fn unsafe_program_rejected() {
        let g = Graph::new();
        let p = parse_program("q(X, Y) :- node(X).", g.symbols()).unwrap();
        let store = TripleStore::from_graph(&g);
        assert!(matches!(evaluate(&p, &store), Err(DatalogError::Unsafe(_))));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let g = chain(1);
        let p = parse_program("q(X) :- edge(X, _Y).", g.symbols()).unwrap();
        let store = TripleStore::from_graph(&g);
        assert!(matches!(
            evaluate(&p, &store),
            Err(DatalogError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn facts_in_program_text() {
        let g = Graph::new();
        let p = parse_program(
            "likes(\"ann\", \"bob\").\nlikes(\"bob\", \"cy\").\n\
             knows(X, Y) :- likes(X, Y).\n\
             knows(X, Y) :- likes(X, Z), knows(Z, Y).",
            g.symbols(),
        )
        .unwrap();
        let store = TripleStore::from_graph(&g);
        let eval = evaluate(&p, &store).unwrap();
        assert_eq!(eval.count("knows"), 3);
    }

    #[test]
    fn same_generation_query() {
        // A small binary tree; same-generation is the classic recursive
        // non-transitive-closure query.
        let g = parse_graph("{l: {l: {}, r: {}}, r: {l: {}, r: {}}}").unwrap();
        let p = parse_program(
            "sg(X, X) :- node(X).\n\
             sg(X, Y) :- edge(P, _L1, X), edge(Q, _L2, Y), sg(P, Q).",
            g.symbols(),
        )
        .unwrap();
        let store = TripleStore::from_graph(&g);
        let eval = evaluate(&p, &store).unwrap();
        // Generations: 1 root, 2 mid, 4 leaves → 1 + 4 + 16 = 21 pairs.
        assert_eq!(eval.count("sg"), 21);
    }

    #[test]
    fn idb_predicates_present_even_when_empty() {
        let g = Graph::new();
        let p = parse_program("q(X) :- edge(X, _L, _Y).", g.symbols()).unwrap();
        let store = TripleStore::from_graph(&g);
        let eval = evaluate(&p, &store).unwrap();
        assert_eq!(eval.count("q"), 0);
        assert!(eval.facts.contains_key("q"));
    }
}

#[cfg(test)]
mod builtin_tests {
    use super::*;
    use crate::datalog::ast::parse_program;
    use ssd_graph::literal::parse_graph;

    #[test]
    fn lt_filters_values() {
        let g = parse_graph("{m: {Year: 1942}, m: {Year: 1972}, m: {Year: 1977}}").unwrap();
        let p = parse_program(
            "old(M) :- edge(_R, m, M), edge(M, 'Year', Y), edge(Y, V, _L), lt(V, 1970).",
            g.symbols(),
        )
        .unwrap();
        let store = crate::store::TripleStore::from_graph(&g);
        let eval = evaluate(&p, &store).unwrap();
        assert_eq!(eval.count("old"), 1);
    }

    #[test]
    fn neq_works_on_nodes() {
        // Pairs of distinct movie nodes.
        let g = parse_graph("{m: {}, m: {}}").unwrap();
        let p = parse_program(
            "pair(X, Y) :- edge(_R, m, X), edge(_S, m, Y), neq(X, Y).",
            g.symbols(),
        )
        .unwrap();
        let store = crate::store::TripleStore::from_graph(&g);
        let eval = evaluate(&p, &store).unwrap();
        assert_eq!(eval.count("pair"), 2); // (a,b) and (b,a)
    }

    #[test]
    fn ge_with_mixed_numeric_kinds() {
        let g = parse_graph("{x: 2, y: 2.5}").unwrap();
        let p = parse_program("big(V) :- edge(_N, V, _L), ge(V, 2.5).", g.symbols()).unwrap();
        let store = crate::store::TripleStore::from_graph(&g);
        let eval = evaluate(&p, &store).unwrap();
        assert_eq!(eval.count("big"), 1);
    }

    #[test]
    fn unbound_builtin_var_rejected() {
        let g = parse_graph("{}").unwrap();
        let p = parse_program("q(X) :- node(X), lt(Y, 5).", g.symbols()).unwrap();
        let store = crate::store::TripleStore::from_graph(&g);
        assert!(matches!(evaluate(&p, &store), Err(DatalogError::Unsafe(_))));
    }

    #[test]
    fn builtin_head_rejected() {
        let g = parse_graph("{}").unwrap();
        let p = parse_program("lt(X, X) :- node(X).", g.symbols()).unwrap();
        let store = crate::store::TripleStore::from_graph(&g);
        assert!(matches!(evaluate(&p, &store), Err(DatalogError::Unsafe(_))));
    }

    #[test]
    fn builtin_wrong_arity_rejected() {
        let g = parse_graph("{}").unwrap();
        let p = parse_program("q(X) :- node(X), lt(X).", g.symbols()).unwrap();
        let store = crate::store::TripleStore::from_graph(&g);
        assert!(matches!(evaluate(&p, &store), Err(DatalogError::Unsafe(_))));
    }

    #[test]
    fn negated_builtin() {
        let g = parse_graph("{x: 1, y: 3}").unwrap();
        // ge(V, 0) first restricts V to numeric labels (symbols never
        // satisfy ordered builtins), then the negated gt filters.
        let p = parse_program(
            "small(V) :- edge(_N, V, _L), ge(V, 0), not gt(V, 2).",
            g.symbols(),
        )
        .unwrap();
        let store = crate::store::TripleStore::from_graph(&g);
        let eval = evaluate(&p, &store).unwrap();
        assert_eq!(eval.count("small"), 1);
    }

    #[test]
    fn recursive_rule_with_builtin_bound() {
        // Bounded reachability: count edges with int labels below a cap —
        // builtins inside recursion still converge.
        let g = parse_graph("@x = {1: {2: {3: @x}}}").unwrap();
        let p = parse_program(
            "r(X) :- root(X).\n\
             r(Y) :- r(X), edge(X, L, Y), lt(L, 3).",
            g.symbols(),
        )
        .unwrap();
        let store = crate::store::TripleStore::from_graph(&g);
        let eval = evaluate(&p, &store).unwrap();
        assert_eq!(eval.count("r"), 3); // root, after 1, after 2 (not past 3)
    }
}
