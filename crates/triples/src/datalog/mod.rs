//! "Graph datalog" — recursive queries over the edge relation.
//!
//! §3: "Some forms of unbounded search will require recursive queries,
//! i.e., a 'graph datalog', and such languages are proposed in \[26, 16\] for
//! the web and for hypertext."
//!
//! * [`ast`] — rules, atoms, terms, plus a Prolog-ish text syntax.
//! * [`eval`] — stratified evaluation, both naive and semi-naive (the
//!   semi-naive/naive gap is experiment E6).
//!
//! The EDB is the triple store's edge relation, exposed as
//! `edge(Src, Label, Dst)` together with `root(R)`.

pub mod ast;
pub mod eval;

pub use ast::{
    is_builtin, parse_program, parse_program_spanned, Atom, Literal, Program, ProgramSpans, Rule,
    RuleSpans, Term,
};
pub use eval::{
    edb_from_store, evaluate, evaluate_naive, evaluate_traced, evaluate_with, evaluate_with_facts,
    evaluate_with_facts_guarded, stratify, DatalogError, Evaluation, Facts, FP_DATALOG_ROUND,
};
