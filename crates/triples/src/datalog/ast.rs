//! Datalog abstract syntax and a Prolog-style concrete syntax.
//!
//! ```text
//! path(X, Y) :- edge(X, _L, Y).
//! path(X, Y) :- edge(X, _L, Z), path(Z, Y).
//! unreached(X) :- node(X), not reach(X).
//! ```
//!
//! Terms: variables start with an uppercase letter or `_`; bare lowercase
//! identifiers are *symbol* constants (edge labels); single-quoted
//! identifiers (`'Title'`) are symbol constants regardless of case;
//! double-quoted strings and numbers are value constants; `&N` is a
//! node-id constant.

use crate::algebra::Datum;
use ssd_diag::Span;
use ssd_graph::{Label, NodeId, SymbolTable, Value};
use std::fmt;

/// A term in an atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    Var(String),
    Const(Datum),
}

impl Term {
    pub fn var(name: &str) -> Term {
        Term::Var(name.to_owned())
    }

    pub fn node(n: NodeId) -> Term {
        Term::Const(Datum::Node(n))
    }

    pub fn symbol(symbols: &SymbolTable, name: &str) -> Term {
        Term::Const(Datum::Label(Label::symbol(symbols, name)))
    }

    pub fn value(v: impl Into<Value>) -> Term {
        Term::Const(Datum::Label(Label::Value(v.into())))
    }

    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

/// A predicate applied to terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    pub pred: String,
    pub terms: Vec<Term>,
}

impl Atom {
    pub fn new(pred: &str, terms: Vec<Term>) -> Atom {
        Atom {
            pred: pred.to_owned(),
            terms,
        }
    }

    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().filter_map(|t| match t {
            Term::Var(v) => Some(v.as_str()),
            Term::Const(_) => None,
        })
    }
}

/// A possibly negated body atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    pub atom: Atom,
    pub positive: bool,
}

impl Literal {
    pub fn pos(atom: Atom) -> Literal {
        Literal {
            atom,
            positive: true,
        }
    }

    pub fn neg(atom: Atom) -> Literal {
        Literal {
            atom,
            positive: false,
        }
    }
}

/// `head :- body.`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    pub head: Atom,
    pub body: Vec<Literal>,
}

/// Built-in comparison predicates: `lt/2, le/2, gt/2, ge/2, eq/2, neq/2`.
/// They filter bound values instead of matching stored facts, so (like
/// negated literals) every variable they mention must be bound by an
/// ordinary positive literal.
pub fn is_builtin(pred: &str) -> bool {
    matches!(pred, "lt" | "le" | "gt" | "ge" | "eq" | "neq")
}

/// A datalog program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    pub rules: Vec<Rule>,
}

impl Program {
    pub fn new(rules: Vec<Rule>) -> Program {
        Program { rules }
    }

    /// All predicates defined by rule heads (the IDB).
    pub fn idb_predicates(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.rules.iter().map(|r| r.head.pred.as_str()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Range-restriction (safety) check: every head variable and every
    /// variable of a negative literal must occur in some positive body
    /// literal.
    pub fn check_safety(&self) -> Result<(), String> {
        for (i, rule) in self.rules.iter().enumerate() {
            if is_builtin(rule.head.pred.as_str()) {
                return Err(format!(
                    "rule {i}: cannot define builtin predicate {}",
                    rule.head.pred
                ));
            }
            let positive_vars: std::collections::HashSet<&str> = rule
                .body
                .iter()
                .filter(|l| l.positive && !is_builtin(l.atom.pred.as_str()))
                .flat_map(|l| l.atom.vars())
                .collect();
            for v in rule.head.vars() {
                if !positive_vars.contains(v) {
                    return Err(format!(
                        "rule {i}: head variable {v} not bound by a positive body literal"
                    ));
                }
            }
            for lit in rule
                .body
                .iter()
                .filter(|l| !l.positive || is_builtin(l.atom.pred.as_str()))
            {
                if is_builtin(lit.atom.pred.as_str()) && lit.atom.terms.len() != 2 {
                    return Err(format!(
                        "rule {i}: builtin {} takes exactly two arguments",
                        lit.atom.pred
                    ));
                }
                for v in lit.atom.vars() {
                    if !positive_vars.contains(v) {
                        return Err(format!(
                            "rule {i}: variable {v} in {} literal not bound positively",
                            if lit.positive { "builtin" } else { "negated" }
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Datum::Node(n)) => write!(f, "{n}"),
            Term::Const(Datum::Label(l)) => write!(f, "{l:?}"),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if !l.positive {
                write!(f, "not ")?;
            }
            write!(f, "{}", l.atom)?;
        }
        write!(f, ".")
    }
}

/// Byte spans of one rule's pieces in the program source, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSpans {
    /// The whole rule, head through the closing `.`.
    pub full: Span,
    /// The head atom.
    pub head: Span,
    /// One span per body literal's atom (excluding any `not`).
    pub body: Vec<Span>,
}

/// Side table of source spans recorded while parsing a program. Indexed
/// like [`Program::rules`]; the AST itself stays span-free so structural
/// equality and round-trip tests are unaffected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgramSpans {
    pub rules: Vec<RuleSpans>,
}

impl ProgramSpans {
    /// Span of rule `i`'s head, if recorded.
    pub fn head(&self, i: usize) -> Option<Span> {
        self.rules.get(i).map(|r| r.head)
    }

    /// Span of body literal `j` of rule `i`, if recorded.
    pub fn body(&self, i: usize, j: usize) -> Option<Span> {
        self.rules.get(i).and_then(|r| r.body.get(j)).copied()
    }

    /// Span of the whole rule `i`, if recorded.
    pub fn rule(&self, i: usize) -> Option<Span> {
        self.rules.get(i).map(|r| r.full)
    }
}

/// Parse a datalog program in the Prolog-ish syntax described in the module
/// docs. `symbols` is used to intern symbol constants so they are
/// comparable with graph labels.
pub fn parse_program(src: &str, symbols: &SymbolTable) -> Result<Program, String> {
    parse_program_spanned(src, symbols).map(|(p, _)| p)
}

/// Like [`parse_program`], additionally returning the span side table the
/// static analyzer uses to point diagnostics at the offending source.
pub fn parse_program_spanned(
    src: &str,
    symbols: &SymbolTable,
) -> Result<(Program, ProgramSpans), String> {
    let mut rules = Vec::new();
    let mut spans = ProgramSpans::default();
    let mut p = P {
        src,
        pos: 0,
        symbols,
    };
    loop {
        p.skip_ws();
        if p.pos >= p.src.len() {
            break;
        }
        let (rule, rule_spans) = p.rule()?;
        rules.push(rule);
        spans.rules.push(rule_spans);
    }
    Ok((Program::new(rules), spans))
}

struct P<'a> {
    src: &'a str,
    pos: usize,
    symbols: &'a SymbolTable,
}

impl<'a> P<'a> {
    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        loop {
            let r = self.rest();
            let t = r.trim_start();
            self.pos += r.len() - t.len();
            if self.rest().starts_with('%') || self.rest().starts_with('#') {
                match self.rest().find('\n') {
                    Some(i) => self.pos += i + 1,
                    None => self.pos = self.src.len(),
                }
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> Result<(), String> {
        if self.eat(tok) {
            Ok(())
        } else {
            // Truncate by characters, not bytes: a byte index can split a
            // multi-byte character and panic.
            let near: String = self.rest().chars().take(20).collect();
            Err(format!(
                "expected '{tok}' at byte {} (near {near:?})",
                self.pos
            ))
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let r = self.rest();
        let mut end = 0;
        for (i, c) in r.char_indices() {
            let ok = if i == 0 {
                c.is_alphabetic() || c == '_'
            } else {
                c.is_alphanumeric() || c == '_'
            };
            if ok {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        if end == 0 {
            None
        } else {
            let s = r[..end].to_owned();
            self.pos += end;
            Some(s)
        }
    }

    fn rule(&mut self) -> Result<(Rule, RuleSpans), String> {
        self.skip_ws();
        let rule_start = self.pos;
        let (head, head_span) = self.spanned_atom()?;
        let mut body = Vec::new();
        let mut body_spans = Vec::new();
        if self.eat(":-") {
            loop {
                let positive = !self.eat_keyword("not");
                let (atom, span) = self.spanned_atom()?;
                body.push(Literal { atom, positive });
                body_spans.push(span);
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect(".")?;
        let spans = RuleSpans {
            full: Span::new(rule_start, self.pos),
            head: head_span,
            body: body_spans,
        };
        Ok((Rule { head, body }, spans))
    }

    fn spanned_atom(&mut self) -> Result<(Atom, Span), String> {
        self.skip_ws();
        let start = self.pos;
        let atom = self.atom()?;
        Ok((atom, Span::new(start, self.pos)))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let r = self.rest();
        if let Some(after) = r.strip_prefix(kw) {
            if after
                .chars()
                .next()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_')
            {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn atom(&mut self) -> Result<Atom, String> {
        let pred = self
            .ident()
            .ok_or_else(|| format!("expected predicate name at byte {}", self.pos))?;
        if pred.chars().next().is_some_and(|c| c.is_uppercase()) {
            return Err(format!("predicate '{pred}' must start lowercase"));
        }
        self.expect("(")?;
        let mut terms = Vec::new();
        if !self.eat(")") {
            loop {
                terms.push(self.term()?);
                if self.eat(",") {
                    continue;
                }
                self.expect(")")?;
                break;
            }
        }
        Ok(Atom { pred, terms })
    }

    fn term(&mut self) -> Result<Term, String> {
        self.skip_ws();
        let r = self.rest();
        let c = r
            .chars()
            .next()
            .ok_or_else(|| "unexpected end of input in term".to_owned())?;
        match c {
            '&' => {
                self.pos += 1;
                let num = self.number_raw()?;
                Ok(Term::node(NodeId::from_index(num as usize)))
            }
            '"' => {
                self.pos += 1;
                let r = self.rest();
                let end = r
                    .find('"')
                    .ok_or_else(|| "unterminated string".to_owned())?;
                let s = r[..end].to_owned();
                self.pos += end + 1;
                Ok(Term::value(s))
            }
            '\'' => {
                self.pos += 1;
                let r = self.rest();
                let end = r
                    .find('\'')
                    .ok_or_else(|| "unterminated symbol quote".to_owned())?;
                let name = r[..end].to_owned();
                self.pos += end + 1;
                Ok(Term::symbol(self.symbols, &name))
            }
            '0'..='9' | '-' => self.number_term(),
            _ => {
                let id = self
                    .ident()
                    .ok_or_else(|| format!("expected term at byte {}", self.pos))?;
                // ident() never returns an empty string; default keeps the
                // symbol branch if that ever changes.
                let first = id.chars().next().unwrap_or('a');
                if first.is_uppercase() || first == '_' {
                    Ok(Term::var(&id))
                } else if id == "true" {
                    Ok(Term::value(true))
                } else if id == "false" {
                    Ok(Term::value(false))
                } else {
                    Ok(Term::symbol(self.symbols, &id))
                }
            }
        }
    }

    /// A numeric term: integer or real.
    fn number_term(&mut self) -> Result<Term, String> {
        self.skip_ws();
        let r = self.rest();
        let mut end = 0;
        let mut real = false;
        for (i, c) in r.char_indices() {
            match c {
                '0'..='9' => end = i + 1,
                '-' if i == 0 => end = i + 1,
                '.' if r[i + 1..]
                    .chars()
                    .next()
                    .is_some_and(|d| d.is_ascii_digit()) =>
                {
                    real = true;
                    end = i + 1;
                }
                _ => break,
            }
        }
        if end == 0 {
            return Err(format!("expected number at byte {}", self.pos));
        }
        let text = &r[..end];
        self.pos += end;
        if real {
            text.parse::<f64>()
                .map(Term::value)
                .map_err(|e| format!("bad real: {e}"))
        } else {
            text.parse::<i64>()
                .map(Term::value)
                .map_err(|e| format!("bad number: {e}"))
        }
    }

    fn number_raw(&mut self) -> Result<i64, String> {
        self.skip_ws();
        let r = self.rest();
        let mut end = 0;
        for (i, c) in r.char_indices() {
            if c.is_ascii_digit() || (i == 0 && c == '-') {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        if end == 0 {
            return Err(format!("expected number at byte {}", self.pos));
        }
        let n = r[..end]
            .parse::<i64>()
            .map_err(|e| format!("bad number: {e}"))?;
        self.pos += end;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_graph::new_symbols;

    #[test]
    fn parse_transitive_closure() {
        let syms = new_symbols();
        let p = parse_program(
            "path(X, Y) :- edge(X, _L, Y).\n\
             path(X, Y) :- edge(X, _L, Z), path(Z, Y).",
            &syms,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.idb_predicates(), vec!["path"]);
        assert!(p.check_safety().is_ok());
    }

    #[test]
    fn parse_constants() {
        let syms = new_symbols();
        let p = parse_program(
            r#"q(X) :- edge(&0, title, X), edge(X, "Casablanca", _Y), edge(X, 42, _Z)."#,
            &syms,
        )
        .unwrap();
        let body = &p.rules[0].body;
        assert_eq!(body[0].atom.terms[0], Term::node(NodeId::from_index(0)));
        assert_eq!(body[0].atom.terms[1], Term::symbol(&syms, "title"));
        assert_eq!(body[1].atom.terms[1], Term::value("Casablanca"));
        assert_eq!(body[2].atom.terms[1], Term::value(42i64));
    }

    #[test]
    fn parse_negation() {
        let syms = new_symbols();
        let p = parse_program("dead(X) :- node(X), not reach(X).", &syms).unwrap();
        assert!(!p.rules[0].body[1].positive);
        assert!(p.check_safety().is_ok());
    }

    #[test]
    fn parse_comments_and_facts() {
        let syms = new_symbols();
        let p = parse_program(
            "% a fact\nstart(&0).\n# another comment\nq(X) :- start(X).",
            &syms,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert!(p.rules[0].body.is_empty());
    }

    #[test]
    fn unsafe_head_var_rejected() {
        let syms = new_symbols();
        let p = parse_program("q(X, Y) :- edge(X, _L, _Z).", &syms).unwrap();
        assert!(p.check_safety().is_err());
    }

    #[test]
    fn unsafe_negated_var_rejected() {
        let syms = new_symbols();
        let p = parse_program("q(X) :- node(X), not edge(X, _L, Y).", &syms).unwrap();
        assert!(p.check_safety().is_err());
    }

    #[test]
    fn uppercase_predicate_rejected() {
        let syms = new_symbols();
        assert!(parse_program("Q(X) :- edge(X, _L, _Y).", &syms).is_err());
    }

    #[test]
    fn missing_dot_rejected() {
        let syms = new_symbols();
        assert!(parse_program("q(X) :- edge(X, _L, _Y)", &syms).is_err());
    }

    #[test]
    fn display_round_trip() {
        let syms = new_symbols();
        let src = "path(X, Y) :- edge(X, _L, Z), not bad(Z), path(Z, Y).";
        let p = parse_program(src, &syms).unwrap();
        let shown = p.rules[0].to_string();
        let p2 = parse_program(&shown, &syms).unwrap();
        assert_eq!(p.rules[0].head, p2.rules[0].head);
        assert_eq!(p.rules[0].body.len(), p2.rules[0].body.len());
    }

    #[test]
    fn true_false_are_bool_constants() {
        let syms = new_symbols();
        let p = parse_program("q(X) :- edge(X, true, _Y).", &syms).unwrap();
        assert_eq!(p.rules[0].body[0].atom.terms[1], Term::value(true));
    }

    #[test]
    fn spans_point_at_atoms() {
        let syms = new_symbols();
        let src = "p(X) :- node(X).\nq(Y) :- p(Y), not bad(Y).";
        let (prog, spans) = parse_program_spanned(src, &syms).unwrap();
        assert_eq!(prog.rules.len(), 2);
        assert_eq!(spans.rules.len(), 2);
        let head0 = spans.head(0).unwrap();
        assert_eq!(&src[head0.start..head0.end], "p(X)");
        let body00 = spans.body(0, 0).unwrap();
        assert_eq!(&src[body00.start..body00.end], "node(X)");
        // The negated literal's span excludes the `not` keyword.
        let body11 = spans.body(1, 1).unwrap();
        assert_eq!(&src[body11.start..body11.end], "bad(Y)");
        let full1 = spans.rule(1).unwrap();
        assert_eq!(&src[full1.start..full1.end], "q(Y) :- p(Y), not bad(Y).");
    }
}

#[cfg(test)]
mod quoted_symbol_tests {
    use super::*;
    use ssd_graph::new_symbols;

    #[test]
    fn quoted_symbols_are_constants_not_variables() {
        let syms = new_symbols();
        let p = parse_program("title(T) :- edge(_E, 'Title', T).", &syms).unwrap();
        assert_eq!(
            p.rules[0].body[0].atom.terms[1],
            Term::symbol(&syms, "Title")
        );
    }

    #[test]
    fn unterminated_symbol_quote_rejected() {
        let syms = new_symbols();
        assert!(parse_program("q(X) :- edge(X, 'Oops, _Y).", &syms).is_err());
    }
}
