//! # ssd-triples — the relational substrate for semistructured data
//!
//! §3 of Buneman's PODS '97 tutorial describes two computational strategies
//! for querying semistructured data. This crate is the first one: "model
//! the graph as a relational database and then exploit a relational query
//! language. ... We can take the database as a large relation of type
//! (node-id, label, node-id)".
//!
//! * [`triple`] / [`store`] — the shredded, indexed edge relation, built
//!   from the root-reachable fragment (forward accessibility, §3 item 4).
//! * [`algebra`] — relational algebra (σ π ⋈ ρ ∪ −) over relations whose
//!   fields are node ids and labels.
//! * [`datalog`] — "graph datalog": stratified recursive rules, naive and
//!   semi-naive evaluation.
//! * [`paths`] — hand-written reachability/transitive-closure baselines
//!   the datalog results are cross-checked against.

pub mod algebra;
pub mod datalog;
pub mod paths;
pub mod store;
pub mod triple;

pub use algebra::{AlgebraError, Datum, Relation, RowView};
pub use store::TripleStore;
pub use triple::Triple;
