//! Session quotas: the resource envelope a session may spend in total,
//! and the ceiling any single job may be granted out of it.
//!
//! A quota is instantiated into a session-level [`Budget`]
//! (fuel + memory); each dispatched job receives a checked
//! [`Budget::split`] of at most the per-job ceiling, and the unspent
//! remainder is refunded when the job finishes. Admission compares a
//! job's static [`CostEnvelope`] lower bound against both the per-job
//! ceiling and the session's remaining balance *before* any engine fuel
//! is spent.

use ssd_guard::Budget;

/// Default per-job fuel ceiling (guard steps).
pub const DEFAULT_JOB_FUEL: u64 = 1_000_000;
/// Default per-job memory ceiling (guard-accounted bytes).
pub const DEFAULT_JOB_MEMORY: u64 = 64 * 1024 * 1024;
/// Default cap on a session's concurrently running jobs.
pub const DEFAULT_MAX_CONCURRENT: usize = 2;

/// Resource quota attached to a session at `HELLO` time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionQuota {
    /// Total guard fuel the session may spend across all its jobs
    /// (`None` = unmetered).
    pub fuel: Option<u64>,
    /// Total guard-accounted bytes across all its jobs (`None` = unmetered).
    pub memory: Option<u64>,
    /// How many of the session's jobs may run at once; further admitted
    /// jobs wait in the run queue.
    pub max_concurrent: usize,
    /// Fuel ceiling granted to any single job.
    pub job_fuel: u64,
    /// Memory ceiling granted to any single job.
    pub job_memory: u64,
}

impl Default for SessionQuota {
    fn default() -> SessionQuota {
        SessionQuota {
            fuel: None,
            memory: None,
            max_concurrent: DEFAULT_MAX_CONCURRENT,
            job_fuel: DEFAULT_JOB_FUEL,
            job_memory: DEFAULT_JOB_MEMORY,
        }
    }
}

impl SessionQuota {
    /// The session-level balance this quota opens with.
    pub fn session_budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(fuel) = self.fuel {
            b = b.max_steps(fuel);
        }
        if let Some(mem) = self.memory {
            b = b.max_memory_bytes(mem);
        }
        b
    }

    /// The largest grant a single job can receive under this quota given
    /// the session's current balance: the per-job ceiling, clamped to
    /// what is left.
    pub fn job_grant(&self, remaining: &Budget) -> (u64, u64) {
        let fuel = remaining
            .max_steps
            .map_or(self.job_fuel, |r| self.job_fuel.min(r));
        let mem = remaining
            .max_memory_bytes
            .map_or(self.job_memory, |r| self.job_memory.min(r));
        (fuel, mem)
    }

    /// The admission ceiling for a single job: used to reject jobs whose
    /// cost envelope can never fit, regardless of session balance.
    pub fn job_ceiling(&self) -> Budget {
        Budget::unlimited()
            .max_steps(self.job_fuel)
            .max_memory_bytes(self.job_memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_quota_is_unmetered_with_job_ceiling() {
        let q = SessionQuota::default();
        let b = q.session_budget();
        assert_eq!(b.max_steps, None);
        assert_eq!(b.max_memory_bytes, None);
        assert_eq!(q.job_grant(&b), (DEFAULT_JOB_FUEL, DEFAULT_JOB_MEMORY));
    }

    #[test]
    fn job_grant_clamps_to_remaining_balance() {
        let q = SessionQuota {
            fuel: Some(500),
            memory: Some(10),
            job_fuel: 400,
            job_memory: 64,
            ..SessionQuota::default()
        };
        let mut b = q.session_budget();
        assert_eq!(q.job_grant(&b), (400, 10));
        let _child = b.split(400, 10).unwrap();
        assert_eq!(q.job_grant(&b), (100, 0));
    }
}
