//! # ssd-serve — concurrent, admission-controlled query serving
//!
//! The system layer Buneman's tutorial presumes around the model: a
//! *database* serving ad-hoc queries over a shared graph, not a
//! one-shot evaluator. A [`Server`] owns an immutable, `Arc`-shared
//! [`Database`](semistructured::Database) and runs sessions against it:
//!
//! - **Sessions & quotas** ([`quota`]): every session carries a
//!   [`SessionQuota`] — total fuel/memory for its lifetime plus a
//!   per-job ceiling and a concurrency cap. The quota is a
//!   [`Budget`](ssd_guard::Budget); jobs receive checked
//!   `Budget::split` grants and refund what they do not spend.
//! - **Admission before execution** ([`sched`]): each submitted job is
//!   statically costed (ssd-cost) and admitted against the per-job
//!   ceiling and the session balance *before* a single engine step
//!   runs; over-budget work is rejected (SSD030/SSD200) for free,
//!   surplus admitted work waits in a bounded queue (SSD201/SSD202).
//! - **Governed, isolated execution** ([`server`]): a fixed worker pool
//!   runs jobs under PR 2 guards — deterministic fuel, byte-accounted
//!   memory, cancellation tokens (`CANCEL <job>` works mid-fixpoint),
//!   panics confined to the offending job (SSD111).
//! - **Streaming results**: chunks of the result literal flow back at
//!   guard tick boundaries through bounded channels (backpressure, and
//!   the seam where mid-stream cancellation lands).
//! - **Observability** ([`metrics`]): per-session and global counters,
//!   fuel spent vs. estimated, queue depth, p50/p99 latency — via the
//!   `STATS` verb and `ssd serve --metrics-dump`.
//! - **Wire protocol** ([`protocol`], [`net`]): length-prefixed UTF-8
//!   frames over TCP; `ssd client` speaks it from a script.
//!
//! Determinism is a design constraint, not an accident: the scheduler
//! is a pure state machine behind one mutex, timestamped by an
//! injectable [`Clock`](clock::Clock), and every decision lands in a
//! [`TraceEvent`](sched::TraceEvent) log the tests replay and compare.

/// The crate-wide mutex hierarchy, outermost first. Any function that
/// holds two locks at once must acquire them in this order, and no
/// blocking operation (worker `join()`, channel send/recv) may run
/// while one is held; `ssd lint` (SSD904) checks both statically,
/// resolving each `x.lock()` receiver against these names:
///
/// - `state` — [`server`]'s scheduler state + ready queue (the one hot
///   mutex; its `Condvar` partner `work` wakes idle workers).
/// - `workers` — the worker `JoinHandle`s, touched only at shutdown.
/// - `tracer` — the optional [`ssd_trace::Tracer`], written after
///   `state` is released.
/// - `writer` — the per-connection TCP write half in [`net`].
pub const LOCK_ORDER: &[&str] = &["state", "workers", "tracer", "writer"];

pub mod clock;
pub mod metrics;
pub mod net;
pub mod protocol;
pub mod quota;
pub mod sched;
pub mod server;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use metrics::{Counters, Histogram, Metrics};
pub use protocol::{
    decode_frame, encode_frame, parse_command, parse_command_with, Command, FrameError, MAX_FRAME,
};
pub use quota::SessionQuota;
pub use sched::{
    Decision, Dequeued, FinishKind, JobId, JobKind, Scheduler, SessionId, Ticket, TraceEvent,
};
pub use server::{
    JobEvent, JobHandle, JobOutcome, ServeConfig, Server, SessionHandle, SubmitError, PANIC_PROBE,
};
