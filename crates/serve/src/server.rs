//! The serving engine: a fixed worker pool around the pure
//! [`Scheduler`], plus the in-process session API the deterministic
//! tests and the TCP layer both use.
//!
//! One mutex holds the scheduler and the ready queue, so every
//! transition the trace records really happened atomically in that
//! order. Workers block on a condvar, pop dispatch tickets, run the
//! engine under the admitted [`Guard`], stream result chunks through a
//! bounded per-job channel (blocking when the client is slow — that is
//! the backpressure), and report completion back to the scheduler,
//! which refunds the unspent grant and may hand back newly dispatchable
//! queued jobs.
//!
//! Isolation: each job runs under `catch_unwind`, so an engine panic is
//! confined to that job (SSD111 to its session) and the worker survives;
//! cancellation fires the job's token, which the guard polls at tick
//! boundaries — between chunks, mid-evaluation, and mid-fixpoint alike.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex, Once, OnceLock};
use std::thread::JoinHandle;

use semistructured::{CostContext, DataStats, Database, Schema};
use ssd_diag::{Code, Diagnostic};
use ssd_guard::{CostEnvelope, Exhausted, Guard, Interval};
use ssd_store::{Store, Txn};

use ssd_trace::{Phase, Tracer};

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::{Counters, Metrics};
use crate::quota::SessionQuota;
use crate::sched::{
    Decision, Dequeued, FinishKind, JobId, JobKind, Scheduler, SessionId, Ticket, TraceEvent,
};

/// Submitting a query containing this marker makes the worker panic
/// mid-job. Test-only: it is how the suite proves panic isolation
/// without a fault-injection build flag.
#[doc(hidden)]
pub const PANIC_PROBE: &str = "__ssd_panic_probe__";

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Bounded run-queue length; submissions beyond it are SSD201.
    pub queue_cap: usize,
    /// Result roots per streamed chunk.
    pub chunk_size: usize,
    /// Per-job event-channel buffer; 0 means fully synchronous
    /// (each chunk waits for the client — maximal backpressure).
    pub stream_buffer: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_cap: 16,
            chunk_size: 8,
            stream_buffer: 64,
        }
    }
}

/// What a job streams back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobEvent {
    /// One standalone literal chunk of the result.
    Chunk(String),
    /// The job finished; `summary` is a one-line account.
    Done { summary: String },
    /// The job ended without a (complete) result; the string is a
    /// rendered diagnostic headline (SSD1xx/SSD2xx).
    Failed(String),
}

/// Why a submit returned no job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control said no (SSD030/SSD2xx); zero engine fuel spent.
    Rejected(Diagnostic),
    /// The text does not parse / estimate; nothing was scheduled.
    Invalid(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected(d) => f.write_str(&d.headline()),
            SubmitError::Invalid(m) => f.write_str(m),
        }
    }
}

/// A submitted job: consume [`JobHandle::events`] for streaming, or
/// [`JobHandle::wait`] to block for the collected outcome.
pub struct JobHandle {
    pub job: JobId,
    /// True when the job went to the run queue rather than a worker.
    pub queued: bool,
    rx: Receiver<JobEvent>,
}

/// Everything a finished job produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    pub chunks: Vec<String>,
    pub summary: Option<String>,
    /// Rendered diagnostic headline when the job did not complete.
    pub error: Option<String>,
}

impl JobHandle {
    /// Block until the job finishes, collecting all chunks.
    pub fn wait(self) -> JobOutcome {
        let mut out = JobOutcome {
            chunks: Vec::new(),
            summary: None,
            error: None,
        };
        for ev in self.rx.iter() {
            match ev {
                JobEvent::Chunk(c) => out.chunks.push(c),
                JobEvent::Done { summary } => {
                    out.summary = Some(summary);
                    break;
                }
                JobEvent::Failed(e) => {
                    out.error = Some(e);
                    break;
                }
            }
        }
        out
    }

    /// The raw event stream (ends with `Done` or `Failed`).
    pub fn events(self) -> Receiver<JobEvent> {
        self.rx
    }
}

struct State {
    sched: Scheduler,
    ready: VecDeque<(Ticket, SyncSender<JobEvent>)>,
    /// Event senders of *queued* jobs, claimed at dispatch or rejection.
    senders: HashMap<JobId, SyncSender<JobEvent>>,
    /// Set once shutdown has fully drained: workers exit.
    stop: bool,
}

struct Inner {
    db: Arc<Database>,
    /// The durable store, when the server was started over one. Jobs
    /// pin a snapshot generation at run time; COMMIT jobs write through
    /// it. `None` means the server is read-only (mutations are SSD403).
    store: Option<Arc<Store>>,
    cfg: ServeConfig,
    state: Mutex<State>,
    work: Condvar,
    /// Failure notices that could not be delivered without blocking go
    /// here; one shared notifier thread drains them (see
    /// [`notify_failed`]).
    notify: Sender<(SyncSender<JobEvent>, String)>,
    /// Estimator inputs, computed once per server, not per submit.
    query_stats: OnceLock<(DataStats, Schema)>,
    datalog_stats: OnceLock<DataStats>,
    /// Structured-event tracer for the *scheduler lifecycle* (admission
    /// decisions, queue waits, per-job spans). Per-job engine evaluation
    /// is deliberately not routed through this tracer: workers run in
    /// parallel and a shared tracer behind one mutex would serialize
    /// them. `None` when the server was started untraced (zero cost).
    tracer: Option<Mutex<Tracer>>,
}

impl Inner {
    /// Run `f` under the tracer lock, if tracing is enabled. Never call
    /// while holding the state lock (lock order: state, then tracer,
    /// never interleaved).
    fn with_tracer(&self, f: impl FnOnce(&Tracer)) {
        if let Some(tracer) = &self.tracer {
            let t = tracer.lock().unwrap_or_else(|e| e.into_inner());
            f(&t);
        }
    }
}

/// The serving subsystem. See the module docs.
pub struct Server {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    shutdown_requested: AtomicBool,
}

impl Server {
    /// Start `cfg.workers` workers over `db` with a wall clock. The
    /// server is read-only: mutation verbs are rejected with SSD403.
    pub fn start(db: Arc<Database>, cfg: ServeConfig) -> Server {
        Server::start_with_clock(db, cfg, Arc::new(MonotonicClock::new()))
    }

    /// As [`Server::start`], additionally routing scheduler-lifecycle
    /// events (admissions, queue waits, per-job spans) into `tracer` —
    /// configure its sinks (ring / JSONL) before passing it in. The
    /// tracer is flushed on [`Server::shutdown`].
    pub fn start_traced(db: Arc<Database>, cfg: ServeConfig, tracer: Tracer) -> Server {
        Server::start_full(db, None, cfg, Arc::new(MonotonicClock::new()), Some(tracer))
    }

    /// Start over a durable [`Store`]: reads pin snapshot generations,
    /// and `COMMIT` jobs write through the WAL. The base `db` handed to
    /// the estimator is the store's current snapshot at start time.
    pub fn start_with_store(store: Arc<Store>, cfg: ServeConfig) -> Server {
        let db = store.snapshot();
        Server::start_full(db, Some(store), cfg, Arc::new(MonotonicClock::new()), None)
    }

    /// [`Server::start_with_store`] plus a lifecycle tracer; commit and
    /// recovery spans from the store land in it too.
    pub fn start_with_store_traced(store: Arc<Store>, cfg: ServeConfig, tracer: Tracer) -> Server {
        let db = store.snapshot();
        Server::start_full(
            db,
            Some(store),
            cfg,
            Arc::new(MonotonicClock::new()),
            Some(tracer),
        )
    }

    /// As [`Server::start`] with an injected clock (deterministic tests).
    pub fn start_with_clock(db: Arc<Database>, cfg: ServeConfig, clock: Arc<dyn Clock>) -> Server {
        Server::start_full(db, None, cfg, clock, None)
    }

    fn start_full(
        db: Arc<Database>,
        store: Option<Arc<Store>>,
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
        tracer: Option<Tracer>,
    ) -> Server {
        let (notify, notices) = mpsc::channel::<(SyncSender<JobEvent>, String)>();
        // One notifier for the whole server: delivers the failure
        // notices that could not be sent without blocking. It exits when
        // the last `Inner` clone (and thus the sender) is dropped.
        std::thread::spawn(move || {
            for (tx, headline) in notices {
                let _ = tx.send(JobEvent::Failed(headline));
            }
        });
        let inner = Arc::new(Inner {
            db,
            store,
            cfg: cfg.clone(),
            state: Mutex::new(State {
                sched: Scheduler::new(cfg.workers, cfg.queue_cap, clock),
                ready: VecDeque::new(),
                senders: HashMap::new(),
                stop: false,
            }),
            work: Condvar::new(),
            notify,
            query_stats: OnceLock::new(),
            datalog_stats: OnceLock::new(),
            tracer: tracer.map(Mutex::new),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(inner))
            })
            .collect();
        Server {
            inner,
            workers: Mutex::new(workers),
            shutdown_requested: AtomicBool::new(false),
        }
    }

    /// Does this server write through a durable store? When false,
    /// mutation verbs are rejected with SSD403 before admission.
    pub fn writable(&self) -> bool {
        self.inner.store.is_some()
    }

    /// The current store generation, when there is a store.
    pub fn generation(&self) -> Option<u64> {
        self.inner.store.as_ref().map(|s| s.generation())
    }

    /// Open a session under `quota`.
    pub fn open_session(&self, quota: SessionQuota) -> SessionHandle {
        let mut st = self.inner.state.lock().expect("state lock");
        let id = st.sched.open_session(quota);
        SessionHandle {
            inner: Arc::clone(&self.inner),
            id,
            closed: AtomicBool::new(false),
        }
    }

    /// Ask for shutdown without blocking: new submissions are rejected
    /// (SSD203) at once; queued and running jobs keep draining. The TCP
    /// accept loop polls [`Server::shutdown_requested`].
    pub fn request_shutdown(&self) {
        self.shutdown_requested.store(true, Ordering::SeqCst);
        let mut st = self.inner.state.lock().expect("state lock");
        st.sched.begin_shutdown();
        maybe_stop(&mut st);
        drop(st);
        self.inner.work.notify_all();
    }

    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop admitting, drain the queue, join every
    /// worker, and return the final metrics snapshot.
    pub fn shutdown(&self) -> Metrics {
        self.request_shutdown();
        let workers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for w in workers {
            let _ = w.join();
        }
        self.inner.with_tracer(|t| t.flush());
        self.metrics()
    }

    /// Global metrics snapshot.
    pub fn metrics(&self) -> Metrics {
        self.inner.state.lock().expect("state lock").sched.metrics()
    }

    /// The scheduler's decision trace so far.
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.inner
            .state
            .lock()
            .expect("state lock")
            .sched
            .trace()
            .to_vec()
    }

    /// The `STATS` block: global metrics (greppable `key value` lines
    /// followed by the same numbers in Prometheus text format), plus one
    /// session's counters, latency percentiles, and recent decision
    /// trace when `session` is given.
    pub fn stats_text(&self, session: Option<SessionId>) -> String {
        let st = self.inner.state.lock().expect("state lock");
        let metrics = st.sched.metrics();
        let mut out = metrics.render();
        if let Some(id) = session {
            if let Some(c) = st.sched.session_counters(id) {
                for (k, v) in [
                    ("session.admitted", c.admitted),
                    ("session.rejected", c.rejected),
                    ("session.queued", c.queued),
                    ("session.cancelled", c.cancelled),
                    ("session.completed", c.completed),
                    ("session.panicked", c.panicked),
                    ("session.fuel_spent", c.fuel_spent),
                    ("session.fuel_estimated", c.fuel_estimated),
                    ("session.fuel_refunded", c.fuel_refunded),
                    ("session.refund_clamped", c.refund_clamped),
                ] {
                    out.push_str(&format!("{k} {v}\n"));
                }
            }
            if let Some(lat) = st.sched.session_latency(id) {
                out.push_str(&format!("session.latency_p50_us {}\n", lat.percentile(50)));
                out.push_str(&format!("session.latency_p99_us {}\n", lat.percentile(99)));
            }
            if let Some(trace) = st.sched.session_trace(id) {
                for ev in &trace {
                    out.push_str(&format!("session.trace {ev:?}\n"));
                }
            }
        }
        out.push_str(&metrics.render_prometheus());
        out
    }
}

/// One session against a [`Server`]. Dropping the handle closes the
/// session — queued jobs are cancelled and running jobs' tokens fire
/// (the TCP layer relies on this for disconnect teardown).
pub struct SessionHandle {
    inner: Arc<Inner>,
    pub id: SessionId,
    closed: AtomicBool,
}

impl SessionHandle {
    /// Submit a job. `Rpe` texts are desugared to a select over the
    /// path. Admission happens here: `Err(Rejected)` costs zero fuel.
    pub fn submit(&self, kind: JobKind, text: &str) -> Result<JobHandle, SubmitError> {
        let text = match kind {
            JobKind::Rpe => format!("select X from db.{} X", text.trim()),
            _ => text.to_string(),
        };
        let envelope = if text.contains(PANIC_PROBE) {
            // The probe is not parseable; give it a token envelope.
            CostEnvelope {
                cardinality: Interval::exact(1),
                fuel: Interval::exact(1),
                memory: Interval::exact(0),
            }
        } else {
            estimate(&self.inner, kind, &text).map_err(SubmitError::Invalid)?
        };
        let mut st = self.inner.state.lock().expect("state lock");
        match st.sched.submit(self.id, kind, text, envelope) {
            Decision::Dispatch(ticket) => {
                let (tx, rx) = mpsc::sync_channel(self.inner.cfg.stream_buffer);
                let job = ticket.job;
                let grant_fuel = ticket.grant_fuel;
                st.ready.push_back((ticket, tx));
                drop(st);
                self.inner.with_tracer(|t| {
                    t.instant(
                        Phase::Serve,
                        "admit",
                        vec![
                            ("job", job.0.into()),
                            ("session", self.id.0.into()),
                            ("grant_fuel", grant_fuel.into()),
                        ],
                    );
                });
                self.inner.work.notify_all();
                Ok(JobHandle {
                    job,
                    queued: false,
                    rx,
                })
            }
            Decision::Queued { job, depth } => {
                let (tx, rx) = mpsc::sync_channel(self.inner.cfg.stream_buffer);
                st.senders.insert(job, tx);
                drop(st);
                self.inner.with_tracer(|t| {
                    t.instant(
                        Phase::Serve,
                        "queue",
                        vec![
                            ("job", job.0.into()),
                            ("session", self.id.0.into()),
                            ("depth", depth.into()),
                        ],
                    );
                });
                Ok(JobHandle {
                    job,
                    queued: true,
                    rx,
                })
            }
            Decision::Rejected(d) => {
                drop(st);
                self.inner.with_tracer(|t| {
                    t.instant(
                        Phase::Serve,
                        "reject",
                        vec![
                            ("session", self.id.0.into()),
                            ("code", d.code.to_string().into()),
                        ],
                    );
                });
                Err(SubmitError::Rejected(d))
            }
        }
    }

    /// Cancel one of *this session's* jobs: `Ok(false)` if it was still
    /// queued (already gone), `Ok(true)` if running (its token fired;
    /// the stream will end with an SSD105 failure). A job id belonging
    /// to another session is SSD204, exactly like an unknown id.
    pub fn cancel(&self, job: JobId) -> Result<bool, Diagnostic> {
        let mut st = self.inner.state.lock().expect("state lock");
        let was_running = st.sched.cancel(self.id, job)?;
        if !was_running {
            if let Some(tx) = st.senders.remove(&job) {
                notify_failed(&self.inner, tx, Exhausted::Cancelled.headline());
            }
        }
        Ok(was_running)
    }

    /// This session's counters.
    pub fn counters(&self) -> Option<Counters> {
        self.inner
            .state
            .lock()
            .expect("state lock")
            .sched
            .session_counters(self.id)
    }

    /// Close the session: cancel everything it still has in flight.
    pub fn close(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut st = self.inner.state.lock().expect("state lock");
        let dropped = st.sched.close_session(self.id);
        for job in dropped {
            if let Some(tx) = st.senders.remove(&job) {
                notify_failed(&self.inner, tx, Exhausted::Cancelled.headline());
            }
        }
        maybe_stop(&mut st);
        drop(st);
        self.inner.work.notify_all();
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        self.close();
    }
}

/// Static cost estimation with per-server cached data statistics —
/// mirrors `Database::estimate_*` but does not re-extract the schema on
/// every submit.
fn estimate(inner: &Inner, kind: JobKind, text: &str) -> Result<CostEnvelope, String> {
    use semistructured::query::analyze;
    let analysis = match kind {
        JobKind::Commit => {
            // Writes are costed from the transaction script itself: the
            // byte volume is known exactly up front, so the envelope is
            // exact and admission (quota, per-job ceiling, queue) treats
            // write budgets like any other job. Every op is validated
            // here — a bad literal is rejected before scheduling.
            let txn = Txn::parse_script(text)?;
            if txn.is_empty() {
                return Err("COMMIT with no staged operations".to_string());
            }
            for op in txn.ops() {
                match op {
                    ssd_store::Op::Insert(lit) => ssd_store::validate_insert(lit)
                        .map_err(|e| format!("INSERT literal does not parse: {e}"))?,
                    ssd_store::Op::Delete(label) => ssd_store::validate_delete(label)?,
                }
            }
            let (fuel, memory) = commit_cost(&txn);
            return Ok(CostEnvelope {
                cardinality: Interval::exact(txn.len() as u64),
                fuel: Interval::exact(fuel),
                memory: Interval::exact(memory),
            });
        }
        JobKind::Datalog => {
            let (p, spans) = semistructured::triples::datalog::parse_program_spanned(
                text,
                inner.db.graph().symbols(),
            )?;
            let stats = inner
                .datalog_stats
                .get_or_init(|| DataStats::collect(inner.db.graph()));
            let ctx = CostContext {
                stats: Some(stats),
                schema: None,
            };
            analyze::analyze_datalog_cost(&p, Some(&spans), None, &ctx)
        }
        _ => {
            let (q, spans) = semistructured::query::lang::parse_query_spanned(text)
                .map_err(|e| e.to_string())?;
            let (stats, schema) = inner.query_stats.get_or_init(|| inner.db.data_stats());
            let ctx = CostContext {
                stats: Some(stats),
                schema: Some(schema),
            };
            analyze::analyze_query_cost(&q, Some(&spans), &ctx)
        }
    };
    Ok(analysis.envelope)
}

/// The write cost model, shared by the estimator and the worker so the
/// charge always equals the (exact) envelope: one step per op plus one
/// per body byte of fuel; the body bytes again as memory.
fn commit_cost(txn: &Txn) -> (u64, u64) {
    let bytes = txn.body_bytes();
    (1 + txn.len() as u64 + bytes, bytes)
}

/// Deliver a failure notice without blocking the caller: these fire
/// from under the state lock (cancel, close, late-reject), where a
/// rendezvous `send` to a client that is not currently reading — or
/// that *is* the calling thread — would deadlock. The fast path is a
/// `try_send` (the stream buffer almost always has room); a full or
/// rendezvous channel falls back to the server's single notifier
/// thread, so an in-process caller holding unconsumed handles delays
/// later notices at worst — it never accumulates blocked threads.
fn notify_failed(inner: &Inner, tx: SyncSender<JobEvent>, headline: String) {
    match tx.try_send(JobEvent::Failed(headline)) {
        Ok(()) | Err(TrySendError::Disconnected(_)) => {}
        Err(TrySendError::Full(ev)) => {
            let JobEvent::Failed(headline) = ev else {
                unreachable!("notify_failed sends Failed events only");
            };
            // lint: allow(lock) — std mpsc send on an unbounded channel only enqueues; it cannot block the callers that hold `state`
            let _ = inner.notify.send((tx, headline));
        }
    }
}

/// When shutdown has been requested and nothing is queued, running, or
/// ready, tell the workers to exit.
fn maybe_stop(st: &mut State) {
    if st.sched.is_shutting_down() && st.sched.drained() && st.ready.is_empty() {
        st.stop = true;
    }
}

thread_local! {
    static IN_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Suppress the default "thread panicked" stderr noise for panics we
/// catch inside jobs, without hiding panics anywhere else.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_JOB.with(|f| f.get()) {
                prev(info);
            }
        }));
    });
}

fn worker_loop(inner: Arc<Inner>) {
    install_quiet_hook();
    loop {
        let (ticket, tx) = {
            let mut st = inner.state.lock().expect("state lock");
            loop {
                if let Some(item) = st.ready.pop_front() {
                    break item;
                }
                if st.stop {
                    return;
                }
                st = inner.work.wait(st).expect("state lock");
            }
        };
        let job = ticket.job;
        // A detached span covers the whole run: opened here (this worker
        // iteration), closed after the finish kind is known, stitched to
        // the session by its fields.
        let mut job_span = 0;
        inner.with_tracer(|t| {
            job_span = t.open_detached(
                Phase::Serve,
                "job",
                0,
                vec![
                    ("job", ticket.job.0.into()),
                    ("session", ticket.session.0.into()),
                    ("kind", format!("{:?}", ticket.kind).into()),
                ],
            );
        });
        // The guard outlives the catch_unwind below, so fuel spent up to
        // a panic is still read back and charged to the session.
        let guard = ticket.budget.guard();
        IN_JOB.with(|f| f.set(true));
        let ran = catch_unwind(AssertUnwindSafe(|| run_job(&inner, &ticket, &guard, &tx)));
        IN_JOB.with(|f| f.set(false));
        let finish = match ran {
            Ok(finish) => finish,
            Err(_) => {
                let d = Diagnostic::new(
                    Code::EnginePanic,
                    format!(
                        "job {job} panicked; the worker survived and the session keeps running"
                    ),
                );
                let _ = tx.send(JobEvent::Failed(d.headline()));
                FinishKind::Panicked
            }
        };
        inner.with_tracer(|t| {
            t.close_detached(
                job_span,
                Phase::Serve,
                "job",
                guard.steps_used(),
                guard.memory_used(),
                vec![
                    ("job", ticket.job.0.into()),
                    ("session", ticket.session.0.into()),
                    ("finish", format!("{finish:?}").into()),
                ],
            );
        });
        let mut st = inner.state.lock().expect("state lock");
        let mut pending: VecDeque<Dequeued> = st
            .sched
            .complete(job, guard.steps_used(), guard.memory_used(), finish)
            .into();
        while let Some(d) = pending.pop_front() {
            match d {
                Dequeued::Dispatch(t) => {
                    if let Some(tx) = st.senders.remove(&t.job) {
                        st.ready.push_back((t, tx));
                    } else {
                        // Every queued job has a sender until dispatch
                        // or rejection claims it, so this is a bug —
                        // but dropping the ticket would leak the worker
                        // slot and session-active count it was
                        // dispatched with, so give them back.
                        debug_assert!(false, "dispatched job {} has no sender", t.job);
                        pending.extend(st.sched.complete(t.job, 0, 0, FinishKind::Cancelled));
                    }
                }
                Dequeued::LateReject { job, diag } => {
                    if let Some(tx) = st.senders.remove(&job) {
                        notify_failed(&inner, tx, diag.headline());
                    }
                }
            }
        }
        maybe_stop(&mut st);
        drop(st);
        inner.work.notify_all();
    }
}

/// Evaluate one ticket and stream its result. The returned kind is what
/// the scheduler records; evaluation *errors* still count as completed
/// (the slot was used), only token-cancellation counts as cancelled.
fn run_job(inner: &Inner, ticket: &Ticket, guard: &Guard, tx: &SyncSender<JobEvent>) -> FinishKind {
    if ticket.text.contains(PANIC_PROBE) {
        panic!("panic probe");
    }
    // Pin a snapshot generation for the whole job: commits that land
    // while this job streams cannot change what it reads, and the pin is
    // a single Arc clone — readers never block writers or vice versa.
    let db: Arc<Database> = match &inner.store {
        Some(store) => store.snapshot(),
        None => Arc::clone(&inner.db),
    };
    let cancelled = || {
        ticket
            .budget
            .cancel
            .as_ref()
            .is_some_and(|t| t.is_cancelled())
    };
    let summary: String;
    match ticket.kind {
        JobKind::Query | JobKind::QueryOptimized | JobKind::Rpe => {
            let res = if ticket.kind == JobKind::QueryOptimized {
                db.query_optimized_with(&ticket.text, guard)
            } else {
                db.query_with(&ticket.text, guard)
            };
            match res {
                Err(e) => {
                    let _ = tx.send(JobEvent::Failed(e));
                    return if cancelled() {
                        FinishKind::Cancelled
                    } else {
                        FinishKind::Completed
                    };
                }
                Ok(result) => {
                    // Stream at guard tick boundaries: poll between
                    // chunks so CANCEL lands mid-stream, not after it.
                    for chunk in result.chunks(inner.cfg.chunk_size) {
                        if let Err(e) = guard.poll() {
                            let _ = tx.send(JobEvent::Failed(e.headline()));
                            return if matches!(e, Exhausted::Cancelled) {
                                FinishKind::Cancelled
                            } else {
                                FinishKind::Completed
                            };
                        }
                        if tx.send(JobEvent::Chunk(chunk)).is_err() {
                            // Receiver hung up: the client is gone.
                            return FinishKind::Cancelled;
                        }
                    }
                    let s = result.stats();
                    summary = format!(
                        "results={} fuel={}{}",
                        s.results_constructed,
                        guard.steps_used(),
                        if s.truncated.is_some() {
                            " truncated"
                        } else {
                            ""
                        },
                    );
                }
            }
        }
        JobKind::Commit => {
            let txn = match Txn::parse_script(&ticket.text) {
                Ok(t) => t,
                Err(e) => {
                    let d = Diagnostic::new(
                        Code::ProtocolError,
                        format!("COMMIT script does not parse: {e}"),
                    );
                    let _ = tx.send(JobEvent::Failed(d.headline()));
                    return FinishKind::Completed;
                }
            };
            // Charge exactly what admission granted (the envelope is
            // exact), so session fuel accounting covers writes too.
            let (fuel, memory) = commit_cost(&txn);
            if let Err(e) = guard
                .tick_hard(fuel)
                .and_then(|()| guard.alloc(memory).map(|_| ()))
            {
                let _ = tx.send(JobEvent::Failed(e.headline()));
                return if matches!(e, Exhausted::Cancelled) {
                    FinishKind::Cancelled
                } else {
                    FinishKind::Completed
                };
            }
            let Some(store) = &inner.store else {
                let d = Diagnostic::new(
                    Code::ReadOnlyStore,
                    "server is read-only: started without --data-dir",
                );
                let _ = tx.send(JobEvent::Failed(d.headline()));
                return FinishKind::Completed;
            };
            let committed = if let Some(tracer) = &inner.tracer {
                let t = tracer.lock().unwrap_or_else(|e| e.into_inner());
                // lint: allow(lock) — commit spans must land in the job's tracer; commits already serialize on the WAL mutex, so the tracer lock adds no new contention edge
                store.commit_traced(&txn, Some(&t))
            } else {
                store.commit(&txn)
            };
            match committed {
                Err(e) => {
                    let _ = tx.send(JobEvent::Failed(e.headline()));
                    return FinishKind::Completed;
                }
                Ok(info) => {
                    summary = format!(
                        "committed generation={} seq={} ops={} wal_bytes={} fuel={}",
                        info.generation,
                        info.seq,
                        info.ops,
                        info.bytes,
                        guard.steps_used(),
                    );
                }
            }
        }
        JobKind::Datalog => match db.datalog_with(&ticket.text, guard) {
            Err(e) => {
                let _ = tx.send(JobEvent::Failed(e));
                return if cancelled() {
                    FinishKind::Cancelled
                } else {
                    FinishKind::Completed
                };
            }
            Ok(eval) => {
                let mut lines = Vec::new();
                let mut preds: Vec<&String> = eval.facts.keys().collect();
                preds.sort();
                for p in preds {
                    if matches!(p.as_str(), "edge" | "node" | "root") {
                        continue;
                    }
                    lines.push(format!("{p}: {} tuple(s)", eval.count(p)));
                }
                for batch in lines.chunks(inner.cfg.chunk_size.max(1)) {
                    if let Err(e) = guard.poll() {
                        let _ = tx.send(JobEvent::Failed(e.headline()));
                        return if matches!(e, Exhausted::Cancelled) {
                            FinishKind::Cancelled
                        } else {
                            FinishKind::Completed
                        };
                    }
                    if tx.send(JobEvent::Chunk(batch.join("\n"))).is_err() {
                        return FinishKind::Cancelled;
                    }
                }
                summary = format!(
                    "iterations={} rules={} fuel={}{}",
                    eval.iterations,
                    eval.rule_evaluations,
                    guard.steps_used(),
                    if eval.truncated.is_some() {
                        " truncated"
                    } else {
                        ""
                    },
                );
            }
        },
    }
    let _ = tx.send(JobEvent::Done { summary });
    FinishKind::Completed
}
