//! Scheduler time source.
//!
//! The scheduler never calls `Instant::now` directly: it reads a [`Clock`],
//! so the deterministic test harness can substitute a [`ManualClock`] and
//! make latency bookkeeping (and therefore traces and metrics) exactly
//! reproducible across runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Monotonic microsecond time source.
pub trait Clock: Send + Sync {
    /// Microseconds since an arbitrary but fixed origin.
    fn now_micros(&self) -> u64;
}

/// Wall-clock [`Clock`] backed by [`Instant`], origin at construction.
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// Test clock that only moves when told to. Cloning shares the instant.
#[derive(Clone, Default)]
pub struct ManualClock(Arc<AtomicU64>);

impl ManualClock {
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advance the clock by `micros`.
    pub fn advance(&self, micros: u64) {
        self.0.fetch_add(micros, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now_micros(), 0);
        c.advance(5);
        let shared = c.clone();
        shared.advance(7);
        assert_eq!(c.now_micros(), 12);
    }

    #[test]
    fn monotonic_clock_is_monotonic() {
        let c = MonotonicClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }
}
