//! Serving observability: per-session and global counters, fuel
//! spent-vs-estimated, queue depth, and latency percentiles.
//!
//! Counters are updated by the scheduler under its lock, so a snapshot
//! is always internally consistent. Latency percentiles are computed at
//! render time from the recorded samples (microseconds, submit→finish).

/// Monotonic counters kept both globally and per session.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Counters {
    /// Jobs that passed admission (dispatched immediately or queued).
    pub admitted: u64,
    /// Jobs rejected at submit (per-job ceiling, session quota, queue
    /// full, or shutdown) — these cost zero engine fuel.
    pub rejected: u64,
    /// Jobs that waited in the run queue before dispatch.
    pub queued: u64,
    /// Jobs cancelled (while queued or mid-run).
    pub cancelled: u64,
    /// Jobs that ran to completion (including guard-truncated partials).
    pub completed: u64,
    /// Jobs whose worker panicked (SSD111, confined to the job).
    pub panicked: u64,
    /// Guard fuel actually spent by finished jobs.
    pub fuel_spent: u64,
    /// Static lower-bound fuel estimates of admitted jobs, summed —
    /// compare with `fuel_spent` to judge the estimator.
    pub fuel_estimated: u64,
    /// Unspent grant fuel returned to session balances by finished jobs.
    pub fuel_refunded: u64,
    /// Refunds that exceeded their outstanding grant and were clamped
    /// (SSD211) — a scheduler bookkeeping bug counter; 0 in a healthy
    /// server.
    pub refund_clamped: u64,
}

/// Global metrics: counters plus latency samples and gauges.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    pub counters: Counters,
    /// submit→finish latency samples in microseconds: the most recent
    /// [`LATENCY_SAMPLE_CAP`](crate::sched::LATENCY_SAMPLE_CAP) finishes
    /// (a ring, so a long-running server stays bounded; the slot order
    /// is not the finish order once the ring wraps).
    pub latencies_us: Vec<u64>,
    /// Current run-queue depth (gauge).
    pub queue_depth: usize,
    /// High-water mark of the run queue.
    pub queue_peak: usize,
}

/// `p` in [0,100]; nearest-rank percentile of `samples` (0 if empty).
pub fn percentile(samples: &[u64], p: u64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (p as usize * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

impl Metrics {
    /// Render the `STATS` / `--metrics-dump` block. One `key value` pair
    /// per line, stable order, so scripts can grep it.
    pub fn render(&self) -> String {
        let c = &self.counters;
        let mut out = String::new();
        for (k, v) in [
            ("admitted", c.admitted),
            ("rejected", c.rejected),
            ("queued", c.queued),
            ("cancelled", c.cancelled),
            ("completed", c.completed),
            ("panicked", c.panicked),
            ("fuel_spent", c.fuel_spent),
            ("fuel_estimated", c.fuel_estimated),
            ("fuel_refunded", c.fuel_refunded),
            ("refund_clamped", c.refund_clamped),
            ("queue_depth", self.queue_depth as u64),
            ("queue_peak", self.queue_peak as u64),
            ("jobs_finished", c.completed + c.cancelled + c.panicked),
            ("latency_p50_us", percentile(&self.latencies_us, 50)),
            ("latency_p99_us", percentile(&self.latencies_us, 99)),
        ] {
            out.push_str(k);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }

    /// Render the same numbers in Prometheus text exposition format
    /// (`# TYPE` headers, `_total` counters, labeled series) — appended
    /// to `STATS` / `--metrics-dump` so a scrape target needs no extra
    /// endpoint. Key order is stable.
    pub fn render_prometheus(&self) -> String {
        let c = &self.counters;
        let mut out = String::new();
        out.push_str("# TYPE ssd_serve_jobs_total counter\n");
        for (outcome, v) in [
            ("admitted", c.admitted),
            ("rejected", c.rejected),
            ("queued", c.queued),
            ("cancelled", c.cancelled),
            ("completed", c.completed),
            ("panicked", c.panicked),
        ] {
            out.push_str(&format!(
                "ssd_serve_jobs_total{{outcome=\"{outcome}\"}} {v}\n"
            ));
        }
        out.push_str("# TYPE ssd_serve_fuel_total counter\n");
        for (kind, v) in [
            ("spent", c.fuel_spent),
            ("estimated", c.fuel_estimated),
            ("refunded", c.fuel_refunded),
        ] {
            out.push_str(&format!("ssd_serve_fuel_total{{kind=\"{kind}\"}} {v}\n"));
        }
        out.push_str("# TYPE ssd_serve_refund_clamped_total counter\n");
        out.push_str(&format!(
            "ssd_serve_refund_clamped_total {}\n",
            c.refund_clamped
        ));
        out.push_str("# TYPE ssd_serve_queue_depth gauge\n");
        out.push_str(&format!("ssd_serve_queue_depth {}\n", self.queue_depth));
        out.push_str("# TYPE ssd_serve_queue_peak gauge\n");
        out.push_str(&format!("ssd_serve_queue_peak {}\n", self.queue_peak));
        out.push_str("# TYPE ssd_serve_latency_us summary\n");
        for (q, p) in [("0.5", 50), ("0.9", 90), ("0.99", 99)] {
            out.push_str(&format!(
                "ssd_serve_latency_us{{quantile=\"{q}\"}} {}\n",
                percentile(&self.latencies_us, p)
            ));
        }
        out.push_str(&format!(
            "ssd_serve_latency_us_count {}\n",
            self.latencies_us.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[7], 50), 7);
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 50), 50);
        assert_eq!(percentile(&s, 99), 99);
        assert_eq!(percentile(&s, 100), 100);
        // Unsorted input is fine.
        assert_eq!(percentile(&[30, 10, 20], 50), 20);
    }

    #[test]
    fn render_is_greppable() {
        let m = Metrics {
            counters: Counters {
                admitted: 3,
                ..Counters::default()
            },
            latencies_us: vec![10, 20],
            queue_depth: 1,
            queue_peak: 2,
        };
        let text = m.render();
        assert!(text.contains("admitted 3\n"));
        assert!(text.contains("fuel_refunded 0\n"));
        assert!(text.contains("refund_clamped 0\n"));
        assert!(text.contains("latency_p50_us 10\n"));
        assert!(text.contains("latency_p99_us 20\n"));
    }

    #[test]
    fn prometheus_format_is_stable() {
        let m = Metrics {
            counters: Counters {
                admitted: 3,
                fuel_spent: 70,
                fuel_refunded: 30,
                ..Counters::default()
            },
            latencies_us: vec![10, 20],
            queue_depth: 1,
            queue_peak: 2,
        };
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE ssd_serve_jobs_total counter\n"));
        assert!(text.contains("ssd_serve_jobs_total{outcome=\"admitted\"} 3\n"));
        assert!(text.contains("ssd_serve_fuel_total{kind=\"spent\"} 70\n"));
        assert!(text.contains("ssd_serve_fuel_total{kind=\"refunded\"} 30\n"));
        assert!(text.contains("ssd_serve_refund_clamped_total 0\n"));
        assert!(text.contains("ssd_serve_queue_depth 1\n"));
        assert!(text.contains("ssd_serve_latency_us{quantile=\"0.5\"} 10\n"));
        assert!(text.contains("ssd_serve_latency_us_count 2\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<u64>().is_ok(), "bad value in {line}");
        }
    }
}
