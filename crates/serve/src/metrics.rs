//! Serving observability: per-session and global counters, fuel
//! spent-vs-estimated, queue depth, and latency percentiles.
//!
//! Counters are updated by the scheduler under its lock, so a snapshot
//! is always internally consistent. Latencies are recorded into a
//! log-bucketed [`Histogram`] (constant memory, exact count/sum/min/max,
//! percentiles with a bounded relative error), so p99 stays meaningful
//! after millions of finished jobs — the old fixed-size sample ring
//! silently forgot everything but the most recent 4096 finishes.

/// Number of histogram buckets: two sub-buckets per power of two from
/// 1 µs up to ~2^32 µs (≈ 71 minutes), values beyond clamp into the
/// last bucket. Bucket widths grow geometrically (×1.5 / ×1.33
/// alternating), so a reported percentile overestimates the true value
/// by at most 50%.
pub const HIST_BUCKETS: usize = 64;

/// A log-bucketed histogram of microsecond latencies.
///
/// Recording is O(1) and allocation-free; the struct is plain data so
/// the scheduler can keep one globally and one per session and clone
/// them out under its lock. `count`, `sum`, `min` and `max` are exact;
/// percentiles come from the bucket boundaries (upper bound of the
/// bucket holding the rank, exact `max` for the top rank).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index for a value: 0 holds 0, 1 holds 1, then two sub-buckets
/// per power of two (`2e + high-bit-after-the-leading-one`).
fn bucket_index(v: u64) -> usize {
    if v < 2 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (e - 1)) & 1) as usize;
    (2 * e + sub).min(HIST_BUCKETS - 1)
}

/// Inclusive upper bound of a bucket (the `le` label rendered for
/// Prometheus, and the value percentiles report).
fn bucket_upper(idx: usize) -> u64 {
    if idx < 2 {
        return idx as u64;
    }
    if idx >= HIST_BUCKETS - 1 {
        return u64::MAX;
    }
    let e = idx / 2;
    let sub = (idx % 2) as u64;
    (3 + sub) * (1u64 << (e - 1)) - 1
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample (O(1), no allocation).
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Nearest-rank percentile, `p` in [0,100]; 0 when empty. Reports
    /// the upper bound of the bucket holding the rank (≤50% above the
    /// true value), clamped to the exact `max`.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (p * self.count).div_ceil(100).max(1);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs, in
    /// ascending order — the shape of Prometheus `_bucket{le=...}`
    /// series (without the implicit `+Inf`, which equals [`count`]).
    ///
    /// [`count`]: Histogram::count
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                cum += c;
                out.push((bucket_upper(idx), cum));
            }
        }
        out
    }
}

/// Monotonic counters kept both globally and per session.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Counters {
    /// Jobs that passed admission (dispatched immediately or queued).
    pub admitted: u64,
    /// Jobs rejected at submit (per-job ceiling, session quota, queue
    /// full, or shutdown) — these cost zero engine fuel.
    pub rejected: u64,
    /// Jobs that waited in the run queue before dispatch.
    pub queued: u64,
    /// Jobs cancelled (while queued or mid-run).
    pub cancelled: u64,
    /// Jobs that ran to completion (including guard-truncated partials).
    pub completed: u64,
    /// Jobs whose worker panicked (SSD111, confined to the job).
    pub panicked: u64,
    /// Guard fuel actually spent by finished jobs.
    pub fuel_spent: u64,
    /// Static lower-bound fuel estimates of admitted jobs, summed —
    /// compare with `fuel_spent` to judge the estimator.
    pub fuel_estimated: u64,
    /// Unspent grant fuel returned to session balances by finished jobs.
    pub fuel_refunded: u64,
    /// Refunds that exceeded their outstanding grant and were clamped
    /// (SSD211) — a scheduler bookkeeping bug counter; 0 in a healthy
    /// server.
    pub refund_clamped: u64,
}

/// Global metrics: counters plus the latency histogram and gauges.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    pub counters: Counters,
    /// submit→finish latency in microseconds, every finish since the
    /// server started (log-bucketed: constant memory at any volume).
    pub latency: Histogram,
    /// Current run-queue depth (gauge).
    pub queue_depth: usize,
    /// High-water mark of the run queue.
    pub queue_peak: usize,
}

impl Metrics {
    /// Render the `STATS` / `--metrics-dump` block. One `key value` pair
    /// per line, stable order, so scripts can grep it.
    pub fn render(&self) -> String {
        let c = &self.counters;
        let mut out = String::new();
        for (k, v) in [
            ("admitted", c.admitted),
            ("rejected", c.rejected),
            ("queued", c.queued),
            ("cancelled", c.cancelled),
            ("completed", c.completed),
            ("panicked", c.panicked),
            ("fuel_spent", c.fuel_spent),
            ("fuel_estimated", c.fuel_estimated),
            ("fuel_refunded", c.fuel_refunded),
            ("refund_clamped", c.refund_clamped),
            ("queue_depth", self.queue_depth as u64),
            ("queue_peak", self.queue_peak as u64),
            ("jobs_finished", c.completed + c.cancelled + c.panicked),
            ("latency_p50_us", self.latency.percentile(50)),
            ("latency_p99_us", self.latency.percentile(99)),
            ("latency_max_us", self.latency.max()),
        ] {
            out.push_str(k);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }

    /// Render the same numbers in Prometheus text exposition format
    /// (`# TYPE` headers, `_total` counters, labeled series) — appended
    /// to `STATS` / `--metrics-dump` so a scrape target needs no extra
    /// endpoint. Key order is stable; the latency histogram renders both
    /// the summary quantiles and the cumulative `_bucket{le=...}` series
    /// (non-empty buckets plus the `+Inf` total).
    pub fn render_prometheus(&self) -> String {
        let c = &self.counters;
        let mut out = String::new();
        out.push_str("# TYPE ssd_serve_jobs_total counter\n");
        for (outcome, v) in [
            ("admitted", c.admitted),
            ("rejected", c.rejected),
            ("queued", c.queued),
            ("cancelled", c.cancelled),
            ("completed", c.completed),
            ("panicked", c.panicked),
        ] {
            out.push_str(&format!(
                "ssd_serve_jobs_total{{outcome=\"{outcome}\"}} {v}\n"
            ));
        }
        out.push_str("# TYPE ssd_serve_fuel_total counter\n");
        for (kind, v) in [
            ("spent", c.fuel_spent),
            ("estimated", c.fuel_estimated),
            ("refunded", c.fuel_refunded),
        ] {
            out.push_str(&format!("ssd_serve_fuel_total{{kind=\"{kind}\"}} {v}\n"));
        }
        out.push_str("# TYPE ssd_serve_refund_clamped_total counter\n");
        out.push_str(&format!(
            "ssd_serve_refund_clamped_total {}\n",
            c.refund_clamped
        ));
        out.push_str("# TYPE ssd_serve_queue_depth gauge\n");
        out.push_str(&format!("ssd_serve_queue_depth {}\n", self.queue_depth));
        out.push_str("# TYPE ssd_serve_queue_peak gauge\n");
        out.push_str(&format!("ssd_serve_queue_peak {}\n", self.queue_peak));
        out.push_str("# TYPE ssd_serve_latency_us summary\n");
        for (q, p) in [("0.5", 50), ("0.9", 90), ("0.99", 99)] {
            out.push_str(&format!(
                "ssd_serve_latency_us{{quantile=\"{q}\"}} {}\n",
                self.latency.percentile(p)
            ));
        }
        out.push_str(&format!(
            "ssd_serve_latency_us_count {}\n",
            self.latency.count()
        ));
        out.push_str(&format!(
            "ssd_serve_latency_us_sum {}\n",
            self.latency.sum()
        ));
        out.push_str("# TYPE ssd_serve_latency_us_bucket counter\n");
        for (le, cum) in self.latency.cumulative_buckets() {
            out.push_str(&format!(
                "ssd_serve_latency_us_bucket{{le=\"{le}\"}} {cum}\n"
            ));
        }
        out.push_str(&format!(
            "ssd_serve_latency_us_bucket{{le=\"+Inf\"}} {}\n",
            self.latency.count()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotonic_and_covers_u64() {
        let mut prev = 0;
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            5,
            6,
            7,
            10,
            100,
            1_000,
            1_000_000,
            60_000_000,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index not monotonic at {v}");
            assert!(idx < HIST_BUCKETS);
            // The value must not exceed its bucket's upper bound.
            assert!(v <= bucket_upper(idx), "{v} above upper of bucket {idx}");
            prev = idx;
        }
        // Upper bounds are strictly increasing below the clamp bucket.
        for i in 1..HIST_BUCKETS - 1 {
            assert!(bucket_upper(i) > bucket_upper(i - 1), "bucket {i}");
        }
    }

    #[test]
    fn percentile_bounds_error_to_the_bucket() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        for p in [50, 90, 99, 100] {
            let true_rank = (p * 1000u64).div_ceil(100);
            let got = h.percentile(p);
            assert!(got >= true_rank, "p{p}: {got} < {true_rank}");
            assert!(got <= true_rank * 3 / 2 + 1, "p{p}: {got} too loose");
        }
        assert_eq!(h.percentile(100), 1000); // exact max at the top
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(2000);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 7);
        assert_eq!(a.max(), 2000);
        assert_eq!(a.sum(), 2017);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.percentile(99), 0);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn render_is_greppable() {
        let mut latency = Histogram::new();
        latency.record(10);
        latency.record(20);
        let m = Metrics {
            counters: Counters {
                admitted: 3,
                ..Counters::default()
            },
            latency,
            queue_depth: 1,
            queue_peak: 2,
        };
        let text = m.render();
        assert!(text.contains("admitted 3\n"));
        assert!(text.contains("fuel_refunded 0\n"));
        assert!(text.contains("refund_clamped 0\n"));
        // 10 lands in bucket [8,11], 20 in [16,23]: the histogram
        // reports bucket upper bounds, max is exact.
        assert!(text.contains("latency_p50_us 11\n"));
        assert!(text.contains("latency_p99_us 20\n"));
        assert!(text.contains("latency_max_us 20\n"));
    }

    #[test]
    fn prometheus_format_is_stable() {
        let mut latency = Histogram::new();
        latency.record(10);
        latency.record(20);
        let m = Metrics {
            counters: Counters {
                admitted: 3,
                fuel_spent: 70,
                fuel_refunded: 30,
                ..Counters::default()
            },
            latency,
            queue_depth: 1,
            queue_peak: 2,
        };
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE ssd_serve_jobs_total counter\n"));
        assert!(text.contains("ssd_serve_jobs_total{outcome=\"admitted\"} 3\n"));
        assert!(text.contains("ssd_serve_fuel_total{kind=\"spent\"} 70\n"));
        assert!(text.contains("ssd_serve_fuel_total{kind=\"refunded\"} 30\n"));
        assert!(text.contains("ssd_serve_refund_clamped_total 0\n"));
        assert!(text.contains("ssd_serve_queue_depth 1\n"));
        assert!(text.contains("ssd_serve_latency_us{quantile=\"0.5\"} 11\n"));
        assert!(text.contains("ssd_serve_latency_us_count 2\n"));
        assert!(text.contains("ssd_serve_latency_us_sum 30\n"));
        // Cumulative bucket series: 10 ≤ 11, 20 ≤ 23, then +Inf.
        assert!(text.contains("ssd_serve_latency_us_bucket{le=\"11\"} 1\n"));
        assert!(text.contains("ssd_serve_latency_us_bucket{le=\"23\"} 2\n"));
        assert!(text.contains("ssd_serve_latency_us_bucket{le=\"+Inf\"} 2\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<u64>().is_ok(), "bad value in {line}");
        }
    }
}
