//! The TCP veneer: frames over loopback, one reader thread per
//! connection, one forwarder thread per streaming job.
//!
//! All scheduling behavior lives in [`Server`]; this module only
//! translates frames to the in-process API:
//!
//! ```text
//! client: HELLO fuel=10000         server: OK session s1
//! client: QUERY select ...         server: OK job=1 dispatched
//!                                  server: JOB 1 CHUNK\n{...}
//!                                  server: JOB 1 DONE results=3 fuel=42
//! client: STATS                    server: STATS\nadmitted 1\n...
//! client: BYE                      server: OK bye        (connection closes)
//! ```
//!
//! A dropped connection closes its session, which cancels its queued
//! and running jobs — the disconnect-teardown path shares all its code
//! with `SessionHandle::close`.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ssd_diag::{Code, Diagnostic};
use ssd_store::Txn;

use crate::protocol::{decode_frame, encode_frame, parse_command_with, Command, MAX_FRAME};
use crate::quota::SessionQuota;
use crate::sched::{JobId, JobKind};
use crate::server::{JobEvent, Server, SessionHandle, SubmitError};

fn send_frame(writer: &Mutex<TcpStream>, payload: &str) -> std::io::Result<()> {
    let bytes = encode_frame(payload);
    writer.lock().expect("writer lock").write_all(&bytes)
}

/// Accept connections until [`Server::request_shutdown`] fires, then
/// return so the caller can run the graceful drain. `default_quota`
/// seeds every `HELLO`; its fields are what the client's
/// `fuel=`/`jobs=`/... overrides apply to. The `SHUTDOWN` verb only
/// works when `allow_shutdown` is set (the CLI flag
/// `--allow-remote-shutdown`): the loopback bind is shared by every
/// local process, and an unauthenticated client should not be able to
/// stop the server for everyone else. Connection threads are detached;
/// they die with their sockets.
pub fn serve_tcp(
    server: Arc<Server>,
    listener: TcpListener,
    default_quota: SessionQuota,
    allow_shutdown: bool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        if server.shutdown_requested() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let server = Arc::clone(&server);
                let quota = default_quota.clone();
                std::thread::spawn(move || {
                    let _ = handle_connection(server, stream, quota, allow_shutdown);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection(
    server: Arc<Server>,
    stream: TcpStream,
    default_quota: SessionQuota,
    allow_shutdown: bool,
) -> std::io::Result<()> {
    let mut reader = stream.try_clone()?;
    let writer = Arc::new(Mutex::new(stream));
    let mut session: Option<Arc<SessionHandle>> = None;
    // Mutations staged by INSERT/DELETE, owned by the connection until
    // COMMIT submits them as one transaction (or the connection dies,
    // discarding them — staging is not durable by design).
    let mut staged = Txn::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut read_chunk = [0u8; 4096];
    loop {
        // Drain every complete frame already buffered.
        loop {
            match decode_frame(&buf) {
                Ok(None) => break,
                Ok(Some((payload, consumed))) => {
                    buf.drain(..consumed);
                    match dispatch_command(
                        &server,
                        &writer,
                        &mut session,
                        &mut staged,
                        &default_quota,
                        allow_shutdown,
                        &payload,
                    )? {
                        Flow::Continue => {}
                        Flow::Close => return Ok(()),
                    }
                }
                Err(e) => {
                    // Framing is unrecoverable: report and drop the
                    // connection (closing the session via Drop).
                    let _ = send_frame(&writer, &format!("ERR {}", e.diagnostic().headline()));
                    return Ok(());
                }
            }
        }
        if buf.len() > MAX_FRAME + 64 {
            let _ = send_frame(&writer, "ERR error[SSD210]: frame buffer overflow");
            return Ok(());
        }
        match reader.read(&mut read_chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => buf.extend_from_slice(&read_chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Ok(()),
        }
    }
}

enum Flow {
    Continue,
    Close,
}

/// Total staged body bytes a connection may hold; one frame's worth, so
/// a client cannot park unbounded memory on the server between commits.
const MAX_STAGED_BYTES: u64 = MAX_FRAME as u64;

fn dispatch_command(
    server: &Arc<Server>,
    writer: &Arc<Mutex<TcpStream>>,
    session: &mut Option<Arc<SessionHandle>>,
    staged: &mut Txn,
    default_quota: &SessionQuota,
    allow_shutdown: bool,
    payload: &str,
) -> std::io::Result<Flow> {
    let cmd = match parse_command_with(payload, default_quota) {
        Ok(c) => c,
        Err(d) => {
            send_frame(writer, &format!("ERR {}", d.headline()))?;
            return Ok(Flow::Continue);
        }
    };
    match cmd {
        Command::Hello(quota) => {
            if session.is_some() {
                send_frame(writer, "ERR error[SSD210]: session already open")?;
            } else {
                let handle = server.open_session(quota);
                send_frame(writer, &format!("OK session {}", handle.id))?;
                *session = Some(Arc::new(handle));
            }
        }
        Command::Query { text, optimized } => {
            let kind = if optimized {
                JobKind::QueryOptimized
            } else {
                JobKind::Query
            };
            submit(writer, session, kind, &text)?;
        }
        Command::Datalog(text) => {
            submit(writer, session, JobKind::Datalog, &text)?;
        }
        Command::Rpe(text) => {
            submit(writer, session, JobKind::Rpe, &text)?;
        }
        Command::Insert(literal) => {
            stage(server, writer, staged, ssd_store::Op::Insert(literal))?;
        }
        Command::Delete(label) => {
            stage(server, writer, staged, ssd_store::Op::Delete(label))?;
        }
        Command::Commit => {
            if !server.writable() {
                send_frame(writer, &format!("ERR {}", read_only_diag().headline()))?;
            } else if staged.is_empty() {
                send_frame(
                    writer,
                    "ERR error[SSD210]: COMMIT with no staged operations",
                )?;
            } else {
                let script = staged.to_script();
                if submit(writer, session, JobKind::Commit, &script)? {
                    *staged = Txn::new();
                }
            }
        }
        Command::Cancel(id) => {
            let Some(sess) = session else {
                send_frame(writer, "ERR error[SSD210]: HELLO first")?;
                return Ok(Flow::Continue);
            };
            match sess.cancel(JobId(id)) {
                Ok(running) => send_frame(
                    writer,
                    &format!(
                        "OK cancelled job={id} ({})",
                        if running { "was running" } else { "was queued" }
                    ),
                )?,
                Err(d) => send_frame(writer, &format!("ERR {}", d.headline()))?,
            }
        }
        Command::Stats => {
            let text = server.stats_text(session.as_ref().map(|s| s.id));
            send_frame(writer, &format!("STATS\n{text}"))?;
        }
        Command::Bye => {
            if let Some(sess) = session.take() {
                sess.close();
            }
            send_frame(writer, "OK bye")?;
            return Ok(Flow::Close);
        }
        Command::Shutdown => {
            if !allow_shutdown {
                send_frame(
                    writer,
                    "ERR error[SSD210]: SHUTDOWN is disabled \
                     (start the server with --allow-remote-shutdown)",
                )?;
                return Ok(Flow::Continue);
            }
            server.request_shutdown();
            send_frame(writer, "OK shutting down")?;
            return Ok(Flow::Close);
        }
    }
    Ok(Flow::Continue)
}

/// Reject a mutation verb on a store-less server before admission.
fn read_only_diag() -> Diagnostic {
    Diagnostic::new(
        Code::ReadOnlyStore,
        "server is read-only: started without --data-dir",
    )
}

/// Stage one INSERT/DELETE on the connection, validating it eagerly so
/// the client learns about a bad literal at the verb, not at COMMIT.
fn stage(
    server: &Arc<Server>,
    writer: &Arc<Mutex<TcpStream>>,
    staged: &mut Txn,
    op: ssd_store::Op,
) -> std::io::Result<()> {
    if !server.writable() {
        return send_frame(writer, &format!("ERR {}", read_only_diag().headline()));
    }
    let check = match &op {
        ssd_store::Op::Insert(lit) => ssd_store::validate_insert(lit)
            .map_err(|e| format!("INSERT literal does not parse: {e}")),
        ssd_store::Op::Delete(label) => ssd_store::validate_delete(label),
    };
    if let Err(e) = check {
        return send_frame(writer, &format!("ERR error[SSD210]: {e}"));
    }
    if staged.body_bytes() + op.body().len() as u64 > MAX_STAGED_BYTES {
        return send_frame(
            writer,
            &format!(
                "ERR error[SSD210]: staged mutations exceed {MAX_STAGED_BYTES} byte(s); \
                 COMMIT first"
            ),
        );
    }
    staged.push(op);
    send_frame(writer, &format!("OK staged ops={}", staged.len()))
}

/// Submit a job; `Ok(true)` means it was accepted (dispatched or queued).
fn submit(
    writer: &Arc<Mutex<TcpStream>>,
    session: &mut Option<Arc<SessionHandle>>,
    kind: JobKind,
    text: &str,
) -> std::io::Result<bool> {
    let Some(sess) = session else {
        send_frame(writer, "ERR error[SSD210]: HELLO first")?;
        return Ok(false);
    };
    match sess.submit(kind, text) {
        Ok(handle) => {
            let job = handle.job;
            send_frame(
                writer,
                &format!(
                    "OK job={job} {}",
                    if handle.queued {
                        "queued"
                    } else {
                        "dispatched"
                    }
                ),
            )?;
            // Forward the job's event stream without blocking the reader.
            let writer = Arc::clone(writer);
            std::thread::spawn(move || {
                for ev in handle.events().iter() {
                    let done = !matches!(ev, JobEvent::Chunk(_));
                    let frame = match ev {
                        JobEvent::Chunk(c) => format!("JOB {job} CHUNK\n{c}"),
                        JobEvent::Done { summary } => format!("JOB {job} DONE {summary}"),
                        JobEvent::Failed(e) => format!("JOB {job} ERR {e}"),
                    };
                    if send_frame(&writer, &frame).is_err() || done {
                        break;
                    }
                }
            });
            Ok(true)
        }
        Err(SubmitError::Rejected(d)) => {
            send_frame(writer, &format!("ERR {}", d.headline()))?;
            Ok(false)
        }
        Err(SubmitError::Invalid(m)) => {
            send_frame(writer, &format!("ERR {m}"))?;
            Ok(false)
        }
    }
}
