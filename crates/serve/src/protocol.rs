//! The wire protocol: length-prefixed UTF-8 frames carrying one command
//! or one response each.
//!
//! A frame is `SSD <len>\n` followed by exactly `len` payload bytes.
//! The header is ASCII so the protocol is easy to speak from `nc` or a
//! test script; the length prefix (rather than line termination) lets
//! payloads — query texts, literal chunks — contain newlines freely.
//! Frames are capped at [`MAX_FRAME`]; an oversized header is a hard
//! error so a malicious length can never cause an allocation.
//!
//! Command payloads are a verb, then arguments:
//!
//! ```text
//! HELLO fuel=10000 memory=1048576 jobs=2 job-fuel=5000 job-memory=65536
//! QUERY select T from db.Entry.%.Title T
//! QUERYOPT select ...      (optimizer-ordered bindings)
//! DATALOG reach(X) :- ...
//! RPE Entry.%.Title        (desugars to `select X from db.<rpe> X`)
//! INSERT {Movie: {Title: "Z"}}   (stage: union this literal at the root)
//! DELETE Movie                   (stage: drop edges labeled `Movie`)
//! COMMIT                         (submit the staged batch as one txn)
//! CANCEL 3
//! STATS
//! BYE
//! SHUTDOWN
//! ```
//!
//! `INSERT`/`DELETE` stage operations on the *connection*; nothing is
//! scheduled or written until `COMMIT` submits the batch as one job,
//! which goes through the same admission control as queries and — when
//! the server has a data directory — commits atomically through the
//! write-ahead log. On a server without a store every mutation verb is
//! rejected with SSD403.
//!
//! All parse failures are SSD210 diagnostics, never panics — the fuzz
//! suite in `tests/fuzz_parsers.rs` holds the parser to that.

use ssd_diag::{Code, Diagnostic};

use crate::quota::SessionQuota;

/// Hard cap on a frame payload (1 MiB).
pub const MAX_FRAME: usize = 1024 * 1024;

/// Why a byte sequence is not a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The bytes up to the first newline are not `SSD <decimal>`.
    BadHeader,
    /// The declared length exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// The payload is not UTF-8.
    BadUtf8,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadHeader => write!(f, "malformed frame header (want `SSD <len>\\n`)"),
            FrameError::Oversized(n) => {
                write!(f, "frame of {n} byte(s) exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::BadUtf8 => write!(f, "frame payload is not UTF-8"),
        }
    }
}

impl FrameError {
    /// As an SSD210 protocol diagnostic.
    pub fn diagnostic(&self) -> Diagnostic {
        Diagnostic::new(Code::ProtocolError, self.to_string())
    }
}

/// Encode one payload as a frame.
pub fn encode_frame(payload: &str) -> Vec<u8> {
    let mut out = format!("SSD {}\n", payload.len()).into_bytes();
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Try to decode one frame from the front of `buf`.
///
/// `Ok(Some((payload, consumed)))` on a complete frame, `Ok(None)` when
/// more bytes are needed (truncated header or payload), `Err` on a
/// malformed or oversized header or non-UTF-8 payload.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(String, usize)>, FrameError> {
    // Header: `SSD <decimal>\n`, at most "SSD 1048576\n" = 12 bytes.
    const MAX_HEADER: usize = 16;
    let Some(nl) = buf.iter().take(MAX_HEADER).position(|&b| b == b'\n') else {
        if buf.len() >= MAX_HEADER {
            return Err(FrameError::BadHeader);
        }
        return Ok(None);
    };
    let header = &buf[..nl];
    let digits = header.strip_prefix(b"SSD ").ok_or(FrameError::BadHeader)?;
    if digits.is_empty() || !digits.iter().all(|b| b.is_ascii_digit()) {
        return Err(FrameError::BadHeader);
    }
    let len: usize = std::str::from_utf8(digits)
        .expect("ascii digits")
        .parse()
        .map_err(|_| FrameError::BadHeader)?;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let start = nl + 1;
    if buf.len() < start + len {
        return Ok(None);
    }
    let payload = std::str::from_utf8(&buf[start..start + len])
        .map_err(|_| FrameError::BadUtf8)?
        .to_string();
    Ok(Some((payload, start + len)))
}

/// A parsed client command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Open the session, optionally overriding quota fields.
    Hello(SessionQuota),
    /// Submit a select query (optimized = `QUERYOPT`).
    Query { text: String, optimized: bool },
    /// Submit a graph-datalog program.
    Datalog(String),
    /// Submit a bare regular path expression.
    Rpe(String),
    /// Stage an INSERT of a graph literal on this connection.
    Insert(String),
    /// Stage a DELETE of a symbol label on this connection.
    Delete(String),
    /// Commit the connection's staged mutations as one transaction.
    Commit,
    /// Cancel a job by id.
    Cancel(u64),
    /// Ask for the metrics block.
    Stats,
    /// Close the session.
    Bye,
    /// Ask the server to drain and exit.
    Shutdown,
}

/// Parse one command payload. Errors are SSD210.
pub fn parse_command(payload: &str) -> Result<Command, Diagnostic> {
    parse_command_with(payload, &SessionQuota::default())
}

/// [`parse_command`], but `HELLO` fields override `base` instead of the
/// built-in quota defaults — the seam through which `ssd serve`'s
/// `--session-fuel`/`--job-fuel`/... flags reach new sessions.
pub fn parse_command_with(payload: &str, base: &SessionQuota) -> Result<Command, Diagnostic> {
    let err = |msg: String| Err(Diagnostic::new(Code::ProtocolError, msg));
    let payload = payload.trim();
    let (verb, rest) = match payload.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (payload, ""),
    };
    match verb {
        "HELLO" => parse_hello(rest, base),
        "QUERY" | "QUERYOPT" => {
            if rest.is_empty() {
                return err(format!("{verb} needs a query text"));
            }
            Ok(Command::Query {
                text: rest.to_string(),
                optimized: verb == "QUERYOPT",
            })
        }
        "DATALOG" => {
            if rest.is_empty() {
                return err("DATALOG needs a program".to_string());
            }
            Ok(Command::Datalog(rest.to_string()))
        }
        "RPE" => {
            if rest.is_empty() {
                return err("RPE needs a path expression".to_string());
            }
            Ok(Command::Rpe(rest.to_string()))
        }
        "INSERT" => {
            if rest.is_empty() {
                return err("INSERT needs a graph literal".to_string());
            }
            Ok(Command::Insert(rest.to_string()))
        }
        "DELETE" => {
            if rest.is_empty() {
                return err("DELETE needs a label name".to_string());
            }
            Ok(Command::Delete(rest.to_string()))
        }
        "COMMIT" => {
            if !rest.is_empty() {
                return err(format!("COMMIT takes no arguments, got `{rest}`"));
            }
            Ok(Command::Commit)
        }
        "CANCEL" => match rest.parse::<u64>() {
            Ok(id) => Ok(Command::Cancel(id)),
            Err(_) => err(format!("CANCEL needs a numeric job id, got `{rest}`")),
        },
        "STATS" => Ok(Command::Stats),
        "BYE" => Ok(Command::Bye),
        "SHUTDOWN" => Ok(Command::Shutdown),
        "" => err("empty command".to_string()),
        other => err(format!("unknown verb `{other}`")),
    }
}

/// `HELLO [fuel=N] [memory=N] [jobs=N] [job-fuel=N] [job-memory=N]`.
fn parse_hello(rest: &str, base: &SessionQuota) -> Result<Command, Diagnostic> {
    let mut quota = base.clone();
    for field in rest.split_whitespace() {
        let Some((key, value)) = field.split_once('=') else {
            return Err(Diagnostic::new(
                Code::ProtocolError,
                format!("HELLO field `{field}` is not key=value"),
            ));
        };
        let n: u64 = value.parse().map_err(|_| {
            Diagnostic::new(
                Code::ProtocolError,
                format!("HELLO field `{key}` needs a number, got `{value}`"),
            )
        })?;
        match key {
            "fuel" => quota.fuel = Some(n),
            "memory" => quota.memory = Some(n),
            "jobs" => quota.max_concurrent = (n as usize).max(1),
            "job-fuel" => quota.job_fuel = n,
            "job-memory" => quota.job_memory = n,
            other => {
                return Err(Diagnostic::new(
                    Code::ProtocolError,
                    format!("unknown HELLO field `{other}`"),
                ))
            }
        }
    }
    Ok(Command::Hello(quota))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let f = encode_frame("QUERY select T from db.T T\nwith a newline");
        let (payload, consumed) = decode_frame(&f).unwrap().unwrap();
        assert_eq!(consumed, f.len());
        assert!(payload.contains("newline"));
        // Trailing bytes of the next frame are not consumed.
        let mut two = f.clone();
        two.extend_from_slice(&encode_frame("STATS"));
        let (_, consumed) = decode_frame(&two).unwrap().unwrap();
        assert_eq!(consumed, f.len());
    }

    #[test]
    fn truncated_frames_want_more_bytes() {
        assert_eq!(decode_frame(b"SS"), Ok(None));
        assert_eq!(decode_frame(b"SSD 10\nabc"), Ok(None));
    }

    #[test]
    fn bad_and_oversized_headers_are_errors() {
        assert_eq!(
            decode_frame(b"GET / HTTP/1.0\n"),
            Err(FrameError::BadHeader)
        );
        assert_eq!(decode_frame(b"SSD x\n"), Err(FrameError::BadHeader));
        assert_eq!(decode_frame(b"SSD \n"), Err(FrameError::BadHeader));
        assert_eq!(
            decode_frame(b"SSD 99999999\n"),
            Err(FrameError::Oversized(99_999_999))
        );
        // A header that never terminates is rejected, not buffered forever.
        assert_eq!(decode_frame(&[b'A'; 32]), Err(FrameError::BadHeader));
        assert_eq!(decode_frame(b"SSD 2\n\xff\xfe"), Err(FrameError::BadUtf8));
    }

    #[test]
    fn commands_parse() {
        assert_eq!(
            parse_command("QUERY select T from db.T T"),
            Ok(Command::Query {
                text: "select T from db.T T".to_string(),
                optimized: false,
            })
        );
        assert!(matches!(parse_command("STATS"), Ok(Command::Stats)));
        assert!(matches!(parse_command("CANCEL 7"), Ok(Command::Cancel(7))));
        assert_eq!(
            parse_command("INSERT {Movie: {Title: \"Z\"}}"),
            Ok(Command::Insert("{Movie: {Title: \"Z\"}}".to_string()))
        );
        assert_eq!(
            parse_command("DELETE Movie"),
            Ok(Command::Delete("Movie".to_string()))
        );
        assert!(matches!(parse_command("COMMIT"), Ok(Command::Commit)));
        let Ok(Command::Hello(q)) = parse_command("HELLO fuel=100 jobs=3") else {
            panic!("HELLO should parse");
        };
        assert_eq!(q.fuel, Some(100));
        assert_eq!(q.max_concurrent, 3);
    }

    #[test]
    fn bad_commands_are_ssd210() {
        for bad in [
            "",
            "FROB x",
            "CANCEL x",
            "HELLO fuel",
            "HELLO fuel=abc",
            "QUERY",
            "INSERT",
            "DELETE",
            "COMMIT now",
        ] {
            let d = parse_command(bad).unwrap_err();
            assert_eq!(d.code, Code::ProtocolError, "{bad}");
        }
    }
}
