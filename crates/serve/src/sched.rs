//! The admission-controlled run queue: a *pure* scheduler state machine.
//!
//! All scheduling decisions — admit, queue, reject, dispatch, refund —
//! live here, with no threads, sockets, or wall clock. The server wraps
//! this in a mutex and a worker pool; the deterministic test harness
//! drives it directly with a [`ManualClock`](crate::clock::ManualClock)
//! and asserts on the [`TraceEvent`] log, which records every transition
//! in decision order.
//!
//! Admission happens *before* any engine fuel is spent: a submitted
//! job's static [`CostEnvelope`] is checked against the session's
//! per-job ceiling and remaining balance ([`Budget::admit`] rejects only
//! when the envelope's lower bound provably exceeds a limit). Admitted
//! jobs either dispatch immediately — receiving a checked
//! [`Budget::split`] of the session balance — or wait in a bounded FIFO
//! queue. When a job finishes, the unspent remainder of its grant is
//! refunded and the queue is re-scanned; a queued job whose session
//! balance has meanwhile been drained is *late-rejected* (SSD200) rather
//! than dispatched with a grant it was never admitted against.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use ssd_diag::{Code, Diagnostic};
use ssd_guard::{Budget, CancelToken, CostEnvelope};

use crate::clock::Clock;
use crate::metrics::{Counters, Histogram, Metrics};
use crate::quota::SessionQuota;

/// Most recent trace events retained. Truncation is deterministic
/// (purely a function of the decision sequence), so trace equality
/// across identical runs still holds after it kicks in.
pub const TRACE_CAP: usize = 4096;

/// Most recent trace events retained *per session* (the `STATS`
/// per-session breakdown shows these); same deterministic batch
/// truncation as the global trace.
pub const SESSION_TRACE_CAP: usize = 64;

/// Identifies a session for the lifetime of a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// Identifies a job (`CANCEL <job-id>` uses the inner number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// What kind of evaluation a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    Query,
    QueryOptimized,
    Datalog,
    /// A bare regular path expression; desugared to a `select` over it.
    Rpe,
    /// A durable write: a staged INSERT/DELETE batch committed through
    /// the store. Write budgets flow through the same admission pipeline
    /// as reads — the envelope is sized from the transaction script.
    Commit,
}

/// A dispatch order: everything a worker needs to run one job.
#[derive(Debug)]
pub struct Ticket {
    pub job: JobId,
    pub session: SessionId,
    pub kind: JobKind,
    pub text: String,
    /// The admitted per-job budget (grant split off the session balance,
    /// with the job's cancellation token attached).
    pub budget: Budget,
    pub grant_fuel: u64,
    pub grant_memory: u64,
}

/// Outcome of a submit.
#[derive(Debug)]
pub enum Decision {
    /// A worker slot and grant were available: run it now.
    Dispatch(Ticket),
    /// Admitted but waiting; `depth` is its 1-based queue position.
    Queued { job: JobId, depth: usize },
    /// Not admitted; the diagnostic says why (SSD030/SSD2xx). Costs
    /// zero engine fuel.
    Rejected(Diagnostic),
}

/// How a dispatched job ended, as reported by the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishKind {
    /// Ran to completion (including guard-truncated partial results and
    /// ordinary evaluation errors — the slot was used and released).
    Completed,
    /// Ended because its cancellation token fired.
    Cancelled,
    /// The worker caught a panic from the engine (SSD111).
    Panicked,
}

/// A queue transition triggered by a finished job.
#[derive(Debug)]
pub enum Dequeued {
    /// This queued job can run now.
    Dispatch(Ticket),
    /// This queued job's session balance was drained by jobs that ran
    /// before it: rejected after queuing, without dispatch.
    LateReject { job: JobId, diag: Diagnostic },
}

/// Everything the trace records; one event per scheduler transition, in
/// decision order. `Vec<TraceEvent>` equality across runs is the
/// determinism contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    SessionOpened {
        session: SessionId,
    },
    Submitted {
        job: JobId,
        session: SessionId,
    },
    Dispatched {
        job: JobId,
        grant_fuel: u64,
    },
    Queued {
        job: JobId,
        depth: usize,
    },
    Rejected {
        job: JobId,
        code: Code,
    },
    Completed {
        job: JobId,
        fuel_spent: u64,
    },
    Cancelled {
        job: JobId,
    },
    Panicked {
        job: JobId,
    },
    /// A finish tried to refund more than its session's outstanding
    /// grant (SSD211): the refund was clamped and the books kept
    /// consistent, but this is a scheduler bug worth surfacing.
    RefundClamped {
        job: JobId,
        fuel_excess: u64,
        memory_excess: u64,
    },
    SessionClosed {
        session: SessionId,
    },
    ShutdownBegan,
}

struct Session {
    quota: SessionQuota,
    balance: Budget,
    active: usize,
    closed: bool,
    counters: Counters,
    /// Per-session submit→finish latency histogram (constant memory,
    /// covers every finish over the session's lifetime).
    latency: Histogram,
    /// This session's slice of the decision trace (most recent
    /// [`SESSION_TRACE_CAP`] events, deterministic batch truncation).
    recent: Vec<TraceEvent>,
}

enum JobState {
    Queued,
    Running { grant_fuel: u64, grant_memory: u64 },
}

struct Job {
    session: SessionId,
    kind: JobKind,
    text: String,
    envelope: CostEnvelope,
    state: JobState,
    cancel: CancelToken,
    submitted_at: u64,
}

/// See the module docs. All methods take `&mut self`; the server holds
/// the scheduler behind one mutex so every transition is atomic.
///
/// Memory stays bounded over a long-running server: finished jobs are
/// evicted from the job map (only queued and running jobs are live),
/// the trace keeps the last [`TRACE_CAP`] events, and latencies live in
/// constant-size log-bucketed [`Histogram`]s.
pub struct Scheduler {
    clock: Arc<dyn Clock>,
    workers: usize,
    busy: usize,
    queue_cap: usize,
    queue: VecDeque<JobId>,
    /// Queued and running jobs only; finished jobs are evicted.
    jobs: HashMap<JobId, Job>,
    sessions: HashMap<SessionId, Session>,
    next_session: u64,
    next_job: u64,
    trace: Vec<TraceEvent>,
    metrics: Metrics,
    shutting_down: bool,
}

impl Scheduler {
    /// `workers` ≥ 1 worker slots, a run queue bounded at `queue_cap`.
    pub fn new(workers: usize, queue_cap: usize, clock: Arc<dyn Clock>) -> Scheduler {
        Scheduler {
            clock,
            workers: workers.max(1),
            busy: 0,
            queue_cap,
            queue: VecDeque::new(),
            jobs: HashMap::new(),
            sessions: HashMap::new(),
            next_session: 0,
            next_job: 0,
            trace: Vec::new(),
            metrics: Metrics::default(),
            shutting_down: false,
        }
    }

    /// Append a trace event, keeping the log bounded: let it grow to
    /// twice [`TRACE_CAP`], then drop the oldest half in one batch
    /// (amortized O(1), and deterministic given the decision sequence).
    fn record(&mut self, ev: TraceEvent) {
        self.trace.push(ev);
        if self.trace.len() >= TRACE_CAP * 2 {
            let excess = self.trace.len() - TRACE_CAP;
            self.trace.drain(..excess);
        }
    }

    /// [`Scheduler::record`], additionally mirroring the event into the
    /// session's own bounded trace (the `STATS` per-session breakdown).
    fn record_for(&mut self, session: SessionId, ev: TraceEvent) {
        if let Some(s) = self.sessions.get_mut(&session) {
            s.recent.push(ev.clone());
            if s.recent.len() >= SESSION_TRACE_CAP * 2 {
                let excess = s.recent.len() - SESSION_TRACE_CAP;
                s.recent.drain(..excess);
            }
        }
        self.record(ev);
    }

    /// Open a session under `quota`.
    pub fn open_session(&mut self, quota: SessionQuota) -> SessionId {
        self.next_session += 1;
        let id = SessionId(self.next_session);
        self.sessions.insert(
            id,
            Session {
                balance: quota.session_budget(),
                quota,
                active: 0,
                closed: false,
                counters: Counters::default(),
                latency: Histogram::new(),
                recent: Vec::new(),
            },
        );
        self.record_for(id, TraceEvent::SessionOpened { session: id });
        id
    }

    /// Submit a job: estimate already done (the `envelope` argument), so
    /// this is pure admission — reject, queue, or dispatch.
    pub fn submit(
        &mut self,
        session: SessionId,
        kind: JobKind,
        text: String,
        envelope: CostEnvelope,
    ) -> Decision {
        self.next_job += 1;
        let job = JobId(self.next_job);
        self.record_for(session, TraceEvent::Submitted { job, session });

        let reject = |sched: &mut Scheduler, job, diag: Diagnostic| {
            if let Some(s) = sched.sessions.get_mut(&session) {
                s.counters.rejected += 1;
            }
            sched.metrics.counters.rejected += 1;
            sched.record_for(
                session,
                TraceEvent::Rejected {
                    job,
                    code: diag.code,
                },
            );
            Decision::Rejected(diag)
        };

        if self.shutting_down {
            return reject(
                self,
                job,
                Diagnostic::new(
                    Code::ServerShuttingDown,
                    "server is shutting down; no new jobs accepted".to_string(),
                ),
            );
        }
        let Some(sess) = self.sessions.get(&session) else {
            return reject(
                self,
                job,
                Diagnostic::new(Code::ProtocolError, format!("no such session {session}")),
            );
        };
        if sess.closed {
            return reject(
                self,
                job,
                Diagnostic::new(Code::ProtocolError, format!("session {session} is closed")),
            );
        }

        // Per-job ceiling: can this envelope ever fit in one grant?
        if let Err(d) = sess.quota.job_ceiling().admit(&envelope) {
            return reject(self, job, d);
        }
        // Remaining session balance: SSD200 once the quota is drained.
        if sess.balance.admit(&envelope).is_err() {
            let d = Diagnostic::new(
                Code::SessionQuotaExhausted,
                format!(
                    "session {session} quota exhausted: the estimate needs at least \
                     {} fuel / {} byte(s), more than the session has left",
                    envelope.fuel.lo, envelope.memory.lo
                ),
            );
            return reject(self, job, d);
        }

        let can_dispatch = self.busy < self.workers && sess.active < sess.quota.max_concurrent;
        if !can_dispatch && self.queue.len() >= self.queue_cap {
            return reject(
                self,
                job,
                Diagnostic::new(
                    Code::QueueFull,
                    format!("run queue is full ({} waiting)", self.queue_cap),
                ),
            );
        }

        // Admitted. Charge the estimate to the books.
        let est = envelope.fuel.lo;
        let sess = self.sessions.get_mut(&session).expect("checked above");
        sess.counters.admitted += 1;
        sess.counters.fuel_estimated += est;
        self.metrics.counters.admitted += 1;
        self.metrics.counters.fuel_estimated += est;

        self.jobs.insert(
            job,
            Job {
                session,
                kind,
                text,
                envelope,
                state: JobState::Queued,
                cancel: CancelToken::new(),
                submitted_at: self.clock.now_micros(),
            },
        );

        if can_dispatch {
            let ticket = self.dispatch(job);
            self.record_for(
                session,
                TraceEvent::Dispatched {
                    job,
                    grant_fuel: ticket.grant_fuel,
                },
            );
            return Decision::Dispatch(ticket);
        }

        self.queue.push_back(job);
        let depth = self.queue.len();
        self.metrics.queue_depth = depth;
        self.metrics.queue_peak = self.metrics.queue_peak.max(depth);
        let sess = self.sessions.get_mut(&session).expect("checked above");
        sess.counters.queued += 1;
        self.metrics.counters.queued += 1;
        self.record_for(session, TraceEvent::Queued { job, depth });
        Decision::Queued { job, depth }
    }

    /// Take a worker slot and a grant for `job` (which must be admitted
    /// and not yet running). Infallible by construction: callers check
    /// admission and capacity first.
    fn dispatch(&mut self, job: JobId) -> Ticket {
        let j = self.jobs.get_mut(&job).expect("dispatch of unknown job");
        let sess = self.sessions.get_mut(&j.session).expect("job has session");
        let (grant_fuel, grant_memory) = sess.quota.job_grant(&sess.balance);
        let budget = sess
            .balance
            .split(grant_fuel, grant_memory)
            .expect("grant is clamped to the balance")
            .cancel_token(j.cancel.clone());
        sess.active += 1;
        self.busy += 1;
        j.state = JobState::Running {
            grant_fuel,
            grant_memory,
        };
        Ticket {
            job,
            session: j.session,
            kind: j.kind,
            text: j.text.clone(),
            budget,
            grant_fuel,
            grant_memory,
        }
    }

    /// A worker finished `job`: release its slot, refund the unspent
    /// grant, record metrics, evict the job, and re-scan the queue.
    /// Returns the queue transitions (dispatches and late rejections)
    /// this unblocked.
    pub fn complete(
        &mut self,
        job: JobId,
        fuel_spent: u64,
        memory_spent: u64,
        finish: FinishKind,
    ) -> Vec<Dequeued> {
        let j = self.jobs.remove(&job).expect("complete of unknown job");
        let JobState::Running {
            grant_fuel,
            grant_memory,
        } = j.state
        else {
            panic!("complete of a job that is not running");
        };
        let session = j.session;
        let latency = self.clock.now_micros().saturating_sub(j.submitted_at);
        self.busy -= 1;

        let sess = self.sessions.get_mut(&session).expect("job has session");
        sess.active -= 1;
        // The guard can overshoot the limit by one check interval, so
        // clamp: refund exactly the unspent part of the grant. The
        // outcome is checked: a refund beyond the session's outstanding
        // grants means the books are wrong (SSD211), and is surfaced
        // rather than silently absorbed.
        let refund_fuel = grant_fuel.saturating_sub(fuel_spent);
        let refund_memory = grant_memory.saturating_sub(memory_spent);
        let outcome = sess.balance.refund(refund_fuel, refund_memory);
        let credited = refund_fuel - outcome.fuel_excess;
        sess.counters.fuel_refunded += credited;
        self.metrics.counters.fuel_refunded += credited;
        sess.counters.fuel_spent += fuel_spent;
        self.metrics.counters.fuel_spent += fuel_spent;
        sess.latency.record(latency);
        self.metrics.latency.record(latency);
        if outcome.clamped() {
            let sess = self.sessions.get_mut(&session).expect("job has session");
            sess.counters.refund_clamped += 1;
            self.metrics.counters.refund_clamped += 1;
            self.record_for(
                session,
                TraceEvent::RefundClamped {
                    job,
                    fuel_excess: outcome.fuel_excess,
                    memory_excess: outcome.memory_excess,
                },
            );
        }
        let sess = self.sessions.get_mut(&session).expect("job has session");
        match finish {
            FinishKind::Completed => {
                sess.counters.completed += 1;
                self.metrics.counters.completed += 1;
                self.record_for(session, TraceEvent::Completed { job, fuel_spent });
            }
            FinishKind::Cancelled => {
                sess.counters.cancelled += 1;
                self.metrics.counters.cancelled += 1;
                self.record_for(session, TraceEvent::Cancelled { job });
            }
            FinishKind::Panicked => {
                sess.counters.panicked += 1;
                self.metrics.counters.panicked += 1;
                self.record_for(session, TraceEvent::Panicked { job });
            }
        }
        self.drain_queue()
    }

    /// Scan the queue in FIFO order for jobs that can run now. A job
    /// whose session is at its concurrency cap stays queued (later
    /// sessions' jobs may overtake it); a job whose session balance can
    /// no longer cover its envelope is late-rejected.
    fn drain_queue(&mut self) -> Vec<Dequeued> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.queue.len() && self.busy < self.workers {
            let job = self.queue[i];
            let j = &self.jobs[&job];
            let sess = &self.sessions[&j.session];
            if sess.closed {
                // close_session removes its queued jobs; nothing of a
                // closed session should still be here.
                i += 1;
                continue;
            }
            if sess.balance.admit(&j.envelope).is_err() {
                let session = j.session;
                self.queue.remove(i);
                self.jobs.remove(&job);
                let d = Diagnostic::new(
                    Code::SessionQuotaExhausted,
                    format!("session {session} quota exhausted while job {job} was queued"),
                );
                let sess = self.sessions.get_mut(&session).expect("job has session");
                sess.counters.rejected += 1;
                self.metrics.counters.rejected += 1;
                self.record_for(session, TraceEvent::Rejected { job, code: d.code });
                out.push(Dequeued::LateReject { job, diag: d });
                continue;
            }
            if sess.active >= sess.quota.max_concurrent {
                i += 1;
                continue;
            }
            self.queue.remove(i);
            let ticket = self.dispatch(job);
            self.record_for(
                ticket.session,
                TraceEvent::Dispatched {
                    job,
                    grant_fuel: ticket.grant_fuel,
                },
            );
            out.push(Dequeued::Dispatch(ticket));
        }
        self.metrics.queue_depth = self.queue.len();
        out
    }

    /// Cancel one of `session`'s jobs. A queued job is removed
    /// immediately (`Ok(false)`); a running job has its token fired
    /// (`Ok(true)`) and will report back through [`Scheduler::complete`]
    /// when the guard notices.
    ///
    /// Job ids are global sequential integers, so ownership is checked:
    /// a job belonging to *another* session gets the same SSD204 as an
    /// unknown job (no cross-session cancellation, and no oracle for
    /// which ids are live elsewhere).
    pub fn cancel(&mut self, session: SessionId, job: JobId) -> Result<bool, Diagnostic> {
        let unknown = || {
            Err(Diagnostic::new(
                Code::UnknownJob,
                format!("no such (or already finished) job {job}"),
            ))
        };
        let (running, owner) = match self.jobs.get(&job) {
            Some(j) => (matches!(j.state, JobState::Running { .. }), j.session),
            None => return unknown(),
        };
        if owner != session {
            return unknown();
        }
        if running {
            self.jobs[&job].cancel.cancel();
            return Ok(true);
        }
        let pos = self
            .queue
            .iter()
            .position(|&q| q == job)
            .expect("queued job is in the queue");
        self.queue.remove(pos);
        self.metrics.queue_depth = self.queue.len();
        self.jobs.remove(&job);
        let sess = self.sessions.get_mut(&session).expect("job has session");
        sess.counters.cancelled += 1;
        self.metrics.counters.cancelled += 1;
        self.record_for(session, TraceEvent::Cancelled { job });
        Ok(false)
    }

    /// Close a session: cancel its queued jobs (returned, so the server
    /// can notify) and fire the tokens of its running jobs. The session
    /// accepts no further submissions.
    pub fn close_session(&mut self, session: SessionId) -> Vec<JobId> {
        let Some(sess) = self.sessions.get_mut(&session) else {
            return Vec::new();
        };
        sess.closed = true;
        let queued: Vec<JobId> = self
            .queue
            .iter()
            .copied()
            .filter(|q| self.jobs[q].session == session)
            .collect();
        for &job in &queued {
            // Queued cancellation of the session's own jobs always succeeds.
            let _ = self.cancel(session, job);
        }
        for j in self.jobs.values() {
            if j.session == session && matches!(j.state, JobState::Running { .. }) {
                j.cancel.cancel();
            }
        }
        self.record_for(session, TraceEvent::SessionClosed { session });
        queued
    }

    /// Stop admitting; queued and running jobs drain normally.
    pub fn begin_shutdown(&mut self) {
        if !self.shutting_down {
            self.shutting_down = true;
            self.record(TraceEvent::ShutdownBegan);
        }
    }

    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down
    }

    /// True once nothing is queued or running.
    pub fn drained(&self) -> bool {
        self.queue.is_empty() && self.busy == 0
    }

    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    pub fn busy(&self) -> usize {
        self.busy
    }

    /// The decision log (most recent [`TRACE_CAP`]+ events); identical
    /// across runs given identical inputs, including any truncation.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Queued + running jobs currently held (finished jobs are evicted,
    /// so this is the scheduler's live footprint, not a lifetime count).
    pub fn live_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Snapshot of the global metrics.
    pub fn metrics(&self) -> Metrics {
        let mut m = self.metrics.clone();
        m.queue_depth = self.queue.len();
        m
    }

    /// Snapshot of one session's counters (`None` if unknown).
    pub fn session_counters(&self, session: SessionId) -> Option<Counters> {
        self.sessions.get(&session).map(|s| s.counters.clone())
    }

    /// The session's remaining fuel balance (`None` = unmetered).
    pub fn session_fuel_left(&self, session: SessionId) -> Option<u64> {
        self.sessions
            .get(&session)
            .and_then(|s| s.balance.max_steps)
    }

    /// Snapshot of one session's submit→finish latency histogram
    /// (microseconds, every finish over the session's lifetime).
    /// `None` if unknown.
    pub fn session_latency(&self, session: SessionId) -> Option<Histogram> {
        self.sessions.get(&session).map(|s| s.latency.clone())
    }

    /// Snapshot of one session's slice of the decision trace (most
    /// recent [`SESSION_TRACE_CAP`]+ events). `None` if unknown.
    pub fn session_trace(&self, session: SessionId) -> Option<Vec<TraceEvent>> {
        self.sessions.get(&session).map(|s| s.recent.clone())
    }
}
