#!/bin/sh
# Offline CI gate: formatting, lints, release build, tests.
# Run from the repository root. Everything works without network access
# (registry access is satisfied by the committed Cargo.lock + vendor/).
set -eu

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check" >&2
cargo fmt --all --check

echo "== cargo clippy -D warnings" >&2
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release" >&2
cargo build --release --offline

echo "== cargo test" >&2
cargo test -q --offline

echo "== ssd lint (workspace invariants, docs/LINTS.md)" >&2
# Replaces the old awk/grep panic-site gate: SSD903 enforces the
# token-accurate per-crate panic budgets in crates/lint/panic-budgets.txt
# (a two-way ratchet), and SSD901/902/904/905 gate registry sync, guard
# threading, lock order, and span discipline. The SSD91x band gates the
# interprocedural concurrency/durability invariants (lock inversion and
# blocking across call chains, atomic orderings, WAL publish protocol,
# fault-point coverage). --deny-warnings makes budget drift fail,
# matching the old hard gate.
./target/release/ssd lint --deny-warnings

echo "== ssd lint --json (machine-readable rendering)" >&2
# The seeded fixture must render as exactly one JSON object per line:
# findings with code/severity/file/line/message and nothing else. The
# fixture fails the lint (that is its job), so findings arrive on
# stderr behind the CLI's `error: ` prefix; strip it before checking.
lint_json=$(mktemp)
./target/release/ssd lint tests/fixtures/lint-bad --json 2>&1 | sed 's/^error: //' >"$lint_json"
[ -s "$lint_json" ] || { echo "ci: --json emitted nothing for the fixture" >&2; exit 1; }
if grep -vE '^\{"code":"SSD9[0-9]{2}","severity":"(error|warning)","file":"[^"]+","line":[0-9]+,"message":".*"\}$' "$lint_json"; then
    echo "ci: ssd lint --json emitted a malformed line (above)" >&2
    exit 1
fi
rm -f "$lint_json"

echo "== fault injection" >&2
cargo test -q --offline -p semistructured --test guard
if SSD_FAILPOINTS="datalog.round=1" ./target/release/ssd datalog examples/movies.ssd \
    'reach(X) :- root(X). reach(Y) :- reach(X), edge(X, _L, Y).' >/dev/null 2>&1; then
    echo "ci: SSD_FAILPOINTS fault did not surface as a failure" >&2
    exit 1
fi

echo "== governed query smoke run" >&2
smoke=$(timeout 60 ./target/release/ssd query examples/movies.ssd \
    'select T from db.Entry.Movie.Title T' --timeout 5 --max-steps 1000000)
echo "$smoke" | grep -q Casablanca

echo "== cost-estimator soundness" >&2
cargo test -q --offline -p semistructured --test cost_soundness

echo "== admission control smoke run" >&2
# Star-free join query: a finite envelope with no SSD03x warnings, so
# --deny-warnings is a real gate on the estimate path.
est=$(timeout 60 ./target/release/ssd check examples/movies.ssd query \
    'select T from db.Entry.Movie M, M.Title T' --estimate --deny-warnings)
echo "$est" | grep -q "estimated cost"
# Strict admission must refuse an over-budget query with SSD030, nonzero.
if ./target/release/ssd query examples/movies.ssd \
    'select T from db.Entry.Movie.Title T' \
    --max-steps 1 --admission strict >/dev/null 2>&1; then
    echo "ci: strict admission did not reject an over-budget query" >&2
    exit 1
fi

echo "== serve smoke run (3 concurrent sessions)" >&2
serve_log=$(mktemp)
timeout 120 ./target/release/ssd serve examples/movies.ssd --port 0 \
    --workers 1 --queue 8 --metrics-dump --allow-remote-shutdown \
    > "$serve_log" 2>&1 &
serve_pid=$!
port=""
for _ in $(seq 1 100); do
    port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$serve_log")
    [ -n "$port" ] && break
    sleep 0.1
done
if [ -z "$port" ]; then
    echo "ci: ssd serve did not print its listening port" >&2
    cat "$serve_log" >&2
    exit 1
fi
# Three sessions at once: one admitted, one forced to queue, one rejected.
a_out=$(mktemp); b_out=$(mktemp); c_out=$(mktemp)
printf 'HELLO fuel=1000000\nQUERY select T from db.Entry.%%.Title T\nSTATS\n' \
    | timeout 60 ./target/release/ssd client "$port" > "$a_out" &
a_pid=$!
printf 'HELLO job-fuel=1\nQUERY select T from db.Entry.%%.Title T\n' \
    | timeout 60 ./target/release/ssd client "$port" > "$b_out" &
b_pid=$!
# C's first job is a deliberately slow cross-product so the two cheap
# queries pipelined right behind it are guaranteed to hit the jobs=1 cap
# while it is still running (and thus be queued, not dispatched).
printf 'HELLO jobs=1\nQUERY select {a: X, b: Y, c: Z} from db.%%* X, db.%%* Y, db.%%* Z\nQUERY select T from db.Entry.%%.Title T\nQUERY select T from db.Entry.%%.Title T\n' \
    | timeout 60 ./target/release/ssd client "$port" > "$c_out" &
c_pid=$!
wait "$a_pid" "$b_pid" "$c_pid"
grep -q "OK session" "$a_out"          # session opened
grep -q "Casablanca" "$a_out"          # results streamed back
grep -q " DONE " "$a_out"              # job settled
grep -q "admitted" "$a_out"            # STATS block present
grep -q "SSD030" "$b_out"              # over-ceiling job rejected statically
grep -q "queued" "$c_out"              # concurrency cap 1 forces queueing
grep -q " DONE " "$c_out"              # ...and the queue drains
printf 'SHUTDOWN\n' | timeout 60 ./target/release/ssd client "$port" >/dev/null
wait "$serve_pid"                      # clean exit after graceful drain
grep -q "^admitted " "$serve_log"      # non-empty metrics dump
grep -q "^rejected 1$" "$serve_log"    # session B's rejection is in the books
grep -q "^ssd_serve_jobs_total" "$serve_log"  # Prometheus text in the dump
rm -f "$serve_log" "$a_out" "$b_out" "$c_out"

echo "== trace smoke run" >&2
# A governed, traced query must stream well-formed JSONL (the schema
# itself is pinned by the jsonl unit tests in crates/trace and the
# validate() proptests in tests/trace.rs) and render the inline trace.
trace_out=$(mktemp)
traced=$(timeout 60 ./target/release/ssd query examples/movies.ssd \
    'select T from db.Entry.Movie.Title T' \
    --max-steps 1000000 --trace --trace-out "$trace_out")
echo "$traced" | grep -q Casablanca
echo "$traced" | grep -q -- "-- trace ("
grep -q '"kind":"open"' "$trace_out"
grep -q '"kind":"close"' "$trace_out"
grep -q '"phase":"eval"' "$trace_out"
# Every line is a JSON object with the mandatory keys, no partial writes.
if grep -vE '^\{"seq":[0-9]+,"id":[0-9]+,"parent":[0-9]+,"kind":"(open|close|instant)","phase":"[a-z]+","name":"[^"]+","fuel":[0-9]+,"mem":[0-9]+,"fields":\{.*\}\}$' "$trace_out"; then
    echo "ci: malformed JSONL trace line(s) above" >&2
    exit 1
fi
rm -f "$trace_out"
# explain --analyze: estimate and actuals side by side on the example db.
expl=$(timeout 60 ./target/release/ssd explain examples/movies.ssd \
    'select T from db.Entry.Movie.Title T' --analyze)
echo "$expl" | grep -q "estimated cost"
echo "$expl" | grep -q "actual cost"
# The E17 overhead benchmark must compile and run (quick mode).
cargo bench -q -p ssd-bench --bench e17_trace --offline -- --quick >/dev/null

echo "== durable store recovery smoke run" >&2
# Crash-safety, end to end through the real binary. Phase 1: commit one
# transaction, then kill -9 the server — no graceful drain, the WAL is
# all that survives.
store_dir=$(mktemp -d)
serve2_log=$(mktemp)
timeout 120 ./target/release/ssd serve examples/movies.ssd --port 0 \
    --data-dir "$store_dir" --allow-remote-shutdown > "$serve2_log" 2>&1 &
serve2_pid=$!
port=""
for _ in $(seq 1 100); do
    port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$serve2_log")
    [ -n "$port" ] && break
    sleep 0.1
done
[ -n "$port" ] || { echo "ci: store serve did not start" >&2; cat "$serve2_log" >&2; exit 1; }
w_out=$(mktemp)
printf 'HELLO\nINSERT {Entry: {Movie: {Title: "Durable"}}}\nCOMMIT\n' \
    | timeout 60 ./target/release/ssd client "$port" > "$w_out"
grep -q "OK staged ops=1" "$w_out"
grep -q "committed generation=1" "$w_out"   # client waits for DONE: fsynced
kill -9 "$serve2_pid" 2>/dev/null || true
wait "$serve2_pid" 2>/dev/null || true
# Phase 2: restart with a torn write injected into the next commit —
# the deterministic stand-in for a crash mid-commit: a partial frame
# reaches the disk, the COMMIT never does.
serve3_log=$(mktemp)
SSD_FAILPOINTS="wal.torn=1" timeout 120 ./target/release/ssd serve \
    examples/movies.ssd --port 0 --data-dir "$store_dir" \
    --allow-remote-shutdown > "$serve3_log" 2>&1 &
serve3_pid=$!
port=""
for _ in $(seq 1 100); do
    port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$serve3_log")
    [ -n "$port" ] && break
    sleep 0.1
done
[ -n "$port" ] || { echo "ci: store serve restart failed" >&2; cat "$serve3_log" >&2; exit 1; }
grep -q "SSD402" "$serve3_log"              # recovery replayed phase 1's txn
t_out=$(mktemp)
printf 'HELLO\nINSERT {Entry: {Movie: {Title: "Lost"}}}\nCOMMIT\nSHUTDOWN\n' \
    | timeout 60 ./target/release/ssd client "$port" > "$t_out"
grep -q "SSD106" "$t_out"                   # the commit hit the injected fault
wait "$serve3_pid" 2>/dev/null || true
# Phase 3: recovery truncates the torn tail and keeps the committed prefix.
rec=$(timeout 60 ./target/release/ssd recover "$store_dir")
echo "$rec" | grep -q "SSD400"              # torn tail discarded
echo "$rec" | grep -q "SSD402"              # replay note
echo "$rec" | grep -q "generation=1 txns=1" # exactly the committed prefix
q_out=$(timeout 60 ./target/release/ssd serve examples/movies.ssd --port 0 \
    --data-dir "$store_dir" --allow-remote-shutdown > "$serve2_log" 2>&1 &
    serve4_pid=$!
    port=""
    for _ in $(seq 1 100); do
        port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$serve2_log")
        [ -n "$port" ] && break
        sleep 0.1
    done
    printf 'HELLO\nQUERY select T from db.Entry.Movie.Title T\nSHUTDOWN\n' \
        | timeout 60 ./target/release/ssd client "$port"
    wait "$serve4_pid" 2>/dev/null || true)
echo "$q_out" | grep -q "Durable"           # the committed txn survived
if echo "$q_out" | grep -q "Lost"; then
    echo "ci: uncommitted mutation visible after recovery" >&2
    exit 1
fi
rm -rf "$store_dir"; rm -f "$serve2_log" "$serve3_log" "$w_out" "$t_out"

echo "== workload bench regression gate (E21)" >&2
# The committed BENCH_workload.json is the baseline; a fresh small-scale
# run regenerates it and the built-in checker fails the gate on scenario
# errors (SSD060) or >3x p99/throughput regressions (SSD061). Baseline
# shape mismatches are SSD062 warnings, not failures.
bench_base=$(mktemp)
cp BENCH_workload.json "$bench_base"
timeout 600 ./target/release/ssd bench --scale 10000 --seed 42 --rate 300 \
    --json BENCH_workload.json --baseline "$bench_base"
rm -f "$bench_base"
# Determinism witnesses: the regenerated artifact must carry the same
# graph and replay-trace fingerprints the baseline pinned.
git diff --stat -- BENCH_workload.json >&2 || true
grep -q '"experiment": "E21"' BENCH_workload.json
grep -q '"trace_fingerprint"' BENCH_workload.json

echo "== perf trajectory artifacts (BENCH_*.json)" >&2
# The experiment report must emit all five machine-readable data
# points; EXPERIMENTS.md explains the series they extend. Together with
# E21 above, every artifact opens with the same schema envelope.
timeout 600 cargo run -q --release -p ssd-bench --bin report --offline >/dev/null
for f in BENCH_serve.json BENCH_trace.json BENCH_store.json BENCH_lint.json \
         BENCH_index.json BENCH_workload.json; do
    [ -s "$f" ] || { echo "ci: $f was not emitted" >&2; exit 1; }
    grep -q '"experiment"' "$f"
    grep -q '"schema_version"' "$f"
    grep -q '"host_cores"' "$f"
done
# E20 shape: the batched pipeline must be present at every size and
# carry a speedup column (the measured values live in EXPERIMENTS.md).
grep -q '"speedup"' BENCH_index.json

echo "ci: all gates passed" >&2
