#!/bin/sh
# Offline CI gate: formatting, lints, release build, tests.
# Run from the repository root. Everything works without network access
# (registry access is satisfied by the committed Cargo.lock + vendor/).
set -eu

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check" >&2
cargo fmt --all --check

echo "== cargo clippy -D warnings" >&2
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release" >&2
cargo build --release --offline

echo "== cargo test" >&2
cargo test -q --offline

echo "ci: all gates passed" >&2
