//! Offline polyfill for the subset of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` with spawn closures that receive the scope
//! (so workers can spawn nested workers). Delegates to `std::thread::scope`,
//! which provides the same structured-concurrency guarantee since Rust 1.63.

pub mod thread {
    use std::any::Any;

    /// Handle passed to `scope`'s closure and to every spawned worker.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        #[allow(clippy::missing_errors_doc)]
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope for spawning threads that may borrow from the caller.
    ///
    /// Unlike crossbeam proper (which collects worker panics into the `Err`
    /// variant), a panicking un-joined worker propagates the panic on scope
    /// exit — acceptable for the polyfill because the error is never
    /// silently ignored either way.
    #[allow(clippy::missing_errors_doc)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join() {
        let data = [1, 2, 3, 4];
        let total: i32 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
