//! Value-generation strategies: a miniature, shrink-free take on
//! proptest's `Strategy` trait, sufficient for this workspace's suites.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic per-test generator (SplitMix64 seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng| s.generate(rng)))
    }

    /// Build recursive values. `depth` bounds nesting; the size/branch hints
    /// are accepted for API compatibility and ignored (no shrinking here).
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut cur = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone().boxed();
            let deeper = recurse(cur).boxed();
            // Mix leaves back in at every level so generated sizes vary
            // instead of always reaching the maximum depth.
            cur = BoxedStrategy(Rc::new(move |rng| {
                if rng.below(3) == 0 {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            }));
        }
        cur
    }
}

/// Type-erased strategy; cheap to clone (shared closure).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
        }
    }
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// `proptest::collection::vec(element, len)`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )+};
}

impl_int_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// String-literal strategies: the literal is a tiny regex over character
/// classes and `{m,n}` / `*` / `+` / `?` quantifiers, e.g. `"[a-z]{0,6}"`.
/// Unrecognised syntax is treated as literal characters.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a character class or a literal character.
        let class: Vec<(char, char)>;
        if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or(chars.len() - 1);
            class = parse_class(&chars[i + 1..close]);
            i = close + 1;
        } else if chars[i] == '\\' && i + 1 < chars.len() {
            class = vec![(chars[i + 1], chars[i + 1])];
            i += 2;
        } else {
            class = vec![(chars[i], chars[i])];
            i += 1;
        }
        // Parse an optional quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or(chars.len() - 1);
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            let mut parts = body.splitn(2, ',');
            let lo: usize = parts.next().unwrap_or("0").trim().parse().unwrap_or(0);
            let hi: usize = match parts.next() {
                Some(s) => s.trim().parse().unwrap_or(lo),
                None => lo,
            };
            (lo, hi)
        } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
            let q = chars[i];
            i += 1;
            match q {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            }
        } else {
            (1, 1)
        };
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(pick_from_class(&class, rng));
        }
    }
    out
}

fn parse_class(body: &[char]) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            ranges.push((body[i], body[i + 2]));
            i += 3;
        } else {
            ranges.push((body[i], body[i]));
            i += 1;
        }
    }
    if ranges.is_empty() {
        ranges.push(('a', 'a'));
    }
    ranges
}

fn pick_from_class(class: &[(char, char)], rng: &mut TestRng) -> char {
    let (lo, hi) = class[rng.below(class.len() as u64) as usize];
    let span = (hi as u32).saturating_sub(lo as u32) + 1;
    char::from_u32(lo as u32 + rng.below(u64::from(span)) as u32).unwrap_or(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_literal_class_with_counts() {
        let mut rng = TestRng::from_name("regex");
        for _ in 0..200 {
            let s = "[a-z]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..200 {
            let (a, b) = (1usize..4, -2i64..=2).generate(&mut rng);
            assert!((1..4).contains(&a));
            assert!((-2..=2).contains(&b));
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = Just(T::Leaf);
        let tree = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::from_name("rec");
        for _ in 0..100 {
            assert!(depth(&tree.generate(&mut rng)) <= 3);
        }
    }
}
