//! Runner configuration and per-case control flow.

/// Subset of proptest's config: only `cases` is consulted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(&'static str),
    /// A `prop_assert*!` failed; the whole property fails.
    Fail(String),
}
