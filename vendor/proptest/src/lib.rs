//! Offline polyfill for the subset of `proptest` 1.x this workspace uses.
//!
//! Provides the `Strategy` trait (`prop_map`, `prop_recursive`, `boxed`),
//! tuple/range/`Just`/one-of/collection/regex-literal strategies, the
//! `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`, and
//! `prop_assume!` macros, and a deterministic per-test RNG. Differences from
//! proptest proper: no shrinking (failures report the generated seed case
//! as-is) and no persistence files; `.proptest-regressions` files are
//! ignored. Good enough to run the repo's property suites hermetically.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + Clone + 'static {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary + std::fmt::Debug>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

/// Declare property tests. Each function body runs `config.cases` times with
/// fresh values drawn from the strategies named after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with $cfg; $($rest)*);
    };
    (@with $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::strategy::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    if attempts > config.cases.saturating_mul(20) {
                        panic!(
                            "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                            stringify!($name), accepted, config.cases
                        );
                    }
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                            $body
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed: {}", stringify!($name), msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Assert inside a `proptest!` body; reports the property that failed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assert_eq failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assert_ne failed: both {:?}", l);
    }};
}

/// Discard the current case (does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
