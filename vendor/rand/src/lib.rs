//! Offline polyfill for the subset of `rand` 0.8 this workspace uses:
//! `SmallRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen_bool`. The generator is SplitMix64 — deterministic,
//! seedable, and statistically good enough for workload synthesis, which is
//! the only use in this repo (the data generators are seeded and expect
//! reproducible output *per build*, not byte-compatibility with rand 0.8).

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling from a range; mirrors `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

pub trait Rng: RngCore {
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        // 53 random bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )+};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )+};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: one 64-bit word of state, passes BigCrush on its own.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    /// The std generator is the same engine here; only determinism matters.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(5..10);
            assert!((5..10).contains(&v));
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((600..1400).contains(&hits), "p=0.25 gave {hits}/4000");
    }
}
