//! Offline polyfill for the subset of `criterion` 0.5 this workspace's
//! benches use. It really measures (median of timed batches) and prints
//! one line per benchmark, but does no statistics, plots, or baselines —
//! enough for `cargo bench` to run hermetically and give ballpark numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", name, sample_size, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<S: Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    pub fn bench_with_input<S: Display, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, |b| {
            f(b, input);
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    b.samples.sort_unstable();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("{full:<48} time: [{median:>12.3?} median of {sample_size}]");
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, then calibrate iterations so each sample takes >= ~1ms.
        black_box(routine());
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed();
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = 0;
        group.bench_function("f", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran += 1;
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3, |b, &n| {
            b.iter(|| std::hint::black_box(n * n));
        });
        group.finish();
        assert_eq!(ran, 1);
    }
}
