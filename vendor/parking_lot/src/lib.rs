//! Offline polyfill for the subset of `parking_lot` this workspace uses.
//!
//! Wraps `std::sync` primitives and exposes parking_lot's panic-free guard
//! API (`lock()`/`read()`/`write()` return guards directly, recovering from
//! poison instead of returning `Result`s). Built so the workspace resolves
//! and compiles with no registry access; swap back to the real crate by
//! pointing the workspace dependency at crates.io.

use std::sync::PoisonError;

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Mutual-exclusion lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(Vec::new());
        m.lock().push(7);
        assert_eq!(m.into_inner(), vec![7]);
    }
}
