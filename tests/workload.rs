//! Tests for the `ssd-workload` harness (SSD06x band):
//!
//! * the seeded generator is a pure function of its config — the same
//!   seed yields a byte-identical op stream however it is consumed, and
//!   the fingerprint witnesses exactly that stream;
//! * deterministic replay against the pure scheduler yields an
//!   identical admission decision trace for a fixed seed;
//! * the regression checker raises SSD060 on scenario errors, SSD061 on
//!   regressions beyond tolerance, and SSD062 (warning) when the
//!   baseline is not comparable;
//! * a small end-to-end `run_bench` against a real server completes
//!   every scenario class without unexpected errors and reproduces both
//!   determinism witnesses on a second run.

use proptest::prelude::*;
use ssd_workload::gen::{self, GenConfig, GenOp, Generator};
use ssd_workload::scenario::ALL;
use ssd_workload::{check_against_baseline, replay, DriveConfig, Scenario};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed ⇒ identical op stream, whether drained in one pass or
    /// in arbitrary chunk sizes; different seed ⇒ different fingerprint.
    #[test]
    fn generator_is_deterministic(
        scale in 500u64..6_000,
        seed in 0u64..1_000,
        chunk in 1usize..97,
    ) {
        let cfg = GenConfig::new(scale, seed);
        let all: Vec<GenOp> = Generator::new(cfg.clone()).collect();

        // Chunked consumption: pull `chunk` ops at a time through a
        // persistent iterator; the stream must not depend on pull shape.
        let mut chunked = Vec::with_capacity(all.len());
        let mut it = Generator::new(cfg.clone());
        loop {
            let batch: Vec<GenOp> = it.by_ref().take(chunk).collect();
            if batch.is_empty() {
                break;
            }
            chunked.extend(batch);
        }
        prop_assert_eq!(&all, &chunked);

        // The fingerprint is a function of exactly that stream.
        let fp = gen::fingerprint(&cfg);
        prop_assert_eq!(fp, gen::fingerprint(&cfg));
        let other = GenConfig::new(scale, seed ^ 0x5bd1_e995);
        prop_assert_ne!(fp, gen::fingerprint(&other));
    }

    /// Structural invariants of the stream: node ids are emitted
    /// sequentially before use, edge count tracks the scale target, and
    /// a positive cycle density produces backward `References` edges.
    #[test]
    fn generator_stream_is_well_formed(scale in 500u64..6_000, seed in 0u64..1_000) {
        let cfg = GenConfig::new(scale, seed);
        // `Graph::new()` allocates the root (id 0) itself; the stream's
        // first Node op is id 1.
        let mut next_id = 1u64;
        let mut edges = 0u64;
        let mut backward = 0u64;
        for op in Generator::new(cfg.clone()) {
            match op {
                GenOp::Node { id } => {
                    prop_assert_eq!(id, next_id);
                    next_id += 1;
                }
                GenOp::SymEdge { from, name, to } => {
                    prop_assert!(from < next_id && to < next_id);
                    edges += 1;
                    if name == "References" && to < from {
                        backward += 1;
                    }
                }
                GenOp::ValEdge { from, to, .. } => {
                    prop_assert!(from < next_id && to < next_id);
                    edges += 1;
                }
            }
        }
        prop_assert_eq!(edges, gen::edge_count(&cfg));
        // The stream lands within one movie's worth of the scale target.
        let slack = 2 * cfg.fanout + 12;
        prop_assert!(edges + slack >= scale, "{} edges for scale {}", edges, scale);
        // cycle_density defaults > 0: the References chains must bend back.
        prop_assert!(backward > 0);
    }

    /// Replaying the same config twice yields the identical scheduler
    /// decision trace — counts and trace fingerprint both.
    #[test]
    fn replay_is_deterministic(scale in 500u64..4_000, seed in 0u64..1_000) {
        let cfg = GenConfig::new(scale, seed);
        let dcfg = DriveConfig::default();
        let a = replay(&cfg, &dcfg, None);
        let b = replay(&cfg, &dcfg, None);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.trace_len > 0);
        // Every op is dispatched (directly or after queueing), rejected,
        // or evicted from the queue by a cancel.
        let total: u64 = ALL.iter().map(|s| s.ops_at(scale)).sum();
        prop_assert!(a.dispatched + a.rejected <= total);
        prop_assert!(a.dispatched + a.rejected + a.cancelled >= total);
    }
}

/// A minimal but envelope-complete report for checker tests.
fn report(scale: u64, errors: u64, p99: u64, thr: u64) -> String {
    format!(
        r#"{{"experiment": "E21", "schema_version": 1, "scale": {scale},
            "seed": 42, "scenario": "mixed",
            "scenarios": [{{"name": "rpe3", "ops": 32, "errors": {errors},
                            "p99_us": {p99}, "throughput_ops_s": {thr}}}]}}"#
    )
}

#[test]
fn checker_passes_identical_reports() {
    let r = report(10_000, 0, 1_500, 100);
    assert!(check_against_baseline(&r, &r).is_empty());
}

#[test]
fn checker_flags_scenario_errors_as_ssd060() {
    // Fresh-run op failures are SSD060 errors even against a clean baseline.
    let fresh = report(10_000, 3, 1_500, 100);
    let base = report(10_000, 0, 1_500, 100);
    let out = check_against_baseline(&fresh, &base);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].code.as_str(), "SSD060");
    assert!(out[0].is_error());
}

#[test]
fn checker_flags_regressions_as_ssd061() {
    // p99 blown past 3× (and above the 2 ms jitter floor), throughput
    // collapsed below a third: two SSD061s.
    let fresh = report(10_000, 0, 9_000, 10);
    let base = report(10_000, 0, 1_000, 100);
    let out = check_against_baseline(&fresh, &base);
    assert_eq!(out.len(), 2);
    assert!(out
        .iter()
        .all(|d| d.code.as_str() == "SSD061" && d.is_error()));
}

#[test]
fn checker_tolerates_noise_within_bounds() {
    // 2.5× worse p99 and half the throughput: inside the 3× tolerance.
    let fresh = report(10_000, 0, 2_500, 50);
    let base = report(10_000, 0, 1_000, 100);
    assert!(check_against_baseline(&fresh, &base).is_empty());
}

#[test]
fn checker_exempts_cancel_latency() {
    // Cancel-op latency is the cancel-vs-completion race; an apparent
    // blowup there must not fail the gate (errors still would).
    let fresh = report(10_000, 0, 900_000, 1).replace("rpe3", "cancel");
    let base = report(10_000, 0, 100, 1_000).replace("rpe3", "cancel");
    assert!(check_against_baseline(&fresh, &base).is_empty());
}

#[test]
fn checker_warns_on_incomparable_baselines_as_ssd062() {
    let fresh = report(10_000, 0, 1_500, 100);
    // Garbage baseline: warn, don't fail.
    let out = check_against_baseline(&fresh, "not json");
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].code.as_str(), "SSD062");
    assert!(!out[0].is_error());
    // Envelope mismatch (different scale): warn and skip comparison,
    // even though the p99s would otherwise scream regression.
    let base = report(1_000, 0, 100, 100_000);
    let out = check_against_baseline(&fresh, &base);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].code.as_str(), "SSD062");
}

#[test]
fn bench_end_to_end_reproduces_both_witnesses() {
    // One real run per scenario mix is dear; keep it small and make it
    // count: every class present, zero unexpected errors, and a second
    // run reproducing the graph and trace fingerprints exactly.
    let cfg = GenConfig::new(1_500, 42);
    let dcfg = DriveConfig::default();
    let (a, profile) = ssd_workload::run_bench(&cfg, &dcfg, None, false).expect("bench run");
    assert!(profile.is_none());
    assert_eq!(a.drive.total_errors(), 0, "unexpected scenario errors");
    assert_eq!(a.drive.scenarios.len(), ALL.len());
    for s in &a.drive.scenarios {
        assert_eq!(
            s.ops,
            s.scenario.ops_at(cfg.scale),
            "{} submitted every op",
            s.scenario.name()
        );
    }
    let json = a.to_json();
    assert!(check_against_baseline(&json, &json).is_empty());

    let (b, _) = ssd_workload::run_bench(&cfg, &dcfg, None, false).expect("bench rerun");
    assert_eq!(a.graph_fingerprint, b.graph_fingerprint);
    assert_eq!(a.replay, b.replay);
}

#[test]
fn single_scenario_runs_stay_single() {
    // SigmaLookup has no cancels, so every op either dispatches
    // (directly or after queueing) or is rejected — exactly once.
    let cfg = GenConfig::new(1_000, 7);
    let dcfg = DriveConfig::default();
    let rep = replay(&cfg, &dcfg, Some(Scenario::SigmaLookup));
    assert_eq!(
        rep.dispatched + rep.rejected,
        Scenario::SigmaLookup.ops_at(cfg.scale)
    );
    assert_eq!(rep.cancelled, 0);
}
