//! Cross-crate integration tests driving the whole stack through the
//! `semistructured` facade: data generators → model → query language →
//! triple store/datalog → schemas/DataGuides, with results cross-checked
//! between independent implementations.

use semistructured::graph::bisim::graphs_bisimilar;
use semistructured::query::decompose::{eval_decomposed, Partition};
use semistructured::query::{eval_rpe, parse_query, Rpe, Step};
use semistructured::triples::Datum;
use semistructured::{Database, EvalOptions, Pred, Value};
use ssd_data::movies::{figure1, movie_database, MovieDbConfig};

fn fig1() -> Database {
    Database::new(figure1())
}

#[test]
fn figure1_three_ways_titles_agree() {
    // Titles via (a) the surface language, (b) a raw RPE, (c) datalog.
    let db = fig1();

    let via_lang = db.query("select T from db.Entry.%.Title T").unwrap();
    let lang_count = via_lang.graph().out_degree(via_lang.graph().root());

    let rpe = Rpe::seq(vec![
        Rpe::symbol("Entry"),
        Rpe::step(Step::wildcard()),
        Rpe::symbol("Title"),
    ]);
    let via_rpe = db.eval_path(&rpe);

    let via_datalog = db.datalog("title(T) :- edge(_E, 'Title', T).").unwrap();

    assert_eq!(lang_count, 3);
    assert_eq!(via_rpe.len(), 3);
    assert_eq!(via_datalog.count("title"), 3);
}

#[test]
fn allen_acted_in_sam_but_not_casablanca() {
    // The §3 motivating query end-to-end.
    let db = fig1();
    let r = db
        .query(r#"select T from db.Entry.Movie M, M.Title T, M.(!Movie)*."Allen" A"#)
        .unwrap();
    let titles: Vec<String> = r
        .graph()
        .values_at(r.graph().root())
        .iter()
        .filter_map(|v| v.as_str().map(str::to_owned))
        .collect();
    assert_eq!(titles, vec!["Play it again, Sam"]);
}

#[test]
fn browsing_matches_language_results() {
    let db = fig1();
    // Index-backed string search agrees with a wildcard-star query.
    let hits = db.find_string("Bogart");
    let q = db
        .query(r#"select {hit: 1} from db.%*."Bogart" X"#)
        .unwrap();
    assert_eq!(
        hits.len(),
        q.graph()
            .successors_by_name(q.graph().root(), "hit")
            .len()
            .max(q.stats().results_constructed.min(2))
    );
    assert_eq!(hits.len(), 2); // actor in movie + guest of the TV show
}

#[test]
fn datalog_reach_equals_graph_reachability() {
    let g = movie_database(&MovieDbConfig::sized(30));
    let db = Database::new(g);
    let eval = db
        .datalog(
            "reach(X) :- root(X).\n\
             reach(Y) :- reach(X), edge(X, _L, Y).",
        )
        .unwrap();
    assert_eq!(eval.count("reach"), db.graph().reachable().len());
}

#[test]
fn triple_store_algebra_agrees_with_traversal() {
    // Count Movie edges: via label index, via relational algebra over the
    // edge relation, via the query language.
    let db = Database::new(movie_database(&MovieDbConfig::sized(40)));
    let store = db.triples();
    let movie = semistructured::Label::symbol(db.graph().symbols(), "Movie");

    let via_index = store.with_label(&movie).len();

    let rel = semistructured::triples::Relation::edge_relation(&store);
    let via_algebra = rel
        .select_eq("label", &Datum::Label(movie.clone()))
        .unwrap()
        .len();

    let via_lang = db.query("select {m: M} from db.Entry.Movie M").unwrap();
    let via_lang_count = via_lang
        .graph()
        .successors_by_name(via_lang.graph().root(), "m")
        .len();

    assert_eq!(via_index, via_algebra);
    assert_eq!(via_index, via_lang_count);
}

#[test]
fn optimizer_is_semantics_preserving_on_generated_data() {
    let db = Database::new(movie_database(&MovieDbConfig::sized(60)));
    let queries = [
        "select T from db.Entry.Movie.Title T",
        "select {a: A} from db.Entry.%.Cast.(Actors | Credit.Actors) A",
        r#"select {t: T} from db.Entry.Movie M, M.Title T, M.Year Y where Y < 1960"#,
        "select X from db.%*.BoxOffice.[int] X",
        "select L from db.Entry.Movie.^L X where L like \"Dir%\"",
    ];
    for q in queries {
        let base = db.query(q).unwrap();
        let opt = db.query_optimized(q).unwrap();
        assert!(
            base.bisimilar_to(&opt),
            "optimizer changed semantics of {q}"
        );
    }
}

#[test]
fn decomposition_agrees_on_generated_movie_db() {
    let db = Database::new(movie_database(&MovieDbConfig::sized(50)));
    let rpe = Rpe::seq(vec![
        Rpe::step(Step::wildcard()).star(),
        Rpe::symbol("Actors"),
    ]);
    let seq = eval_rpe(db.graph(), db.graph().root(), &rpe);
    for k in [2, 4] {
        let part = Partition::blocks(db.graph(), k);
        assert_eq!(seq, eval_decomposed(db.graph(), &rpe, &part));
    }
}

#[test]
fn extracted_schema_accepts_same_generator_rejects_other_shape() {
    // Extract from a sample big enough (and reference-rich enough) that
    // every structural variant the generator can emit — credit vs direct
    // casts, optional box office, 1-3 guests, reference in/out combos —
    // actually occurs; conformance of a *fresh* sample is then a property
    // of the generator's shape, not of seed luck.
    let db = Database::new(movie_database(&MovieDbConfig {
        reference_prob: 0.4,
        ..MovieDbConfig::sized(600)
    }));
    let schema = db.extract_schema();
    assert!(db.conforms_to(&schema));
    // A fresh sample from the same generator also conforms (the schema
    // generalises values to kinds).
    let other = Database::new(movie_database(&MovieDbConfig {
        seed: 99,
        ..MovieDbConfig::sized(30)
    }));
    assert!(other.conforms_to(&schema));
    // A structurally different database does not.
    let alien = Database::from_literal(r#"{Ship: {Name: "Nostromo"}}"#).unwrap();
    assert!(!alien.conforms_to(&schema));
}

#[test]
fn dataguide_answers_path_queries_without_data() {
    let db = Database::new(movie_database(&MovieDbConfig::sized(40)));
    let guide = db.dataguide();
    let syms = db.graph().symbols();
    let path = [
        semistructured::Label::symbol(syms, "Entry"),
        semistructured::Label::symbol(syms, "Movie"),
        semistructured::Label::symbol(syms, "Title"),
    ];
    let via_guide = guide.path_targets(&path).len();
    let via_rpe = db
        .eval_path(&Rpe::seq(vec![
            Rpe::symbol("Entry"),
            Rpe::symbol("Movie"),
            Rpe::symbol("Title"),
        ]))
        .len();
    assert_eq!(via_guide, via_rpe);
}

#[test]
fn restructuring_pipeline_end_to_end() {
    // Collapse Credit, then relabel Actors -> Performer, then query the
    // unified shape.
    let db = fig1();
    let unified = db
        .collapse_edges(Pred::Symbol("Credit".into()))
        .relabel(Pred::Symbol("Actors".into()), "Performer");
    let r = unified
        .query("select A from db.Entry.Movie.Cast.Performer A")
        .unwrap();
    // Bogart, the mislabeled Bacall, and Allen.
    assert_eq!(r.graph().out_degree(r.graph().root()), 3);
    // Original untouched: it has no Performer edges, so the query is empty.
    let untouched = db
        .query("select A from db.Entry.Movie.Cast.Performer A")
        .unwrap();
    assert_eq!(untouched.graph().out_degree(untouched.graph().root()), 0);
    let orig = db
        .query("select A from db.Entry.Movie.Cast.Actors A")
        .unwrap();
    assert_eq!(orig.graph().out_degree(orig.graph().root()), 2);
}

#[test]
fn relational_fragment_join_through_the_graph_engine() {
    use semistructured::query::relational_fragment as rf;
    let (orders, customers) = ssd_data::relational::orders_and_customers(30, 6, 5);
    let g = rf::database_of(&[orders.clone(), customers.clone()]);
    let joined = rf::join(&g, &orders, &customers, "customer", "name").unwrap();
    let oracle = rf::native_join(&orders, &customers, "customer", "name");
    assert_eq!(joined.row_set(), oracle.row_set());
    assert_eq!(joined.rows.len(), 30); // every order matches its customer
}

#[test]
fn cyclic_references_queryable_to_any_depth() {
    let db = Database::new(movie_database(&MovieDbConfig {
        reference_prob: 0.5,
        ..MovieDbConfig::sized(30)
    }));
    // Entries transitively referenced from entry land — a query whose
    // result is only well-defined because evaluation handles cycles.
    let r = db
        .query("select {t: T} from db.Entry E, E.References*.%.Title T")
        .unwrap();
    assert!(r.stats().results_constructed > 0);
}

#[test]
fn serialization_round_trips_generated_databases() {
    for seed in [1, 2, 3] {
        let g = movie_database(&MovieDbConfig {
            seed,
            ..MovieDbConfig::sized(20)
        });
        let text = semistructured::graph::literal::write_graph(&g);
        let back = semistructured::graph::literal::parse_graph(&text).unwrap();
        assert!(
            graphs_bisimilar(&g, &back),
            "round trip failed for seed {seed}"
        );
    }
}

#[test]
fn select_results_conform_to_relational_style_schema() {
    // A query with a fixed constructor produces data conforming to the
    // obvious schema — the "passage back from semistructured to
    // structured" direction (§5).
    let db = fig1();
    let q = parse_query(r#"select {row: {t: T}} from db.Entry.%.Title T"#).unwrap();
    let (result, _) =
        semistructured::query::evaluate_select(db.graph(), &q, &EvalOptions::default()).unwrap();
    let mut schema = semistructured::Schema::new();
    let row = schema.add_node();
    let t = schema.add_node();
    let leaf = schema.add_node();
    let root = schema.root();
    schema.add_edge(root, Pred::Symbol("row".into()), row);
    schema.add_edge(row, Pred::Symbol("t".into()), t);
    schema.add_edge(t, Pred::Kind(semistructured::LabelKind::Str), leaf);
    assert!(semistructured::schema::conforms(&result, &schema));
}

#[test]
fn value_types_flow_through_the_whole_stack() {
    let db = Database::from_literal(r#"{m: {i: 42, r: 2.5, s: "x", b: true}}"#).unwrap();
    let r = db
        .query("select {hit: X} from db.m.^L X where isreal(X)")
        .unwrap();
    assert_eq!(
        r.graph().successors_by_name(r.graph().root(), "hit").len(),
        1
    );
    let ints = db.ints_greater(41);
    assert_eq!(ints.len(), 1);
    assert_eq!(ints[0].0, 42);
    let _ = Value::Real(2.5);
}

#[test]
fn facade_union_and_interchange() {
    let a = Database::from_literal(r#"{Movie: {Title: "C"}}"#).unwrap();
    let b = Database::from_json(r#"{"Show": {"Title": "T"}}"#).unwrap();
    let u = a.union(&b);
    assert_eq!(u.graph().out_degree(u.graph().root()), 2);
    // Acyclic union exports to both formats.
    assert!(u.to_json().is_ok());
    assert!(u.to_xml().is_ok());
    // XML round trip through the facade.
    let xml = a.to_xml().unwrap();
    let back = Database::from_xml(&xml).unwrap();
    assert!(graphs_bisimilar(a.graph(), back.graph()));
}

#[test]
fn parallel_select_through_decompose_module() {
    use semistructured::query::decompose::evaluate_select_parallel;
    let db = Database::new(movie_database(&MovieDbConfig::sized(40)));
    let q =
        parse_query(r#"select {t: T} from db.Entry.Movie M, M.Title T, M.Year Y where Y < 1960"#)
            .unwrap();
    let (seq, _) =
        semistructured::query::evaluate_select(db.graph(), &q, &EvalOptions::default()).unwrap();
    let par = evaluate_select_parallel(db.graph(), &q, 4).unwrap();
    assert!(graphs_bisimilar(&seq, &par));
}

#[test]
fn one_index_and_diff_through_public_api() {
    let db = Database::new(movie_database(&MovieDbConfig::sized(25)));
    let one = semistructured::schema::OneIndex::build(db.graph());
    assert!(one.node_count() <= db.stats().nodes);
    // A database diffs empty against itself.
    let d = semistructured::schema::diff_paths(db.graph(), db.graph(), 4);
    assert!(d.is_empty());
}
