//! Integration tests for `ssd-trace`: across every traced evaluator —
//! select (plain and optimized), datalog, and bare RPEs — and every
//! outcome — success, fuel/memory exhaustion, cancellation, injected
//! faults, and panics — the emitted event stream is *well-formed*:
//! strictly increasing sequence numbers, every span opened is closed
//! exactly once, and parent links are acyclic (a parent always opens
//! before its children). `semistructured::trace::validate` checks all
//! of that; these tests drive it with proptest.

use proptest::prelude::*;
use semistructured::trace::{self, Phase, SharedRing, Tracer};
use semistructured::{Budget, CancelToken, Database};

const FP_SELECT_BINDING: &str = semistructured::query::lang::eval::FP_SELECT_BINDING;

fn movies(n: usize) -> Database {
    let entries: Vec<String> = (0..n)
        .map(|i| {
            format!(
                "Entry: {{Movie: {{Title: \"M{i}\", Cast: {{Actors: \"A{i}\"}}, Year: {}}}}}",
                1900 + i
            )
        })
        .collect();
    Database::from_literal(&format!("{{{}}}", entries.join(", "))).unwrap()
}

const SELECT: &str = "select T from db.Entry.Movie.Title T";
const JOIN: &str = "select {t: T, a: A} from db.Entry.Movie M, M.Title T, M.Cast.Actors A";
const TC: &str = "reach(X) :- root(X).\nreach(Y) :- reach(X), edge(X, _L, Y).";

fn ring_tracer() -> (Tracer, SharedRing) {
    let ring = SharedRing::new(8192);
    let tracer = Tracer::with_sink(Box::new(ring.clone()));
    (tracer, ring)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every combination of evaluator, budget, cancellation, and fault
    /// injection yields a well-formed trace — success and failure alike.
    #[test]
    fn traces_are_well_formed(
        n in 1usize..16,
        fuel_raw in 0u64..1_500,
        kind in 0u8..4,
        optimize in any::<bool>(),
        cancelled in any::<bool>(),
        inject in any::<bool>(),
    ) {
        // 0 means "no explicit fuel cap" — the metered default applies.
        let fuel = (fuel_raw > 0).then_some(fuel_raw);
        let db = movies(n);
        let (tracer, ring) = ring_tracer();
        let mut budget = Budget::metered();
        if let Some(f) = fuel {
            budget = budget.max_steps(f);
        }
        if inject {
            budget = budget.fail_at(FP_SELECT_BINDING, 2);
        }
        let token = CancelToken::new();
        if cancelled {
            token.cancel();
        }
        let budget = budget.cancel_token(token);
        let guard = budget.guard();
        match kind {
            0 => {
                let _ = db.query_traced(SELECT, Some(&guard), optimize, Some(&tracer));
            }
            1 => {
                let _ = db.query_traced(JOIN, Some(&guard), optimize, Some(&tracer));
            }
            2 => {
                let _ = db.datalog_traced(TC, Some(&guard), Some(&tracer));
            }
            _ => {
                // A bare RPE through the standalone traced entry point.
                let q = semistructured::query::parse_query(SELECT).unwrap();
                let _ = semistructured::query::rpe::eval_rpe_traced(
                    db.graph(),
                    db.graph().root(),
                    &q.bindings[0].path,
                    &guard,
                    Some(&tracer),
                );
            }
        }
        tracer.flush();
        let events = ring.snapshot();
        prop_assert!(!events.is_empty(), "a traced run must emit events");
        if let Err(why) = trace::validate(&events) {
            return Err(TestCaseError::Fail(format!("malformed trace: {why}")));
        }
    }

    /// Detached (cross-thread) span ids stitch into the same validity
    /// contract: open once, close once, in seq order.
    #[test]
    fn detached_spans_validate(jobs in 1usize..20) {
        let (tracer, ring) = ring_tracer();
        let ids: Vec<u64> = (0..jobs)
            .map(|i| {
                tracer.open_detached(
                    Phase::Serve,
                    "job",
                    0,
                    vec![("job", (i as u64).into())],
                )
            })
            .collect();
        // Close in reverse order — detached spans need not nest.
        for &id in ids.iter().rev() {
            tracer.close_detached(id, Phase::Serve, "job", 1, 0, Vec::new());
        }
        tracer.flush();
        prop_assert!(trace::validate(&ring.snapshot()).is_ok());
    }
}

/// A panic while spans are open must not corrupt the stream: `Span`'s
/// drop closes it during unwinding, so the trace stays well-formed and
/// the tracer stays usable afterwards.
#[test]
fn spans_close_during_panic_unwind() {
    let (tracer, ring) = ring_tracer();
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _outer = tracer.span(Phase::Eval, "outer", None);
        let _inner = tracer.span(Phase::Eval, "inner", None);
        panic!("deliberate test panic");
    }));
    assert!(unwound.is_err());
    tracer.flush();
    trace::validate(&ring.snapshot()).expect("trace must survive unwinding");
    // The tracer is still usable after the panic.
    drop(tracer.span(Phase::Eval, "after", None));
    tracer.flush();
    trace::validate(&ring.snapshot()).expect("tracer must stay usable");
}

/// Exhaustion mid-evaluation emits the guard event and still closes
/// every open span.
#[test]
fn exhaustion_emits_guard_event_and_closes_spans() {
    let db = movies(50);
    let (tracer, ring) = ring_tracer();
    let budget = Budget::metered().max_steps(10);
    let guard = budget.guard();
    let err = db.query_traced(SELECT, Some(&guard), false, Some(&tracer));
    assert!(err.is_err(), "10 fuel cannot evaluate 50 movies");
    tracer.flush();
    let events = ring.snapshot();
    trace::validate(&events).expect("exhausted trace must be well-formed");
    assert!(
        events
            .iter()
            .any(|e| e.phase == Phase::Guard && e.name == "exhausted"),
        "expected a guard exhaustion event"
    );
}

/// Cancellation surfaces like exhaustion: a guard event, then clean
/// span closure.
#[test]
fn cancellation_closes_spans() {
    let db = movies(20);
    let (tracer, ring) = ring_tracer();
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::metered().cancel_token(token);
    let guard = budget.guard();
    let err = db.datalog_traced(TC, Some(&guard), Some(&tracer));
    assert!(err.is_err(), "a pre-cancelled token must stop evaluation");
    tracer.flush();
    trace::validate(&ring.snapshot()).expect("cancelled trace must be well-formed");
}
