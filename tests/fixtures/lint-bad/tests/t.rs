//! Fixture tests: reference the first code by literal and the first
//! variant by name, leaving the last registry entry uncovered.

#[test]
fn alpha_fires() {
    assert_eq!(Code::AlphaBad.as_str(), "SSD001");
}

#[test]
fn wal_torn_fires() {
    assert_eq!(Code::WalTorn.as_str(), "SSD400");
}
