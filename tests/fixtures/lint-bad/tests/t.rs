//! Fixture tests: reference the first code by literal and the first
//! variant by name, leaving the last registry entry uncovered.

#[test]
fn alpha_fires() {
    assert_eq!(Code::AlphaBad.as_str(), "SSD001");
}
