//! Fixture registry with seeded L1 drift: SSD001 defined twice, a band
//! gap between SSD001 and SSD004, SSD004 undocumented and untested.
//! The storage band repeats every mode on SSD4xx: SSD400 duplicated,
//! SSD401 a band gap, SSD402 undocumented and untested, SSD403 a
//! phantom doc row.

pub enum Code {
    AlphaBad,
    BetaDup,
    GammaGap,
    WalTorn,
    WalTornDup,
    WalReplay,
}

impl Code {
    pub fn as_str(self) -> &'static str {
        match self {
            Code::AlphaBad => "SSD001",
            Code::BetaDup => "SSD001",
            Code::GammaGap => "SSD004",
            Code::WalTorn => "SSD400",
            Code::WalTornDup => "SSD400",
            Code::WalReplay => "SSD402",
        }
    }
}
