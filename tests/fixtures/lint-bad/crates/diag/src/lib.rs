//! Fixture registry with seeded L1 drift: SSD001 defined twice, a band
//! gap between SSD001 and SSD004, SSD004 undocumented and untested.

pub enum Code {
    AlphaBad,
    BetaDup,
    GammaGap,
}

impl Code {
    pub fn as_str(self) -> &'static str {
        match self {
            Code::AlphaBad => "SSD001",
            Code::BetaDup => "SSD001",
            Code::GammaGap => "SSD004",
        }
    }
}
