//! Fixture serving crate: the hierarchy `server.rs` violates.

pub const LOCK_ORDER: &[&str] = &["state", "workers"];

pub mod server;
