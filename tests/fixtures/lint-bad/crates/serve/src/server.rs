//! Seeded L4 violations against the LOCK_ORDER in lib.rs.

pub struct Inner;

impl Inner {
    /// L4: acquires `state` (rank 0) while holding `workers` (rank 1).
    pub fn inverted(&self) {
        let w = self.workers.lock();
        let s = self.state.lock();
        drop(s);
        drop(w);
    }

    /// L4: blocking channel send while a lock is held.
    pub fn blocking_send(&self) {
        let s = self.state.lock();
        self.tx.send(1);
        drop(s);
    }

    /// L4: `rogue` is not a declared lock.
    pub fn unknown_mutex(&self) {
        let r = self.rogue.lock();
        drop(r);
    }

    /// L6 (two hops): holds `workers` while a transitive callee takes
    /// `state`. No single body shows the inversion, so L4 cannot see it.
    pub fn outer_hop(&self) {
        let w = self.workers.lock();
        self.middle_hop();
        drop(w);
    }

    /// The hop: acquires nothing itself.
    pub fn middle_hop(&self) {
        self.inner_acquire();
    }

    /// The far end of the chain.
    pub fn inner_acquire(&self) {
        let s = self.state.lock();
        drop(s);
    }

    /// L7: a blocking send one call away while `state` is held.
    pub fn outer_block(&self) {
        let s = self.state.lock();
        self.deep_send();
        drop(s);
    }

    /// Blocks, but holds nothing — clean on its own.
    pub fn deep_send(&self) {
        self.tx.send(2);
    }

    /// L4 via a call chain: the receiver resolves through `.state()`.
    pub fn chain_resolved(&self) {
        let w = self.workers.lock();
        let s = self.inner.state().lock();
        drop(s);
        drop(w);
    }

    /// L4: a lock on an unnamed expression reports the chain itself.
    pub fn chain_unresolved(&self) {
        let g = self.cell().lock();
        drop(g);
    }

    /// L8: Relaxed poll on a flag that uses SeqCst elsewhere.
    pub fn mixed_flag(&self) -> bool {
        self.closed.store(true, Ordering::SeqCst);
        self.closed.load(Ordering::Relaxed)
    }
}
