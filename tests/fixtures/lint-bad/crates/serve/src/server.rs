//! Seeded L4 violations against the LOCK_ORDER in lib.rs.

pub struct Inner;

impl Inner {
    /// L4: acquires `state` (rank 0) while holding `workers` (rank 1).
    pub fn inverted(&self) {
        let w = self.workers.lock();
        let s = self.state.lock();
        drop(s);
        drop(w);
    }

    /// L4: blocking channel send while a lock is held.
    pub fn blocking_send(&self) {
        let s = self.state.lock();
        self.tx.send(1);
        drop(s);
    }

    /// L4: `rogue` is not a declared lock.
    pub fn unknown_mutex(&self) {
        let r = self.rogue.lock();
        drop(r);
    }
}
