//! Seeded L9/L10 violations: the WAL publish protocol and fault
//! coverage.

pub struct Store;

impl Store {
    /// L9: publishes a new generation with no WAL append or fsync
    /// anywhere before the swap.
    pub fn commit_unlogged(&self, db: u32) {
        self.faults.hit("wal.apply");
        *self.current.lock() = db;
    }

    /// Clean: log → fsync → apply → swap.
    pub fn commit_ok(&self, db: u32) {
        self.faults.hit("wal.write");
        self.wal.write_all(b"frame");
        self.wal.sync_data();
        *self.current.lock() = db;
    }

    /// L10: raw I/O on a path no `wal.*` fault point reaches.
    pub fn sideload(&self, bytes: &[u8]) {
        self.file.write_all(bytes);
    }
}
