//! Seeded L5 violations: a detached span with no close, and spans
//! discarded at their open site.

pub struct Tracer;

/// L5: detached span opened, never closed in this function.
pub fn leaky(t: &Tracer) -> u64 {
    let id = t.open_detached(1, "job");
    id
}

/// L5: both discard shapes.
pub fn discarded(t: &Tracer) {
    span(t, "phase", "name");
    let _ = span(t, "phase", "name2");
}

fn span(_t: &Tracer, _phase: &str, _name: &str) -> u32 {
    0
}
