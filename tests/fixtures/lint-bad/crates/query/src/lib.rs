//! Fixture evaluators with seeded L2 and L3 violations.

pub struct Graph;
pub struct Guard;

/// L2: public entry point with no governed variant.
pub fn eval_orphan(_g: &Graph) -> usize {
    0
}

/// Governed pair: fine.
pub fn eval_thing(_g: &Graph) -> usize {
    0
}

pub fn eval_thing_guarded(_g: &Graph, _guard: &Guard) -> usize {
    1
}

/// L2: runs under a Guard but calls the bare wrapper.
pub fn eval_outer_guarded(g: &Graph, _guard: &Guard) -> usize {
    eval_thing(g)
}

/// L3: panic sites over the budget of 1.
pub fn boom(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn kaboom() {
    panic!("seeded violation");
}

// lint: allow(panic)
pub fn reasonless() -> u32 {
    None::<u32>.unwrap()
}
