//! Integration tests for `ssd-guard`: every evaluator entry point
//! accepts a budget and (a) surfaces each exhaustion kind as a rendered
//! SSD1xx diagnostic, (b) fires every fault-injection seam, (c) returns
//! well-formed partial results in graceful-degradation mode, and (d) is
//! deterministic for a fixed budget.

use semistructured::schema::{FP_DATAGUIDE_STATE, FP_SCHEMA_EXTRACT};
use semistructured::triples::datalog::FP_DATALOG_ROUND;
use semistructured::{Budget, CancelToken, DataGuide, Database, Exhausted};

const FP_SELECT_BINDING: &str = semistructured::query::lang::eval::FP_SELECT_BINDING;
const FP_RPE_STEP: &str = semistructured::query::rpe::eval::FP_RPE_STEP;
const FP_GEXT_NODE: &str = semistructured::query::recursion::FP_GEXT_NODE;

/// A movie database with `n` entries — big enough that per-step budgets
/// bite before evaluation finishes.
fn movies(n: usize) -> Database {
    let entries: Vec<String> = (0..n)
        .map(|i| {
            format!(
                "Entry: {{Movie: {{Title: \"M{i}\", Cast: {{Actors: \"A{i}\"}}, Year: {}}}}}",
                1900 + i
            )
        })
        .collect();
    Database::from_literal(&format!("{{{}}}", entries.join(", "))).unwrap()
}

/// A flat graph with `n` anonymous children; quadratic datalog rules over
/// `node/1` turn it into an arbitrarily heavy workload.
fn flat(n: usize) -> Database {
    let entries: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
    Database::from_literal(&format!("{{{}}}", entries.join(", "))).unwrap()
}

const TC: &str = "reach(X) :- root(X).\nreach(Y) :- reach(X), edge(X, _L, Y).";
const SELECT: &str = "select T from db.Entry.Movie.Title T";

// ---------------------------------------------------------------- fault
// injection: every seam, every evaluator.

#[test]
fn fault_injection_select_binding() {
    let db = movies(5);
    let budget = Budget::unlimited().fail_at(FP_SELECT_BINDING, 1);
    let err = db.query_with(SELECT, &budget.guard()).err().unwrap();
    assert!(err.contains("SSD106"), "{err}");
    assert!(err.contains(FP_SELECT_BINDING), "{err}");
}

#[test]
fn fault_injection_rpe_step() {
    let db = movies(5);
    let budget = Budget::unlimited().fail_at(FP_RPE_STEP, 1);
    let err = db.query_with(SELECT, &budget.guard()).err().unwrap();
    assert!(err.contains("SSD106"), "{err}");
    assert!(err.contains(FP_RPE_STEP), "{err}");
}

#[test]
fn fault_injection_recursion_node() {
    let db = movies(5);
    let budget = Budget::unlimited().fail_at(FP_GEXT_NODE, 1);
    let err = db
        .rewrite_with("rewrite case Cast => collapse", &budget.guard())
        .err()
        .unwrap();
    assert!(err.contains("SSD106"), "{err}");
}

#[test]
fn fault_injection_datalog_round() {
    let db = movies(5);
    let budget = Budget::unlimited().fail_at(FP_DATALOG_ROUND, 1);
    let err = db.datalog_with(TC, &budget.guard()).err().unwrap();
    assert!(err.contains("SSD106"), "{err}");
}

#[test]
fn fault_injection_dataguide_state() {
    let db = movies(5);
    let budget = Budget::unlimited().fail_at(FP_DATAGUIDE_STATE, 1);
    let err = DataGuide::try_build(db.graph(), &budget.guard())
        .err()
        .unwrap();
    assert_eq!(
        err,
        Exhausted::Fault {
            site: FP_DATAGUIDE_STATE.to_string()
        }
    );
}

#[test]
fn fault_injection_schema_extract() {
    let db = movies(5);
    let budget = Budget::unlimited().fail_at(FP_SCHEMA_EXTRACT, 1);
    let err = db.extract_schema_with(&budget.guard()).err().unwrap();
    assert!(err.contains("SSD106"), "{err}");
}

#[test]
fn fault_injection_is_one_shot_and_countdown_based() {
    let db = movies(5);
    // Firing on the 10_000th hit never triggers on this tiny input...
    let budget = Budget::unlimited().fail_at(FP_SELECT_BINDING, 10_000);
    assert!(db.query_with(SELECT, &budget.guard()).is_ok());
    // ...while a later hit of a seam that is reached repeatedly does:
    // with three binding levels the seam fires once per enumerated prefix.
    let nested = "select T from db.Entry E, E.Movie M, M.Title T";
    let budget = Budget::unlimited().fail_at(FP_SELECT_BINDING, 3);
    assert!(db.query_with(nested, &budget.guard()).is_err());
}

// ---------------------------------------------------------------- every
// exhaustion kind, per evaluator.

#[test]
fn select_surfaces_all_exhaustion_kinds() {
    let db = movies(50);
    let cases: Vec<(Budget, &str)> = vec![
        (Budget::unlimited().max_steps(3), "SSD101"),
        (Budget::unlimited().max_memory_bytes(64), "SSD102"),
        (
            Budget::unlimited().timeout(std::time::Duration::ZERO),
            "SSD103",
        ),
    ];
    for (budget, code) in cases {
        let err = db.query_with(SELECT, &budget.guard()).err().unwrap();
        assert!(err.contains(code), "expected {code}, got: {err}");
    }
    // Depth: binding nesting depth in the enumerator.
    let nested = "select T from db.Entry E, E.Movie M, M.Title T";
    let err = db
        .query_with(nested, &Budget::unlimited().max_depth(1).guard())
        .err()
        .unwrap();
    assert!(err.contains("SSD104"), "{err}");
}

#[test]
fn datalog_surfaces_steps_memory_deadline_cancel() {
    let db = movies(20);
    let cases: Vec<(Budget, &str)> = vec![
        (Budget::unlimited().max_steps(5), "SSD101"),
        (Budget::unlimited().max_memory_bytes(100), "SSD102"),
        (
            Budget::unlimited().timeout(std::time::Duration::ZERO),
            "SSD103",
        ),
    ];
    for (budget, code) in cases {
        let err = db.datalog_with(TC, &budget.guard()).err().unwrap();
        assert!(err.contains(code), "expected {code}, got: {err}");
    }
    let pre_cancelled = CancelToken::new();
    pre_cancelled.cancel();
    let budget = Budget::unlimited().cancel_token(pre_cancelled);
    let err = db.datalog_with(TC, &budget.guard()).err().unwrap();
    assert!(err.contains("SSD105"), "{err}");
}

#[test]
fn rewrite_schema_dataguide_surface_step_exhaustion() {
    let db = movies(20);
    let b = || Budget::unlimited().max_steps(2);
    let err = db
        .rewrite_with("rewrite case Cast => collapse", &b().guard())
        .err()
        .unwrap();
    assert!(err.contains("SSD101"), "{err}");
    let err = db.extract_schema_with(&b().guard()).err().unwrap();
    assert!(err.contains("SSD101"), "{err}");
    let err = DataGuide::try_build(db.graph(), &b().guard())
        .err()
        .unwrap();
    assert_eq!(err, Exhausted::Steps { limit: 2 });
}

#[test]
fn dataguide_surfaces_memory_exhaustion() {
    let db = movies(20);
    let budget = Budget::unlimited().max_memory_bytes(8);
    let err = DataGuide::try_build(db.graph(), &budget.guard())
        .err()
        .unwrap();
    assert!(matches!(err, Exhausted::Memory { .. }), "{err:?}");
}

// ---------------------------------------------------------------- partial
// (graceful degradation) mode: well-formed results + truncation note.

#[test]
fn partial_select_returns_well_formed_graph() {
    let db = movies(50);
    let budget = Budget::unlimited().max_steps(40).partial(true);
    let result = db.query_with(SELECT, &budget.guard()).unwrap();
    let truncated = result.stats().truncated.clone().expect("must truncate");
    assert!(truncated.contains("SSD101"), "{truncated}");
    assert!(
        result.stats().warnings.iter().any(|w| w.contains("SSD107")),
        "{:?}",
        result.stats().warnings
    );
    // The partial result graph is well-formed: its literal form re-parses.
    let lit = result.to_literal();
    Database::from_literal(&lit).expect("partial result must re-parse");
    // And it is a strict under-approximation of the full result.
    let full = db.query(SELECT).unwrap();
    assert!(
        result.graph().out_degree(result.graph().root())
            <= full.graph().out_degree(full.graph().root())
    );
}

#[test]
fn partial_datalog_keeps_head_predicates_well_formed() {
    let db = movies(20);
    let budget = Budget::unlimited().max_steps(10).partial(true);
    let eval = db.datalog_with(TC, &budget.guard()).unwrap();
    assert!(eval.truncated.is_some());
    // Head predicates exist even when truncation skipped their strata.
    assert!(eval.facts.contains_key("reach"));
    // Tuples are an under-approximation of the full fixpoint.
    let full = db.datalog(TC).unwrap();
    assert!(eval.count("reach") <= full.count("reach"));
}

#[test]
fn partial_rewrite_returns_well_formed_graph() {
    let db = movies(30);
    let budget = Budget::unlimited().max_steps(20).partial(true);
    let out = db
        .rewrite_with("rewrite case Cast => collapse", &budget.guard())
        .unwrap();
    Database::from_literal(&out.to_literal()).expect("partial rewrite must re-parse");
}

#[test]
fn partial_schema_and_dataguide_are_usable() {
    let db = movies(30);
    let budget = Budget::unlimited().max_steps(25).partial(true);
    let guard = budget.guard();
    let schema = db.extract_schema_with(&guard).unwrap();
    let _ = schema.to_string();
    let budget = Budget::unlimited().max_steps(25).partial(true);
    let guard = budget.guard();
    let guide = DataGuide::try_build(db.graph(), &guard).unwrap();
    assert!(guard.truncation().is_some());
    let _ = guide.node_count();
}

// ---------------------------------------------------------------- budget
// outcomes are deterministic.

#[test]
fn step_limited_runs_are_deterministic() {
    let db = movies(40);
    let run = || {
        let budget = Budget::unlimited().max_steps(60).partial(true);
        let result = db.query_with(SELECT, &budget.guard()).unwrap();
        (result.to_literal(), result.stats().truncated.clone())
    };
    let (lit1, trunc1) = run();
    let (lit2, trunc2) = run();
    assert_eq!(lit1, lit2);
    assert_eq!(trunc1, trunc2);
}

#[test]
fn datalog_step_limited_runs_are_deterministic() {
    let db = movies(20);
    let run = || {
        let budget = Budget::unlimited().max_steps(200).partial(true);
        let eval = db.datalog_with(TC, &budget.guard()).unwrap();
        let mut counts: Vec<(String, usize)> = eval
            .facts
            .keys()
            .map(|p| (p.clone(), eval.count(p)))
            .collect();
        counts.sort();
        (counts, eval.iterations, eval.truncated.clone())
    };
    assert_eq!(run(), run());
}

#[test]
fn hard_exhaustion_points_are_deterministic() {
    let db = movies(30);
    let run = || {
        db.query_with(SELECT, &Budget::unlimited().max_steps(25).guard())
            .err()
            .unwrap()
    };
    assert_eq!(run(), run());
}

// ---------------------------------------------------------------- cancellation
// stops a running fixpoint promptly.

#[test]
fn cancellation_mid_fixpoint_stops_datalog() {
    // Quadratic rules over an 80-node flat graph: far more join work than
    // can finish before the cancel lands, but bounded if it ever ran dry.
    let db = flat(80);
    let program = "p(X, Y) :- node(X), node(Y).\nq(X, Z) :- p(X, Y), p(Y, Z).";
    let token = CancelToken::new();
    let budget = Budget::unlimited().cancel_token(token.clone());
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            token.cancel();
        })
    };
    let started = std::time::Instant::now();
    let result = db.datalog_with(program, &budget.guard());
    let elapsed = started.elapsed();
    canceller.join().unwrap();
    let err = result.err().unwrap();
    assert!(err.contains("SSD105"), "{err}");
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "cancellation took {elapsed:?}"
    );
}
