//! Property tests for the `ssd-index` subsystem (SSD05x band):
//!
//! * the dictionary round-trips labels through dense ids and reports
//!   SSD051 (`DictionaryOverflow`) when the id space is exhausted;
//! * sorted runs are strictly sorted and duplicate-free however they are
//!   built, and `merge(base, inserts, deletes)` agrees with rebuilding
//!   from scratch;
//! * `TripleIndex::merge_delta` over an id-stable graph evolution equals
//!   a full rebuild;
//! * the batched columnar pipeline and the interpreter return bisimilar
//!   results on every plannable query — the equivalence that lets the
//!   SSD050 (`IndexFallback`) cost decision stay invisible to callers.

use proptest::prelude::*;
use semistructured::{Budget, Database, EvalOptions, Label, TripleIndex, Value};
use ssd_graph::bisim::graphs_bisimilar;
use ssd_index::run::SortedRun;
use ssd_index::{Dictionary, Key};

fn movies(n: usize) -> Database {
    let entries: Vec<String> = (0..n)
        .map(|i| {
            format!(
                "Entry: {{Movie: {{Title: \"M{i}\", Cast: {{Actors: \"A{}\"}}, Year: {}}}}}",
                i % 7,
                1900 + (i % 90)
            )
        })
        .collect();
    Database::from_literal(&format!("{{{}}}", entries.join(", "))).unwrap()
}

fn arb_label() -> impl Strategy<Value = Label> {
    prop_oneof![
        (0i64..50).prop_map(|n| Label::Value(Value::Int(n))),
        "[a-z]{1,6}".prop_map(|s| Label::Value(Value::Str(s))),
    ]
}

fn arb_key() -> impl Strategy<Value = Key> {
    (0u32..64, 0u32..8, 0u32..64).prop_map(|(s, p, o)| [s, p, o])
}

proptest! {
    /// Interning is idempotent, ids are dense, and resolve inverts
    /// lookup for every label ever interned.
    #[test]
    fn dictionary_round_trips(labels in proptest::collection::vec(arb_label(), 0..40)) {
        let mut dict = Dictionary::new();
        let mut ids = Vec::new();
        for l in &labels {
            ids.push(dict.intern(l).unwrap());
        }
        for (l, &id) in labels.iter().zip(&ids) {
            prop_assert_eq!(dict.lookup(l), Some(id));
            prop_assert_eq!(dict.intern(l).unwrap(), id);
            prop_assert_eq!(dict.resolve(id), Some(l));
        }
        prop_assert!(dict.len() <= labels.len());
        for id in 0..dict.len() as u32 {
            prop_assert!(dict.resolve(id).is_some(), "ids must be dense");
        }
    }

    /// Runs are strictly sorted and duplicate-free from any input, and
    /// every input key (and no other) is present.
    #[test]
    fn sorted_run_invariants(keys in proptest::collection::vec(arb_key(), 0..120)) {
        let run = SortedRun::from_unsorted(keys.clone());
        prop_assert!(run.is_strictly_sorted());
        for k in &keys {
            prop_assert!(run.contains(k));
        }
        let mut expect = keys;
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(run.len(), expect.len());
    }

    /// Merging a base with insert/delete runs equals rebuilding from the
    /// edited key set.
    #[test]
    fn merge_agrees_with_rebuild(
        base in proptest::collection::vec(arb_key(), 0..80),
        ins in proptest::collection::vec(arb_key(), 0..40),
        del in proptest::collection::vec(arb_key(), 0..40),
    ) {
        let b = SortedRun::from_unsorted(base.clone());
        let i = SortedRun::from_unsorted(ins.clone());
        let d = SortedRun::from_unsorted(del.clone());
        let merged = SortedRun::merge(&b, &i, &d);
        prop_assert!(merged.is_strictly_sorted());
        let mut expect: Vec<Key> = base;
        expect.retain(|k| !d.contains(k));
        expect.extend(ins.iter().filter(|k| !d.contains(k)));
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(merged.iter().copied().collect::<Vec<_>>(), expect);
    }

    /// An id-stable edit sequence merged as a delta equals a full
    /// rebuild, triple for triple.
    #[test]
    fn merge_delta_equals_rebuild(
        n in 1usize..20,
        inserts in proptest::collection::vec(0usize..5, 0..3),
        delete_year in any::<bool>(),
    ) {
        let base = movies(n);
        let index = TripleIndex::build(base.graph()).unwrap();
        let mut db = base;
        for (j, extra) in inserts.iter().enumerate() {
            let other = Database::from_literal(
                &format!("{{Extra: {{Tag: \"t{j}\", N: {extra}}}}}")).unwrap();
            db = db.union_id_stable(&other);
        }
        if delete_year {
            db = db.delete_edges_id_stable(&semistructured::Pred::Symbol("Year".into()));
        }
        let merged = index.merge_delta(db.graph()).unwrap();
        let rebuilt = TripleIndex::build(db.graph()).unwrap();
        let key = |(s, l, o): &(u32, Label, u32)| (*s, format!("{l:?}"), *o);
        let mut a = merged.decoded();
        let mut b = rebuilt.decoded();
        a.sort_by_key(key);
        b.sort_by_key(key);
        prop_assert_eq!(a, b);
        prop_assert_eq!(merged.root(), rebuilt.root());
        prop_assert!(merged.spo().is_strictly_sorted());
    }

    /// Batched and interpreted execution agree (bisimilar result graphs)
    /// on conjunctive path queries at every size the planner sees.
    #[test]
    fn batched_equals_interpreted(n in 1usize..60, pick in 0usize..4) {
        let queries = [
            "select T from db.Entry.Movie.Title T",
            "select {t: T, a: A} from db.Entry.Movie M, M.Title T, M.Cast.Actors A",
            "select M from db.Entry.Movie M where exists M.Year",
            "select A from db.Entry.Movie.Cast.Actors A",
        ];
        let db = movies(n);
        let q = queries[pick];
        let batched = db.query(q).unwrap();
        let interp = semistructured::query::evaluate_select(
            db.graph(),
            &semistructured::query::parse_query(q).unwrap(),
            &EvalOptions::default(),
        )
        .unwrap();
        prop_assert!(
            graphs_bisimilar(batched.graph(), &interp.0),
            "access paths diverged on {} at n={}", q, n
        );
    }
}

/// The index and the relational shredder describe the same edge
/// relation: decoding the SPO run reproduces `TripleStore::spo_sorted`.
#[test]
fn index_agrees_with_the_triple_shredder() {
    let db = movies(25);
    let index = TripleIndex::build(db.graph()).unwrap();
    let store = semistructured::TripleStore::from_graph(db.graph());
    let from_index: Vec<(usize, String, usize)> = {
        let mut v: Vec<_> = index
            .decoded()
            .into_iter()
            .map(|(s, l, o)| (s as usize, format!("{l:?}"), o as usize))
            .collect();
        v.sort();
        v
    };
    let from_store: Vec<(usize, String, usize)> = store
        .spo_sorted()
        .into_iter()
        .map(|(s, l, o)| (s.index(), format!("{l:?}"), o.index()))
        .collect();
    assert_eq!(from_index, from_store);
}

/// SSD051: a dictionary with an artificially small id space reports the
/// overflow as a diagnostic instead of wrapping ids.
#[test]
fn dictionary_overflow_is_ssd051() {
    let mut dict = Dictionary::with_limit(2);
    dict.intern(&Label::Value(Value::Int(0))).unwrap();
    dict.intern(&Label::Value(Value::Int(1))).unwrap();
    let err = dict.intern(&Label::Value(Value::Int(2))).unwrap_err();
    assert_eq!(err.code, semistructured::diag::Code::DictionaryOverflow);
    assert!(err.headline().contains("SSD051"), "{}", err.headline());
}

/// SSD050: unbatchable query shapes fall back to the interpreter with a
/// reasoned note, and the result is still correct.
#[test]
fn unbatchable_shapes_fall_back_with_ssd050() {
    let db = movies(40);
    let q = semistructured::query::parse_query("select T from db.Entry*.Movie.Title T").unwrap();
    let access = db.select_access(&q);
    let reason = access
        .fallback_reason()
        .expect("Kleene star is unbatchable");
    assert!(reason.contains("star"), "{reason}");
    let note = semistructured::query::batch::fallback_note(reason);
    assert_eq!(note.code, semistructured::diag::Code::IndexFallback);
    assert!(note.headline().contains("SSD050"), "{}", note.headline());
    // The query still runs (via the interpreter).
    let _ = db
        .query_with(
            "select T from db.Entry*.Movie.Title T",
            &Budget::unlimited().guard(),
        )
        .unwrap();
}
