//! Parser robustness: no input — random bytes, structured junk, or
//! pathologically deep nesting — may panic or overflow the stack. Bad
//! input is a `Result::Err`, deep input an SSD110 diagnostic.

use proptest::prelude::*;
use semistructured::graph::literal::{parse_graph, MAX_PARSE_DEPTH};
use semistructured::query::lang::{parse_query, parse_rewrite};
use semistructured::triples::datalog::parse_program;
use semistructured::Database;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The literal parser never panics on arbitrary byte strings.
    #[test]
    fn literal_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = parse_graph(&src);
    }

    /// ... nor on structured-looking junk.
    #[test]
    fn literal_parser_never_panics_on_braces(src in "[{}@=:,a-z0-9\" ]{0,256}") {
        let _ = parse_graph(&src);
    }

    /// The JSON importer never panics.
    #[test]
    fn json_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = Database::from_json(&src);
    }

    #[test]
    fn json_parser_never_panics_on_jsonish(src in "[\\[\\]{}\",:0-9a-z\\\\u ]{0,256}") {
        let _ = Database::from_json(&src);
    }

    /// The XML importer never panics.
    #[test]
    fn xml_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = Database::from_xml(&src);
    }

    #[test]
    fn xml_parser_never_panics_on_xmlish(src in "[<>/&;a-z0-9\" =]{0,256}") {
        let _ = Database::from_xml(&src);
    }

    /// The select-from-where query parser never panics.
    #[test]
    fn query_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = parse_query(&src);
    }

    #[test]
    fn query_parser_never_panics_on_queryish(
        src in "(select|from|where|db|[A-Za-z.*+|()\"=<> ]){0,128}"
    ) {
        let _ = parse_query(&src);
    }

    /// The rewrite (transducer) parser never panics.
    #[test]
    fn rewrite_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = parse_rewrite(&src);
    }

    /// The datalog program parser never panics.
    #[test]
    fn datalog_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let syms = semistructured::graph::new_symbols();
        let _ = parse_program(&src, &syms);
    }

    #[test]
    fn datalog_parser_never_panics_on_rulish(src in "[a-zX-Z(),._:\\- ]{0,256}") {
        let syms = semistructured::graph::new_symbols();
        let _ = parse_program(&src, &syms);
    }
}

// ---------------------------------------------------------------- depth
// limits: pathological nesting returns SSD110 instead of blowing the stack.

#[test]
fn deep_literal_nesting_is_rejected_with_ssd110() {
    let deep = format!("{}\"x\"{}", "{a: ".repeat(10_000), "}".repeat(10_000));
    let err = parse_graph(&deep).err().unwrap();
    assert!(err.message.contains("SSD110"), "{}", err.message);
}

#[test]
fn literal_nesting_at_the_limit_parses() {
    let n = MAX_PARSE_DEPTH - 1;
    let ok = format!("{}\"x\"{}", "{a: ".repeat(n), "}".repeat(n));
    assert!(parse_graph(&ok).is_ok());
}

#[test]
fn deep_json_nesting_is_rejected_with_ssd110() {
    let deep = format!("{}1{}", "[".repeat(10_000), "]".repeat(10_000));
    let err = Database::from_json(&deep).err().unwrap();
    assert!(err.contains("SSD110"), "{err}");
}

#[test]
fn deep_xml_nesting_is_rejected_with_ssd110() {
    let deep = format!("{}1{}", "<a>".repeat(10_000), "</a>".repeat(10_000));
    let err = Database::from_xml(&deep).err().unwrap();
    assert!(err.contains("SSD110"), "{err}");
}

#[test]
fn deep_query_nesting_is_rejected_with_ssd110() {
    let deep = format!(
        "select {}\"x\"{} from db.a X",
        "{a: ".repeat(10_000),
        "}".repeat(10_000)
    );
    let err = parse_query(&deep).err().unwrap();
    assert!(err.message.contains("SSD110"), "{}", err.message);
}

#[test]
fn deep_rewrite_nesting_is_rejected_with_ssd110() {
    let deep = format!(
        "rewrite case a => {}\"x\"{}",
        "{a: ".repeat(10_000),
        "}".repeat(10_000)
    );
    let err = parse_rewrite(&deep).err().unwrap();
    assert!(format!("{err:?}").contains("SSD110"), "{err:?}");
}

// ---------------------------------------------------------------------------
// Parser 6: the ssd-serve wire protocol (frames + commands)
// ---------------------------------------------------------------------------

use ssd_serve::protocol::{decode_frame, encode_frame, parse_command, FrameError, MAX_FRAME};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The frame decoder never panics on arbitrary bytes.
    #[test]
    fn frame_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = decode_frame(&bytes);
    }

    /// Well-formed frames round-trip exactly, and every strict prefix
    /// is "incomplete" (`Ok(None)`), never an error or a wrong parse.
    #[test]
    fn frame_round_trip_and_truncation(payload in "[ -~\n]{0,300}") {
        let enc = encode_frame(&payload);
        let (dec, used) = decode_frame(&enc).unwrap().unwrap();
        prop_assert_eq!(&dec, &payload);
        prop_assert_eq!(used, enc.len());
        for cut in [1, enc.len() / 2, enc.len() - 1] {
            if cut < enc.len() {
                prop_assert_eq!(decode_frame(&enc[..cut]), Ok(None));
            }
        }
        // Trailing garbage is not consumed.
        let mut padded = enc.clone();
        padded.extend_from_slice(b"SSD garbage");
        let (_, used2) = decode_frame(&padded).unwrap().unwrap();
        prop_assert_eq!(used2, enc.len());
    }

    /// A declared length over the cap is rejected before any payload
    /// buffering, no matter how large the number is.
    #[test]
    fn oversized_frames_are_rejected(extra in 1u64..u64::from(u32::MAX)) {
        let len = MAX_FRAME as u64 + extra;
        let head = format!("SSD {len}\n");
        prop_assert_eq!(
            decode_frame(head.as_bytes()),
            Err(FrameError::Oversized(len as usize))
        );
    }

    /// The command parser never panics; bad verbs are SSD210.
    #[test]
    fn command_parser_never_panics(s in "\\PC{0,256}") {
        let _ = parse_command(&s);
    }

    /// Structured junk around real verbs parses or fails cleanly too.
    #[test]
    fn command_parser_handles_verb_like_junk(
        s in "(HELLO|QUERY|DATALOG|CANCEL|STATS|BYE)[ a-z0-9=.%]{0,64}"
    ) {
        let _ = parse_command(&s);
    }
}

// ---------------------------------------------------------------------------
// Parser 7: the ssd-store write-ahead-log frame codec
// ---------------------------------------------------------------------------

use ssd_store::wal::{self, Decoded, KIND_COMMIT, KIND_INSERT};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Neither the frame decoder nor the full log scanner panics on
    /// arbitrary bytes — a corrupt WAL is diagnosed, never a crash.
    #[test]
    fn wal_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = wal::decode_frame(&bytes);
        let _ = wal::scan(&bytes);
    }

    /// Well-formed WAL frames round-trip exactly, and every strict
    /// prefix decodes as `Torn` — truncation is always recognized as
    /// incompleteness, never misread as a different frame.
    #[test]
    fn wal_frame_round_trip_and_truncation(
        seq in 1u64..1_000_000,
        body in "[ -~\n]{0,200}",
    ) {
        let enc = wal::encode_frame(seq, KIND_INSERT, body.as_bytes());
        match wal::decode_frame(&enc) {
            Decoded::Frame { frame, consumed } => {
                prop_assert_eq!(frame.seq, seq);
                prop_assert_eq!(frame.kind, KIND_INSERT);
                prop_assert_eq!(frame.body, body);
                prop_assert_eq!(consumed, enc.len());
            }
            other => prop_assert!(false, "round trip failed: {other:?}"),
        }
        for cut in 0..enc.len() {
            prop_assert!(
                matches!(wal::decode_frame(&enc[..cut]), Decoded::Torn),
                "prefix of {cut} byte(s) did not read as torn"
            );
        }
    }

    /// Any single bit flip in the payload or checksum region is caught
    /// (CRC32 detects all single-bit errors); the frame never decodes
    /// to a valid frame again.
    #[test]
    fn wal_bit_flips_never_decode(
        seq in 1u64..1000,
        body in "[ -~]{0,64}",
        bit in 0usize..8,
        pos_pick in any::<u64>(),
    ) {
        let mut enc = wal::encode_frame(seq, KIND_COMMIT, body.as_bytes());
        // Flip a bit at or after the payload start (byte 4): the length
        // prefix is not CRC-covered, so flips there are exercised by
        // `wal_decoder_never_panics` instead.
        let pos = 4 + (pos_pick as usize % (enc.len() - 4));
        enc[pos] ^= 1 << bit;
        prop_assert!(
            !matches!(wal::decode_frame(&enc), Decoded::Frame { .. }),
            "flipped bit {bit} of byte {pos} went undetected"
        );
    }

    /// A committed transaction survives any garbage appended after it:
    /// the scanner keeps the committed prefix and classifies the tail.
    #[test]
    fn wal_torn_tail_never_loses_committed_txn(
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
        body in "[ -~]{1,64}",
    ) {
        let mut log = wal::encode_frame(1, KIND_INSERT, body.as_bytes());
        log.extend_from_slice(&wal::encode_frame(2, KIND_COMMIT, b""));
        let clean_len = log.len() as u64;
        log.extend_from_slice(&garbage);
        let out = wal::scan(&log);
        prop_assert!(!out.txns.is_empty(), "committed txn lost");
        prop_assert_eq!(out.txns[0].ops.len(), 1);
        prop_assert_eq!(out.txns[0].ops[0].body.as_str(), body.as_str());
        prop_assert!(out.committed_len >= clean_len);
    }
}
