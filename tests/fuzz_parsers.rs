//! Parser robustness: no input — random bytes, structured junk, or
//! pathologically deep nesting — may panic or overflow the stack. Bad
//! input is a `Result::Err`, deep input an SSD110 diagnostic.

use proptest::prelude::*;
use semistructured::graph::literal::{parse_graph, MAX_PARSE_DEPTH};
use semistructured::query::lang::{parse_query, parse_rewrite};
use semistructured::triples::datalog::parse_program;
use semistructured::Database;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The literal parser never panics on arbitrary byte strings.
    #[test]
    fn literal_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = parse_graph(&src);
    }

    /// ... nor on structured-looking junk.
    #[test]
    fn literal_parser_never_panics_on_braces(src in "[{}@=:,a-z0-9\" ]{0,256}") {
        let _ = parse_graph(&src);
    }

    /// The JSON importer never panics.
    #[test]
    fn json_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = Database::from_json(&src);
    }

    #[test]
    fn json_parser_never_panics_on_jsonish(src in "[\\[\\]{}\",:0-9a-z\\\\u ]{0,256}") {
        let _ = Database::from_json(&src);
    }

    /// The XML importer never panics.
    #[test]
    fn xml_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = Database::from_xml(&src);
    }

    #[test]
    fn xml_parser_never_panics_on_xmlish(src in "[<>/&;a-z0-9\" =]{0,256}") {
        let _ = Database::from_xml(&src);
    }

    /// The select-from-where query parser never panics.
    #[test]
    fn query_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = parse_query(&src);
    }

    #[test]
    fn query_parser_never_panics_on_queryish(
        src in "(select|from|where|db|[A-Za-z.*+|()\"=<> ]){0,128}"
    ) {
        let _ = parse_query(&src);
    }

    /// The rewrite (transducer) parser never panics.
    #[test]
    fn rewrite_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = parse_rewrite(&src);
    }

    /// The datalog program parser never panics.
    #[test]
    fn datalog_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let syms = semistructured::graph::new_symbols();
        let _ = parse_program(&src, &syms);
    }

    #[test]
    fn datalog_parser_never_panics_on_rulish(src in "[a-zX-Z(),._:\\- ]{0,256}") {
        let syms = semistructured::graph::new_symbols();
        let _ = parse_program(&src, &syms);
    }
}

// ---------------------------------------------------------------- depth
// limits: pathological nesting returns SSD110 instead of blowing the stack.

#[test]
fn deep_literal_nesting_is_rejected_with_ssd110() {
    let deep = format!("{}\"x\"{}", "{a: ".repeat(10_000), "}".repeat(10_000));
    let err = parse_graph(&deep).err().unwrap();
    assert!(err.message.contains("SSD110"), "{}", err.message);
}

#[test]
fn literal_nesting_at_the_limit_parses() {
    let n = MAX_PARSE_DEPTH - 1;
    let ok = format!("{}\"x\"{}", "{a: ".repeat(n), "}".repeat(n));
    assert!(parse_graph(&ok).is_ok());
}

#[test]
fn deep_json_nesting_is_rejected_with_ssd110() {
    let deep = format!("{}1{}", "[".repeat(10_000), "]".repeat(10_000));
    let err = Database::from_json(&deep).err().unwrap();
    assert!(err.contains("SSD110"), "{err}");
}

#[test]
fn deep_xml_nesting_is_rejected_with_ssd110() {
    let deep = format!("{}1{}", "<a>".repeat(10_000), "</a>".repeat(10_000));
    let err = Database::from_xml(&deep).err().unwrap();
    assert!(err.contains("SSD110"), "{err}");
}

#[test]
fn deep_query_nesting_is_rejected_with_ssd110() {
    let deep = format!(
        "select {}\"x\"{} from db.a X",
        "{a: ".repeat(10_000),
        "}".repeat(10_000)
    );
    let err = parse_query(&deep).err().unwrap();
    assert!(err.message.contains("SSD110"), "{}", err.message);
}

#[test]
fn deep_rewrite_nesting_is_rejected_with_ssd110() {
    let deep = format!(
        "rewrite case a => {}\"x\"{}",
        "{a: ".repeat(10_000),
        "}".repeat(10_000)
    );
    let err = parse_rewrite(&deep).err().unwrap();
    assert!(format!("{err:?}").contains("SSD110"), "{err:?}");
}
