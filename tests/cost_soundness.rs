//! Soundness of the static cost estimator (ssd-cost).
//!
//! The envelope's contract: on any dataset, a governed evaluation's
//! measured guard fuel and guard-accounted memory never exceed the
//! static upper bounds, and (for complete, untruncated runs) fuel never
//! falls below the lower bound. Random graphs and random path
//! expressions probe the contract; the guard must be *active* (huge but
//! finite limits) because an unlimited guard counts nothing.

use proptest::prelude::*;
use semistructured::query::analyze::{analyze_datalog_cost, analyze_query_cost, CostContext};
use semistructured::query::lang::ast::{Binding, Construct, SelectQuery, Source};
use semistructured::query::lang::{evaluate_select, EvalOptions};
use semistructured::query::{Rpe, Step};
use semistructured::triples::datalog::{evaluate_with, parse_program};
use semistructured::{Bound, Budget, DataStats, Graph, Label, TripleStore};

const LABELS: &[&str] = &["a", "b", "c", "Movie", "Title"];

fn graph_from_edges(n: usize, edges: &[(usize, usize, usize)]) -> Graph {
    let mut g = Graph::new();
    let mut ids = vec![g.root()];
    for _ in 1..n {
        ids.push(g.add_node());
    }
    for &(from, to, label) in edges {
        let from = ids[from % n];
        let to = ids[to % n];
        let label = if label < LABELS.len() {
            Label::symbol(g.symbols(), LABELS[label])
        } else {
            Label::int((label - LABELS.len()) as i64)
        };
        g.add_edge(from, label, to);
    }
    g
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        1usize..7,
        proptest::collection::vec((0usize..7, 0usize..7, 0usize..7), 0..16),
    )
        .prop_map(|(n, edges)| graph_from_edges(n, &edges))
}

fn arb_rpe() -> impl Strategy<Value = Rpe> {
    let leaf = prop_oneof![
        (0usize..LABELS.len()).prop_map(|i| Rpe::symbol(LABELS[i])),
        Just(Rpe::step(Step::wildcard())),
        (0usize..LABELS.len()).prop_map(|i| Rpe::step(Step::not_symbol(LABELS[i]))),
        Just(Rpe::Epsilon),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Rpe::Seq(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Rpe::Alt(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| a.star()),
            inner.clone().prop_map(|a| a.plus()),
            inner.prop_map(|a| a.opt()),
        ]
    })
}

/// `select {x: X[, y: Y]} from db.p1 X[, X.p2 Y]` — programmatically
/// built so no Display/parse round trip can skew the experiment.
fn query_of(p1: Rpe, p2: Option<Rpe>) -> SelectQuery {
    let mut bindings = vec![Binding {
        source: Source::Db,
        path: p1,
        var: "X".into(),
    }];
    let mut fields = vec![(
        semistructured::query::lang::LabelExpr::Symbol("x".into()),
        Construct::Var("X".into()),
    )];
    if let Some(p) = p2 {
        bindings.push(Binding {
            source: Source::Var("X".into()),
            path: p,
            var: "Y".into(),
        });
        fields.push((
            semistructured::query::lang::LabelExpr::Symbol("y".into()),
            Construct::Var("Y".into()),
        ));
    }
    SelectQuery {
        construct: Construct::Node(fields),
        bindings,
        condition: None,
    }
}

/// An active guard with limits far beyond anything a 7-node graph can
/// consume: everything is counted, nothing is tripped.
fn huge_active_guard() -> semistructured::Guard {
    Budget::unlimited()
        .max_steps(u64::MAX / 4)
        .max_memory_bytes(u64::MAX / 4)
        .guard()
}

fn assert_brackets(
    what: &str,
    envelope: &semistructured::CostEnvelope,
    used: u64,
    mem: u64,
) -> Result<(), TestCaseError> {
    prop_assert!(
        used >= envelope.fuel.lo,
        "{what}: fuel {used} below lower bound {}",
        envelope.fuel.lo
    );
    if let Bound::Finite(hi) = envelope.fuel.hi {
        prop_assert!(used <= hi, "{what}: fuel {used} above upper bound {hi}");
    }
    if let Bound::Finite(hi) = envelope.memory.hi {
        prop_assert!(mem <= hi, "{what}: memory {mem} above upper bound {hi}");
    }
    Ok(())
}

/// The fixed datalog workloads: recursion, stratified negation, joins.
const PROGRAMS: &[&str] = &[
    "tc(X, Y) :- edge(X, _L, Y).\n\
     tc(X, Y) :- edge(X, _L, Z), tc(Z, Y).",
    "out(X) :- edge(X, _L, _Y).\n\
     sink(X) :- node(X), not out(X).",
    "r(X) :- root(X).\n\
     reach(Y) :- r(Y).\n\
     reach(Y) :- reach(X), edge(X, _L, Y).",
    "pair(X, Y) :- edge(X, _L, Y), edge(Y, _K, X).",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_envelope_brackets_measured_guard_cost(
        g in arb_graph(),
        p1 in arb_rpe(),
        p2 in prop_oneof![Just(None), arb_rpe().prop_map(Some)],
    ) {
        let q = query_of(p1, p2);
        let stats = DataStats::collect(&g);
        let a = analyze_query_cost(&q, None, &CostContext::with_stats(&stats));
        let guard = huge_active_guard();
        let opts = EvalOptions::default().with_guard(&guard);
        let (_, run) = evaluate_select(&g, &q, &opts).map_err(|e| {
            TestCaseError::Fail(format!("evaluation failed: {e}"))
        })?;
        prop_assert!(run.truncated.is_none(), "huge budget must not truncate");
        assert_brackets("query", &a.envelope, guard.steps_used(), guard.memory_used())?;
        // Cardinality: with no `where` clause every assignment reaches
        // the construct stage, so the count is the match cardinality.
        if let Bound::Finite(hi) = a.envelope.cardinality.hi {
            let results = run.results_constructed as u64;
            prop_assert!(results <= hi, "{results} results above bound {hi}");
        }
    }

    /// Tracing is an observer, not a participant: running the same
    /// query with a `Tracer` attached must leave the guard-measured
    /// cost unchanged, so the static envelope brackets *traced*
    /// actuals exactly as it brackets untraced ones. This is the
    /// property `ssd explain --analyze` (tests/explain.rs) relies on
    /// when it prints estimated and measured cost side by side.
    #[test]
    fn traced_evaluation_costs_the_same_and_stays_bracketed(
        g in arb_graph(),
        p1 in arb_rpe(),
        p2 in prop_oneof![Just(None), arb_rpe().prop_map(Some)],
    ) {
        let q = query_of(p1, p2);
        let stats = DataStats::collect(&g);
        let a = analyze_query_cost(&q, None, &CostContext::with_stats(&stats));

        let plain_guard = huge_active_guard();
        let plain_opts = EvalOptions::default().with_guard(&plain_guard);
        let plain = evaluate_select(&g, &q, &plain_opts).map_err(|e| {
            TestCaseError::Fail(format!("plain evaluation failed: {e}"))
        })?;
        prop_assert!(plain.1.truncated.is_none());

        let ring = semistructured::trace::SharedRing::new(65_536);
        let tracer =
            semistructured::trace::Tracer::with_sink(Box::new(ring.clone()));
        let traced_guard = huge_active_guard();
        let traced_opts = EvalOptions::default()
            .with_guard(&traced_guard)
            .with_tracer(&tracer);
        let traced = evaluate_select(&g, &q, &traced_opts).map_err(|e| {
            TestCaseError::Fail(format!("traced evaluation failed: {e}"))
        })?;
        prop_assert!(traced.1.truncated.is_none());
        tracer.flush();

        prop_assert_eq!(
            plain_guard.steps_used(),
            traced_guard.steps_used(),
            "attaching a tracer changed the measured fuel"
        );
        prop_assert_eq!(
            plain_guard.memory_used(),
            traced_guard.memory_used(),
            "attaching a tracer changed the measured memory"
        );
        assert_brackets(
            "traced query",
            &a.envelope,
            traced_guard.steps_used(),
            traced_guard.memory_used(),
        )?;
        let events = ring.snapshot();
        prop_assert!(!events.is_empty());
        if let Err(why) = semistructured::trace::validate(&events) {
            return Err(TestCaseError::Fail(format!("malformed trace: {why}")));
        }
    }

    #[test]
    fn datalog_envelope_brackets_measured_guard_cost(
        g in arb_graph(),
        which in 0usize..PROGRAMS.len(),
    ) {
        let p = parse_program(PROGRAMS[which], g.symbols()).unwrap();
        let stats = DataStats::collect(&g);
        let a = analyze_datalog_cost(&p, None, None, &CostContext::with_stats(&stats));
        let store = TripleStore::from_graph(&g);
        let guard = huge_active_guard();
        let eval = evaluate_with(&p, &store, &guard).map_err(|e| {
            TestCaseError::Fail(format!("evaluation failed: {e}"))
        })?;
        prop_assert!(eval.truncated.is_none(), "huge budget must not truncate");
        assert_brackets("datalog", &a.envelope, guard.steps_used(), guard.memory_used())?;
    }

    #[test]
    fn admission_never_rejects_a_run_that_fits(
        g in arb_graph(),
        p1 in arb_rpe(),
    ) {
        // Contrapositive of soundness: if a real run finishes within a
        // budget, admission with that budget must accept the envelope.
        let q = query_of(p1, None);
        let stats = DataStats::collect(&g);
        let a = analyze_query_cost(&q, None, &CostContext::with_stats(&stats));
        let guard = huge_active_guard();
        let opts = EvalOptions::default().with_guard(&guard);
        evaluate_select(&g, &q, &opts).map_err(|e| {
            TestCaseError::Fail(format!("evaluation failed: {e}"))
        })?;
        let budget = Budget::unlimited()
            .max_steps(guard.steps_used())
            .max_memory_bytes(guard.memory_used().max(1));
        prop_assert!(
            budget.admit(&a.envelope).is_ok(),
            "admission rejected a budget the run fit: used {} steps",
            guard.steps_used()
        );
    }
}

// ---------------------------------------------------------------------------
// Budget split/refund: the session-quota arithmetic ssd-serve relies on
// ---------------------------------------------------------------------------

proptest! {
    /// Conservation: after any sequence of splits (some refused) and
    /// full refunds of the unspent remainders, the parent balance is
    /// exactly `initial − Σ spent` — no double-counting, no leaks.
    #[test]
    fn split_refund_conserves_fuel_and_memory(
        initial_fuel in 0u64..10_000,
        initial_mem in 0u64..10_000,
        jobs in proptest::collection::vec(
            (0u64..3_000, 0u64..3_000, 0u64..4_000),
            0..12,
        ),
    ) {
        let mut session = Budget::unlimited()
            .max_steps(initial_fuel)
            .max_memory_bytes(initial_mem);
        let mut spent_fuel_total = 0u64;
        let mut spent_mem_total = 0u64;
        for (grant_fuel, grant_mem, spend) in jobs {
            let before = (session.max_steps, session.max_memory_bytes);
            match session.split(grant_fuel, grant_mem) {
                Err(_) => {
                    // A refused split must leave the parent untouched.
                    prop_assert_eq!(
                        (session.max_steps, session.max_memory_bytes),
                        before
                    );
                }
                Ok(child) => {
                    prop_assert_eq!(child.max_steps, Some(grant_fuel));
                    prop_assert_eq!(child.max_memory_bytes, Some(grant_mem));
                    // The job spends up to (or past — guards can
                    // overshoot a check interval) its grant; the refund
                    // is clamped to the unspent part, like the server's.
                    let spent_fuel = spend.min(grant_fuel);
                    let spent_mem = (spend / 2).min(grant_mem);
                    session.refund(
                        grant_fuel - spent_fuel,
                        grant_mem - spent_mem,
                    );
                    spent_fuel_total += spent_fuel;
                    spent_mem_total += spent_mem;
                }
            }
            prop_assert_eq!(
                session.max_steps,
                Some(initial_fuel - spent_fuel_total),
                "fuel books diverged"
            );
            prop_assert_eq!(
                session.max_memory_bytes,
                Some(initial_mem - spent_mem_total),
                "memory books diverged"
            );
        }
    }

    /// Splitting can never manufacture budget: the child's grant plus
    /// the parent's remainder equals the parent's balance before.
    #[test]
    fn split_is_a_partition(
        initial in 0u64..10_000,
        want in 0u64..12_000,
    ) {
        let mut session = Budget::unlimited().max_steps(initial);
        match session.split(want, 0) {
            Ok(child) => {
                prop_assert_eq!(
                    child.max_steps.unwrap() + session.max_steps.unwrap(),
                    initial
                );
            }
            Err(_) => {
                prop_assert!(want > initial);
                prop_assert_eq!(session.max_steps, Some(initial));
            }
        }
    }

    /// An unmetered session grants without deduction and ignores
    /// refunds: `None` means infinity on both sides of the ledger.
    #[test]
    fn unmetered_sessions_never_deduct(grant in 0u64..10_000) {
        let mut session = Budget::unlimited();
        let child = session.split(grant, grant).unwrap();
        prop_assert_eq!(child.max_steps, Some(grant));
        prop_assert_eq!(session.max_steps, None);
        session.refund(grant, grant);
        prop_assert_eq!(session.max_steps, None);
        prop_assert_eq!(session.max_memory_bytes, None);
    }
}
