//! ssd-serve: deterministic scheduler tests and in-process server tests.
//!
//! The scheduler is a pure state machine driven by a [`ManualClock`], so
//! the first half of this suite replays fixed scenarios and asserts on
//! the *exact* decision trace — byte-for-byte identical across runs.
//! The second half exercises the threaded server end to end: streaming,
//! mid-stream cancellation, panic isolation, and graceful shutdown.
//! Those tests assert on outcomes and counters (thread interleavings
//! may vary), never on wall-clock timing.

use std::sync::Arc;

use semistructured::Database;
use ssd_guard::{Bound, CostEnvelope, Interval};
use ssd_serve::sched::{JobId, SessionId};
use ssd_serve::{
    Decision, Dequeued, FinishKind, JobEvent, JobKind, ManualClock, Scheduler, ServeConfig, Server,
    SessionQuota, SubmitError, TraceEvent, PANIC_PROBE,
};

fn env(fuel_lo: u64) -> CostEnvelope {
    CostEnvelope {
        cardinality: Interval::exact(1),
        fuel: Interval::new(fuel_lo, Bound::Unbounded),
        memory: Interval::exact(0),
    }
}

fn quota(fuel: Option<u64>, job_fuel: u64, max_concurrent: usize) -> SessionQuota {
    SessionQuota {
        fuel,
        memory: None,
        max_concurrent,
        job_fuel,
        job_memory: 1 << 20,
    }
}

fn movies() -> Arc<Database> {
    Arc::new(Database::new(ssd_data::movies::figure1()))
}

// ---------------------------------------------------------------------------
// Pure scheduler: deterministic traces
// ---------------------------------------------------------------------------

/// One fixed scenario covering admit → queue → reject → drain.
fn admit_queue_reject_scenario() -> Vec<TraceEvent> {
    let clock = Arc::new(ManualClock::new());
    let mut s = Scheduler::new(1, 2, clock.clone());
    let sid = s.open_session(quota(Some(1000), 50, 4));

    // Worker free: dispatch.
    let d1 = s.submit(sid, JobKind::Query, "q1".into(), env(10));
    let t1 = match d1 {
        Decision::Dispatch(t) => t,
        other => panic!("q1 should dispatch, got {other:?}"),
    };
    assert_eq!(t1.grant_fuel, 50);
    clock.advance(100);

    // Worker busy: queue, in order.
    assert!(matches!(
        s.submit(sid, JobKind::Query, "q2".into(), env(10)),
        Decision::Queued { depth: 1, .. }
    ));
    assert!(matches!(
        s.submit(sid, JobKind::Datalog, "q3".into(), env(10)),
        Decision::Queued { depth: 2, .. }
    ));

    // Queue full: SSD201, and the books show zero fuel charged for it.
    let Decision::Rejected(d) = s.submit(sid, JobKind::Query, "q4".into(), env(10)) else {
        panic!("q4 should be rejected");
    };
    assert_eq!(d.code.as_str(), "SSD201");

    // Per-job ceiling: lower bound 60 can never fit a 50-fuel grant.
    let Decision::Rejected(d) = s.submit(sid, JobKind::Query, "q5".into(), env(60)) else {
        panic!("q5 should be rejected");
    };
    assert_eq!(d.code.as_str(), "SSD030");

    // Completion frees the worker; the queue drains in FIFO order.
    clock.advance(400);
    let unblocked = s.complete(t1.job, 42, 0, FinishKind::Completed);
    assert_eq!(unblocked.len(), 1);
    let Dequeued::Dispatch(t2) = &unblocked[0] else {
        panic!("q2 should dispatch on drain");
    };
    let t2_job = t2.job;
    let unblocked = s.complete(t2_job, 7, 0, FinishKind::Completed);
    assert_eq!(unblocked.len(), 1);
    let Dequeued::Dispatch(t3) = &unblocked[0] else {
        panic!("q3 should dispatch on drain");
    };
    let t3_job = t3.job;
    s.complete(t3_job, 5, 0, FinishKind::Completed);

    let m = s.metrics();
    assert_eq!(m.counters.admitted, 3);
    assert_eq!(m.counters.rejected, 2);
    assert_eq!(m.counters.queued, 2);
    assert_eq!(m.counters.completed, 3);
    // Rejected submissions cost zero engine fuel: only the three
    // admitted jobs' spends appear, nothing for q4/q5.
    assert_eq!(m.counters.fuel_spent, 42 + 7 + 5);
    assert_eq!(m.counters.fuel_estimated, 30);
    assert_eq!(m.queue_peak, 2);
    assert_eq!(m.queue_depth, 0);
    s.trace().to_vec()
}

#[test]
fn admit_queue_reject_ordering_is_deterministic() {
    let a = admit_queue_reject_scenario();
    let b = admit_queue_reject_scenario();
    assert_eq!(a, b, "identical inputs must give identical traces");
    // And the trace is the exact decision sequence, not just equal noise.
    let codes: Vec<&'static str> = a
        .iter()
        .map(|e| match e {
            TraceEvent::SessionOpened { .. } => "open",
            TraceEvent::Submitted { .. } => "sub",
            TraceEvent::Dispatched { .. } => "disp",
            TraceEvent::Queued { .. } => "queue",
            TraceEvent::Rejected { .. } => "rej",
            TraceEvent::Completed { .. } => "done",
            _ => "other",
        })
        .collect();
    assert_eq!(
        codes,
        [
            "open", "sub", "disp", "sub", "queue", "sub", "queue", "sub", "rej", "sub", "rej",
            "done", "disp", "done", "disp", "done"
        ]
    );
}

#[test]
fn session_quota_exhaustion_is_ssd200() {
    let mut s = Scheduler::new(1, 8, Arc::new(ManualClock::new()));
    let sid = s.open_session(quota(Some(100), 60, 2));

    // j1 takes a 60-fuel grant, leaving 40.
    let Decision::Dispatch(t1) = s.submit(sid, JobKind::Query, "j1".into(), env(10)) else {
        panic!("j1 dispatches");
    };
    assert_eq!(t1.grant_fuel, 60);
    assert_eq!(s.session_fuel_left(sid), Some(40));

    // Needs at least 50 but only 40 remain: immediate SSD200.
    let Decision::Rejected(d) = s.submit(sid, JobKind::Query, "j2".into(), env(50)) else {
        panic!("j2 is over the session balance");
    };
    assert_eq!(d.code.as_str(), "SSD200");

    // j3 and j4 fit the *current* balance and queue up behind j1.
    assert!(matches!(
        s.submit(sid, JobKind::Query, "j3".into(), env(35)),
        Decision::Queued { .. }
    ));
    assert!(matches!(
        s.submit(sid, JobKind::Query, "j4".into(), env(35)),
        Decision::Queued { .. }
    ));

    // j1 spends everything it was granted; j3 dispatches with the whole
    // remaining balance (40); j4's 35-fuel floor no longer fits the
    // empty balance when its turn comes: late SSD200 without dispatch.
    let unblocked = s.complete(t1.job, 60, 0, FinishKind::Completed);
    assert_eq!(unblocked.len(), 1);
    let Dequeued::Dispatch(t3) = &unblocked[0] else {
        panic!("j3 dispatches on drain");
    };
    assert_eq!(t3.grant_fuel, 40);
    let t3_job = t3.job;
    assert_eq!(s.session_fuel_left(sid), Some(0));

    let unblocked = s.complete(t3_job, 40, 0, FinishKind::Completed);
    assert_eq!(unblocked.len(), 1);
    match &unblocked[0] {
        Dequeued::LateReject { diag, .. } => assert_eq!(diag.code.as_str(), "SSD200"),
        other => panic!("j4 should be late-rejected, got {other:?}"),
    }
    assert!(s.drained());
    let c = s.session_counters(sid).unwrap();
    assert_eq!(c.rejected, 2);
    assert_eq!(c.completed, 2);
}

#[test]
fn cancel_queued_and_unknown_jobs() {
    let mut s = Scheduler::new(1, 8, Arc::new(ManualClock::new()));
    let sid = s.open_session(SessionQuota::default());
    let Decision::Dispatch(t1) = s.submit(sid, JobKind::Query, "a".into(), env(1)) else {
        panic!("a dispatches");
    };
    let Decision::Queued { job: j2, .. } = s.submit(sid, JobKind::Query, "b".into(), env(1)) else {
        panic!("b queues");
    };
    // Queued: removed synchronously.
    assert_eq!(s.cancel(sid, j2), Ok(false));
    assert_eq!(s.queue_len(), 0);
    // Unknown / already-finished: SSD204.
    assert_eq!(
        s.cancel(sid, JobId(999)).unwrap_err().code.as_str(),
        "SSD204"
    );
    assert_eq!(s.cancel(sid, j2).unwrap_err().code.as_str(), "SSD204");
    // Running: token fires, completion arrives later as Cancelled.
    assert_eq!(s.cancel(sid, t1.job), Ok(true));
    assert!(t1.budget.cancel.as_ref().unwrap().is_cancelled());
    s.complete(t1.job, 3, 0, FinishKind::Cancelled);
    assert_eq!(s.metrics().counters.cancelled, 2);
}

#[test]
fn cancel_is_scoped_to_the_owning_session() {
    let mut s = Scheduler::new(1, 8, Arc::new(ManualClock::new()));
    let owner = s.open_session(SessionQuota::default());
    let intruder = s.open_session(SessionQuota::default());
    let Decision::Dispatch(t1) = s.submit(owner, JobKind::Query, "a".into(), env(1)) else {
        panic!("a dispatches");
    };
    let Decision::Queued { job: j2, .. } = s.submit(owner, JobKind::Query, "b".into(), env(1))
    else {
        panic!("b queues");
    };
    // Another session's CANCEL gets the same SSD204 as an unknown id —
    // no cross-session teardown, no probe for live ids.
    assert_eq!(
        s.cancel(intruder, t1.job).unwrap_err().code.as_str(),
        "SSD204"
    );
    assert_eq!(s.cancel(intruder, j2).unwrap_err().code.as_str(), "SSD204");
    assert!(!t1.budget.cancel.as_ref().unwrap().is_cancelled());
    assert_eq!(s.queue_len(), 1);
    assert_eq!(s.session_counters(owner).unwrap().cancelled, 0);
    // The owner still can.
    assert_eq!(s.cancel(owner, j2), Ok(false));
    assert_eq!(s.cancel(owner, t1.job), Ok(true));
}

#[test]
fn scheduler_state_stays_bounded() {
    use ssd_serve::sched::TRACE_CAP;
    let clock = Arc::new(ManualClock::new());
    let mut s = Scheduler::new(1, 8, clock.clone());
    let sid = s.open_session(SessionQuota::default());
    // Far more jobs than any cap; each completes before the next.
    for i in 0..(TRACE_CAP as u64 * 3) {
        let Decision::Dispatch(t) = s.submit(sid, JobKind::Query, format!("q{i}"), env(1)) else {
            panic!("lone job always dispatches");
        };
        clock.advance(i % 7);
        s.complete(t.job, 1, 0, FinishKind::Completed);
    }
    // Finished jobs are evicted; only live work is held.
    assert_eq!(s.live_jobs(), 0);
    assert!(s.trace().len() < TRACE_CAP * 2, "trace is bounded");
    let m = s.metrics();
    // The histogram keeps constant memory while counting every finish.
    assert_eq!(m.latency.count(), TRACE_CAP as u64 * 3);
    assert_eq!(m.counters.completed, TRACE_CAP as u64 * 3);
}

#[test]
fn shutdown_rejects_new_work_but_drains_the_queue() {
    let mut s = Scheduler::new(1, 8, Arc::new(ManualClock::new()));
    let sid = s.open_session(SessionQuota::default());
    let Decision::Dispatch(t1) = s.submit(sid, JobKind::Query, "a".into(), env(1)) else {
        panic!("a dispatches");
    };
    let Decision::Queued { .. } = s.submit(sid, JobKind::Query, "b".into(), env(1)) else {
        panic!("b queues");
    };
    s.begin_shutdown();
    let Decision::Rejected(d) = s.submit(sid, JobKind::Query, "c".into(), env(1)) else {
        panic!("c is rejected during shutdown");
    };
    assert_eq!(d.code.as_str(), "SSD203");
    assert!(!s.drained(), "queued work survives shutdown begin");
    let unblocked = s.complete(t1.job, 1, 0, FinishKind::Completed);
    let Dequeued::Dispatch(t2) = &unblocked[0] else {
        panic!("b still dispatches while draining");
    };
    let t2_job = t2.job;
    s.complete(t2_job, 1, 0, FinishKind::Completed);
    assert!(s.drained());
    assert_eq!(s.metrics().counters.completed, 2);
}

#[test]
fn budget_split_refund_round_trips_through_scheduling() {
    // The session balance after any run equals initial − Σ spent: the
    // scheduler never double-counts grants and refunds.
    let mut s = Scheduler::new(2, 8, Arc::new(ManualClock::new()));
    let sid = s.open_session(quota(Some(500), 100, 2));
    let mut spent_total = 0u64;
    for spent in [30u64, 100, 0, 77] {
        let Decision::Dispatch(t) = s.submit(sid, JobKind::Query, "q".into(), env(1)) else {
            panic!("dispatch");
        };
        s.complete(t.job, spent, 0, FinishKind::Completed);
        spent_total += spent;
        assert_eq!(s.session_fuel_left(sid), Some(500 - spent_total));
    }
}

/// A queued admission is the documented SSD202 outcome: the decision
/// carries the queue depth, the trace records it, and the code the
/// docs/protocol cite for it is the Note-severity `Code::JobQueued`.
#[test]
fn queued_admission_is_ssd202() {
    use semistructured::diag::{Code, Severity};
    let mut s = Scheduler::new(1, 4, Arc::new(ManualClock::new()));
    let sid = s.open_session(quota(Some(1000), 50, 4));
    let Decision::Dispatch(_) = s.submit(sid, JobKind::Query, "a".into(), env(1)) else {
        panic!("first job should dispatch");
    };
    let Decision::Queued { depth, .. } = s.submit(sid, JobKind::Query, "b".into(), env(1)) else {
        panic!("second job should queue behind the busy worker");
    };
    assert_eq!(depth, 1);
    assert!(
        s.trace()
            .iter()
            .any(|e| matches!(e, TraceEvent::Queued { depth: 1, .. })),
        "{:?}",
        s.trace()
    );
    assert_eq!(Code::JobQueued.as_str(), "SSD202");
    assert_eq!(Code::JobQueued.severity(), Severity::Note);
}

/// SSD211 (`Code::RefundExceedsGrant`) is the pathological refund: more
/// fuel returned than was ever split off. A healthy scheduler never
/// produces it — whole scheduling round-trips leave `refund_clamped` at
/// zero and no `RefundClamped` trace event — and the guard crate's
/// books catch the bug at the source (a debug assertion; clamped and
/// surfaced via `RefundOutcome` in release builds).
#[test]
fn refund_beyond_grant_is_ssd211_and_never_happens_when_healthy() {
    use semistructured::diag::{Code, Severity};
    use semistructured::Budget;

    let mut s = Scheduler::new(1, 4, Arc::new(ManualClock::new()));
    let sid = s.open_session(quota(Some(500), 100, 2));
    for spent in [0u64, 100, 37] {
        let Decision::Dispatch(t) = s.submit(sid, JobKind::Query, "q".into(), env(1)) else {
            panic!("dispatch");
        };
        s.complete(t.job, spent, 0, FinishKind::Completed);
    }
    assert_eq!(s.metrics().counters.refund_clamped, 0);
    assert!(
        !s.trace()
            .iter()
            .any(|e| matches!(e, TraceEvent::RefundClamped { .. })),
        "healthy round-trips must not clamp refunds: {:?}",
        s.trace()
    );
    assert_eq!(Code::RefundExceedsGrant.as_str(), "SSD211");
    assert_eq!(Code::RefundExceedsGrant.severity(), Severity::Warning);

    // The books catch an over-refund at the source in debug builds
    // (which is what `cargo test` runs).
    #[cfg(debug_assertions)]
    {
        let caught = std::panic::catch_unwind(|| {
            let mut b = Budget::unlimited().max_steps(100);
            let _grant = b.split(10, 0).expect("split fits");
            b.refund(15, 0); // 5 more than the outstanding grant
        });
        assert!(caught.is_err(), "over-refund must trip the debug assertion");
    }
}

// ---------------------------------------------------------------------------
// Seeded interleaving stress: permuted worker wakeups over virtual time
// ---------------------------------------------------------------------------

/// Mirror of one session's books on the test side.
struct StressSession {
    id: SessionId,
    fuel: u64,
    grants: u64,
    open: bool,
}

/// Fold queue transitions returned by [`Scheduler::complete`] into the
/// test-side mirror of the running and queued sets.
fn apply_dequeued(
    deq: Vec<Dequeued>,
    sessions: &mut [StressSession],
    running: &mut Vec<(JobId, usize, bool)>,
    queued: &mut Vec<(JobId, usize)>,
) {
    for d in deq {
        match d {
            Dequeued::Dispatch(t) => {
                let pos = queued
                    .iter()
                    .position(|(j, _)| *j == t.job)
                    .expect("dispatched job was queued");
                let (job, si) = queued.remove(pos);
                sessions[si].grants += t.grant_fuel;
                running.push((job, si, false));
            }
            Dequeued::LateReject { job, .. } => {
                queued.retain(|(j, _)| *j != job);
            }
        }
    }
}

/// Replay one seeded schedule: random submits across four sessions,
/// completions in a permuted order (the virtual-time analogue of worker
/// threads waking in arbitrary order), cancellations, clock jumps, and
/// session closes, with the scheduler's bookkeeping checked against a
/// test-side mirror after every transition. Returns the decision trace
/// for the determinism assertion.
fn stress_run(seed: u64) -> Vec<TraceEvent> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    const WORKERS: usize = 3;
    const QUEUE_CAP: usize = 5;

    let mut rng = SmallRng::seed_from_u64(seed);
    let clock = Arc::new(ManualClock::new());
    let mut s = Scheduler::new(WORKERS, QUEUE_CAP, clock.clone());

    let mut sessions: Vec<StressSession> = (0..4u64)
        .map(|i| {
            let fuel = 2_000 + 500 * i;
            StressSession {
                id: s.open_session(quota(Some(fuel), 40, 2)),
                fuel,
                grants: 0,
                open: true,
            }
        })
        .collect();

    // (job, session index, token fired?) — each entry holds a worker slot.
    let mut running: Vec<(JobId, usize, bool)> = Vec::new();
    let mut queued: Vec<(JobId, usize)> = Vec::new();

    for step in 0..400 {
        match rng.gen_range(0u32..100) {
            // Submit to a random session (possibly closed or drained:
            // the rejection paths are part of the schedule).
            0..=54 => {
                let si = rng.gen_range(0..sessions.len());
                let d = s.submit(
                    sessions[si].id,
                    JobKind::Query,
                    format!("q{step}"),
                    env(rng.gen_range(1..=30)),
                );
                match d {
                    Decision::Dispatch(t) => {
                        assert!(sessions[si].open, "closed session must not dispatch");
                        sessions[si].grants += t.grant_fuel;
                        running.push((t.job, si, false));
                    }
                    Decision::Queued { job, depth } => {
                        assert!(sessions[si].open, "closed session must not queue");
                        assert!((1..=QUEUE_CAP).contains(&depth));
                        queued.push((job, si));
                    }
                    Decision::Rejected(_) => {}
                }
            }
            // A random worker finishes: complete in permuted order.
            55..=79 => {
                if running.is_empty() {
                    continue;
                }
                let (job, _, fired) = running.remove(rng.gen_range(0..running.len()));
                let kind = if fired {
                    FinishKind::Cancelled
                } else {
                    FinishKind::Completed
                };
                let deq = s.complete(job, rng.gen_range(0..=45), 0, kind);
                apply_dequeued(deq, &mut sessions, &mut running, &mut queued);
            }
            // Cancel a random live job, queued or running.
            80..=87 => {
                let total = running.len() + queued.len();
                if total == 0 {
                    continue;
                }
                let i = rng.gen_range(0..total);
                if i < running.len() {
                    let (job, si, fired) = &mut running[i];
                    let token = s
                        .cancel(sessions[*si].id, *job)
                        .expect("running job is cancellable");
                    assert!(token, "running cancellation fires the token");
                    *fired = true;
                } else {
                    let (job, si) = queued.remove(i - running.len());
                    let token = s
                        .cancel(sessions[si].id, job)
                        .expect("queued job is cancellable");
                    assert!(!token, "queued cancellation removes immediately");
                }
            }
            88..=93 => clock.advance(rng.gen_range(1..5_000)),
            // Close a random session, keeping at least one open.
            _ => {
                let open: Vec<usize> = (0..sessions.len()).filter(|&i| sessions[i].open).collect();
                if open.len() <= 1 {
                    continue;
                }
                let si = open[rng.gen_range(0..open.len())];
                let torn_down = s.close_session(sessions[si].id);
                sessions[si].open = false;
                for job in torn_down {
                    queued.retain(|(j, _)| *j != job);
                }
                for (_, rsi, fired) in running.iter_mut() {
                    if *rsi == si {
                        *fired = true;
                    }
                }
            }
        }
        assert_eq!(s.busy(), running.len(), "seed {seed} step {step}: busy");
        assert_eq!(
            s.queue_len(),
            queued.len(),
            "seed {seed} step {step}: queue"
        );
        assert!(s.queue_len() <= QUEUE_CAP);
        assert_eq!(s.live_jobs(), running.len() + queued.len());
    }

    // Drain: workers keep waking in a permuted order until nothing is
    // queued or running.
    s.begin_shutdown();
    while !running.is_empty() {
        let (job, _, fired) = running.remove(rng.gen_range(0..running.len()));
        let kind = if fired {
            FinishKind::Cancelled
        } else {
            FinishKind::Completed
        };
        let deq = s.complete(job, rng.gen_range(0..=45), 0, kind);
        apply_dequeued(deq, &mut sessions, &mut running, &mut queued);
    }
    assert!(s.drained(), "seed {seed}: scheduler must drain");
    assert!(queued.is_empty(), "seed {seed}: queue must drain");

    // Fuel conservation, per session: what left the balance is exactly
    // the dispatched grants minus the credited refunds.
    for sess in &sessions {
        let left = s.session_fuel_left(sess.id).expect("finite quota");
        let c = s.session_counters(sess.id).expect("session still known");
        assert_eq!(
            sess.fuel - left,
            sess.grants - c.fuel_refunded,
            "seed {seed}: fuel books for session {}",
            sess.id
        );
    }

    s.trace().to_vec()
}

#[test]
fn seeded_interleavings_hold_invariants_and_replay_identically() {
    for seed in [1u64, 7, 42, 0xBEEF] {
        let first = stress_run(seed);
        assert_eq!(
            first,
            stress_run(seed),
            "seed {seed}: same seed must replay the same decision trace"
        );
        // The schedule actually exercised the interesting transitions.
        assert!(first.iter().any(|e| matches!(e, TraceEvent::Queued { .. })));
        assert!(first
            .iter()
            .any(|e| matches!(e, TraceEvent::Cancelled { .. })));
        assert!(first
            .iter()
            .any(|e| matches!(e, TraceEvent::SessionClosed { .. })));
    }
}

// ---------------------------------------------------------------------------
// Threaded server: isolation, cancellation, shutdown
// ---------------------------------------------------------------------------

#[test]
fn server_streams_chunked_results() {
    let server = Server::start(
        movies(),
        ServeConfig {
            workers: 2,
            chunk_size: 1,
            ..ServeConfig::default()
        },
    );
    let session = server.open_session(SessionQuota::default());
    let out = session
        .submit(JobKind::Query, "select T from db.Entry.%.Title T")
        .unwrap()
        .wait();
    assert_eq!(out.error, None);
    // 3 titles, one root per chunk.
    assert_eq!(out.chunks.len(), 3);
    for c in &out.chunks {
        assert!(
            Database::from_literal(c).is_ok(),
            "each chunk is a standalone literal: {c}"
        );
    }
    assert!(out.summary.unwrap().contains("results=3"));
    server.shutdown();
}

#[test]
fn rpe_jobs_desugar_to_selects() {
    let server = Server::start(movies(), ServeConfig::default());
    let session = server.open_session(SessionQuota::default());
    let out = session
        .submit(JobKind::Rpe, "Entry.%.Title")
        .unwrap()
        .wait();
    assert_eq!(out.error, None);
    assert!(out.summary.unwrap().contains("results=3"));
    server.shutdown();
}

#[test]
fn mid_stream_cancellation_stops_the_stream() {
    // Rendezvous channels: the worker blocks on every chunk until the
    // client takes it, so cancelling after the first chunk always lands
    // before the stream finishes.
    let server = Server::start(
        movies(),
        ServeConfig {
            workers: 1,
            chunk_size: 1,
            stream_buffer: 0,
            ..ServeConfig::default()
        },
    );
    let session = server.open_session(SessionQuota::default());
    let handle = session
        .submit(JobKind::Query, "select T from db.Entry.%.Title T")
        .unwrap();
    let job = handle.job;
    let rx = handle.events();
    let first = rx.recv().expect("first chunk");
    assert!(matches!(first, JobEvent::Chunk(_)));
    session.cancel(job).unwrap();
    let mut chunks = 1;
    let mut error = None;
    for ev in rx.iter() {
        match ev {
            JobEvent::Chunk(_) => chunks += 1,
            JobEvent::Failed(e) => {
                error = Some(e);
                break;
            }
            JobEvent::Done { .. } => break,
        }
    }
    let error = error.expect("cancelled jobs end in a failure event");
    assert!(error.contains("SSD105"), "cancellation is SSD105: {error}");
    assert!(chunks < 3, "the stream stopped early (got {chunks} chunks)");
    let m = server.shutdown();
    assert_eq!(m.counters.cancelled, 1);
}

#[test]
fn panic_is_confined_to_one_job_and_session() {
    let server = Server::start(
        movies(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let victim = server.open_session(SessionQuota::default());
    let bystander = server.open_session(SessionQuota::default());

    let boom = victim.submit(JobKind::Query, PANIC_PROBE).unwrap().wait();
    let error = boom.error.expect("panic surfaces as a failure");
    assert!(error.contains("SSD111"), "panic is SSD111: {error}");

    // The bystander session is untouched...
    let ok = bystander
        .submit(JobKind::Query, "select T from db.Entry.%.Title T")
        .unwrap()
        .wait();
    assert_eq!(ok.error, None);
    assert!(!ok.chunks.is_empty());

    // ...and so is the victim session itself: the worker survived.
    let again = victim
        .submit(
            JobKind::Datalog,
            "reach(X) :- root(X).\nreach(Y) :- reach(X), edge(X, _L, Y).",
        )
        .unwrap()
        .wait();
    assert_eq!(again.error, None);

    let m = server.shutdown();
    assert_eq!(m.counters.panicked, 1);
    assert_eq!(m.counters.completed, 2);
    assert_eq!(victim.counters().unwrap().panicked, 1);
    assert_eq!(bystander.counters().unwrap().panicked, 0);
}

#[test]
fn graceful_shutdown_drains_queued_jobs() {
    // One worker, rendezvous streaming: j1 blocks on its first chunk,
    // so j2 and j3 are deterministically queued when shutdown begins.
    let server = Server::start(
        movies(),
        ServeConfig {
            workers: 1,
            chunk_size: 1,
            stream_buffer: 0,
            queue_cap: 8,
        },
    );
    let session = server.open_session(SessionQuota::default());
    let q = "select T from db.Entry.%.Title T";
    let j1 = session.submit(JobKind::Query, q).unwrap();
    let j2 = session.submit(JobKind::Query, q).unwrap();
    let j3 = session.submit(JobKind::Query, q).unwrap();
    assert!(!j1.queued);
    assert!(j2.queued && j3.queued);

    server.request_shutdown();
    let refused = session.submit(JobKind::Query, q);
    match refused {
        Err(ssd_serve::SubmitError::Rejected(d)) => assert_eq!(d.code.as_str(), "SSD203"),
        Err(other) => panic!("submissions during shutdown are SSD203, got {other}"),
        Ok(_) => panic!("submissions during shutdown must be rejected"),
    }

    // Draining: all three pre-shutdown jobs still complete.
    for j in [j1, j2, j3] {
        let out = j.wait();
        assert_eq!(out.error, None);
        assert_eq!(out.chunks.len(), 3);
    }
    let m = server.shutdown();
    assert_eq!(m.counters.completed, 3);
    assert_eq!(m.counters.rejected, 1);
    assert_eq!(m.queue_depth, 0);
}

#[test]
fn closing_a_session_tears_down_its_jobs_only() {
    let server = Server::start(
        movies(),
        ServeConfig {
            workers: 1,
            chunk_size: 1,
            stream_buffer: 0,
            queue_cap: 8,
        },
    );
    let doomed = server.open_session(SessionQuota::default());
    let survivor = server.open_session(SessionQuota::default());
    let q = "select T from db.Entry.%.Title T";
    // doomed's first job holds the only worker; its second job queues;
    // survivor's job queues behind them.
    let d1 = doomed.submit(JobKind::Query, q).unwrap();
    let d2 = doomed.submit(JobKind::Query, q).unwrap();
    let s1 = survivor.submit(JobKind::Query, q).unwrap();
    assert!(d2.queued && s1.queued);

    doomed.close();
    let out1 = d1.wait();
    let e = out1
        .error
        .expect("running job of a closed session is cancelled");
    assert!(e.contains("SSD105"), "{e}");
    let out2 = d2.wait();
    assert!(out2
        .error
        .expect("queued job is cancelled")
        .contains("SSD105"));

    // The survivor's job dispatches and completes untouched.
    let outs = s1.wait();
    assert_eq!(outs.error, None);
    assert_eq!(outs.chunks.len(), 3);
    server.shutdown();
}

#[test]
fn another_session_cannot_cancel_your_job() {
    let server = Server::start(movies(), ServeConfig::default());
    let victim = server.open_session(SessionQuota::default());
    let attacker = server.open_session(SessionQuota::default());
    let handle = victim
        .submit(JobKind::Query, "select T from db.Entry.%.Title T")
        .unwrap();
    // Whether the job is still running or already finished when this
    // lands, the attacker only ever sees SSD204 — never a teardown.
    let err = attacker.cancel(handle.job).unwrap_err();
    assert_eq!(err.code.as_str(), "SSD204");
    let out = handle.wait();
    assert_eq!(out.error, None);
    assert!(out.summary.unwrap().contains("results=3"));
    let m = server.shutdown();
    assert_eq!(m.counters.cancelled, 0);
    assert_eq!(victim.counters().unwrap().cancelled, 0);
}

#[test]
fn stats_text_has_global_and_session_sections() {
    let server = Server::start(movies(), ServeConfig::default());
    let session = server.open_session(SessionQuota::default());
    session
        .submit(JobKind::Query, "select T from db.Entry.%.Title T")
        .unwrap()
        .wait();
    let text = server.stats_text(Some(session.id));
    for key in [
        "admitted 1",
        "completed 1",
        "session.admitted 1",
        "latency_p50_us",
        "latency_p99_us",
        "queue_depth 0",
    ] {
        assert!(text.contains(key), "missing `{key}` in:\n{text}");
    }
    assert!(server.metrics().counters.fuel_spent > 0);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Durable mutations: JobKind::Commit through the store
// ---------------------------------------------------------------------------

fn store_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ssd-serve-store-{}-{}-{}",
        std::process::id(),
        tag,
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

fn script(ops: &[ssd_store::Op]) -> String {
    let mut txn = ssd_store::Txn::new();
    for op in ops {
        txn.push(op.clone());
    }
    txn.to_script()
}

#[test]
fn commit_jobs_write_through_the_store_and_refresh_snapshots() {
    let dir = store_dir("commit");
    ssd_store::Store::init(&dir, &movies()).unwrap();
    let (store, _) = ssd_store::Store::open(&dir, &semistructured::Budget::unlimited()).unwrap();
    let server = Server::start_with_store(Arc::new(store), ServeConfig::default());
    assert!(server.writable());
    assert_eq!(server.generation(), Some(0));

    let session = server.open_session(SessionQuota::default());
    let out = session
        .submit(
            JobKind::Commit,
            &script(&[ssd_store::Op::Insert(
                "{Entry: {Movie: {Title: \"Z\"}}}".to_string(),
            )]),
        )
        .unwrap()
        .wait();
    assert_eq!(out.error, None);
    assert!(
        out.summary
            .as_deref()
            .unwrap_or("")
            .contains("committed generation=1"),
        "{:?}",
        out.summary
    );
    assert_eq!(server.generation(), Some(1));

    // A job submitted after the commit pins the new generation.
    let out = session
        .submit(JobKind::Query, "select T from db.Entry.%.Title T")
        .unwrap()
        .wait();
    assert_eq!(out.error, None);
    assert!(out.summary.unwrap().contains("results=4"));
    server.shutdown();
}

#[test]
fn commit_on_a_storeless_server_is_ssd403() {
    let server = Server::start(movies(), ServeConfig::default());
    assert!(!server.writable());
    assert_eq!(server.generation(), None);
    let session = server.open_session(SessionQuota::default());
    let out = session
        .submit(
            JobKind::Commit,
            &script(&[ssd_store::Op::Delete("Entry".to_string())]),
        )
        .unwrap()
        .wait();
    let err = out.error.expect("mutation on a read-only server must fail");
    assert!(err.contains("SSD403"), "{err}");
    server.shutdown();
}

#[test]
fn malformed_commit_scripts_are_rejected_at_admission() {
    let dir = store_dir("bad");
    ssd_store::Store::init(&dir, &movies()).unwrap();
    let (store, _) = ssd_store::Store::open(&dir, &semistructured::Budget::unlimited()).unwrap();
    let server = Server::start_with_store(Arc::new(store), ServeConfig::default());
    let session = server.open_session(SessionQuota::default());
    for bad in [
        "not a txn script",
        "INSERT 5\n{a:}\n", // literal does not parse
        &script(&[]),       // empty transaction
    ] {
        let Err(err) = session.submit(JobKind::Commit, bad) else {
            panic!("`{bad}` should be rejected before admission");
        };
        assert!(
            matches!(err, SubmitError::Invalid(_)),
            "`{bad}`: wrong rejection: {err}"
        );
    }
    server.shutdown();
}

#[test]
fn commit_admission_charges_the_exact_envelope() {
    let dir = store_dir("cost");
    ssd_store::Store::init(&dir, &movies()).unwrap();
    let (store, _) = ssd_store::Store::open(&dir, &semistructured::Budget::unlimited()).unwrap();
    let server = Server::start_with_store(Arc::new(store), ServeConfig::default());
    // A job-fuel ceiling far below the txn's exact cost: rejected up
    // front with SSD030 — the write never reaches the WAL.
    let session = server.open_session(quota(None, 2, 1));
    let Err(err) = session.submit(
        JobKind::Commit,
        &script(&[ssd_store::Op::Insert(
            "{Entry: {Movie: {Title: \"Huge\"}}}".to_string(),
        )]),
    ) else {
        panic!("expected admission rejection");
    };
    let SubmitError::Rejected(d) = err else {
        panic!("expected admission rejection, got {err}");
    };
    assert!(d.headline().contains("SSD030"), "{}", d.headline());
    assert_eq!(server.generation(), Some(0));
    server.shutdown();
}
