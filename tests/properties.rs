//! Property-based tests over the core invariants of the stack.
//!
//! Random rooted, possibly-cyclic, edge-labeled graphs are generated from
//! edge lists; random RPEs from a small grammar; random relations from
//! value pools. Each property pits an optimised implementation against a
//! naive oracle or checks an algebraic law.

use proptest::prelude::*;
use semistructured::graph::bisim::{
    bisimilarity_classes, graphs_bisimilar, naive_bisimilar, quotient,
};
use semistructured::graph::literal::{parse_graph, write_graph};
use semistructured::graph::ops;
use semistructured::query::decompose::{eval_decomposed_nfa, Partition};
use semistructured::query::recursion::{gext, EdgeTemplate, Transducer};
use semistructured::query::rpe::eval::eval_nfa;
use semistructured::query::{Nfa, Rpe, Step};
use semistructured::{Graph, Label, NodeId, Pred, Value};
use ssd_schema::DataGuide;

// ---------- generators -----------------------------------------------------

const LABELS: &[&str] = &["a", "b", "c", "Movie", "Title"];

/// Build a graph over `n` nodes (node 0 = root) from an edge list.
fn graph_from_edges(n: usize, edges: &[(usize, usize, usize)]) -> Graph {
    let mut g = Graph::new();
    let mut ids = vec![g.root()];
    for _ in 1..n {
        ids.push(g.add_node());
    }
    for &(from, to, label) in edges {
        let from = ids[from % n];
        let to = ids[to % n];
        let label = if label < LABELS.len() {
            Label::symbol(g.symbols(), LABELS[label])
        } else {
            Label::int((label - LABELS.len()) as i64)
        };
        g.add_edge(from, label, to);
    }
    g
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        1usize..7,
        proptest::collection::vec((0usize..7, 0usize..7, 0usize..7), 0..16),
    )
        .prop_map(|(n, edges)| graph_from_edges(n, &edges))
}

fn arb_rpe() -> impl Strategy<Value = Rpe> {
    let leaf = prop_oneof![
        (0usize..LABELS.len()).prop_map(|i| Rpe::symbol(LABELS[i])),
        Just(Rpe::step(Step::wildcard())),
        (0usize..LABELS.len()).prop_map(|i| Rpe::step(Step::not_symbol(LABELS[i]))),
        Just(Rpe::Epsilon),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Rpe::Seq(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Rpe::Alt(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| a.star()),
            inner.clone().prop_map(|a| a.plus()),
            inner.prop_map(|a| a.opt()),
        ]
    })
}

fn arb_word(g: &Graph) -> Vec<Label> {
    // A short word over the label alphabet (deterministic helper).
    LABELS
        .iter()
        .take(3)
        .map(|s| Label::symbol(g.symbols(), s))
        .collect()
}

// ---------- bisimulation ----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_refinement_agrees_with_naive_oracle(g in arb_graph()) {
        let classes = bisimilarity_classes(&g);
        let nodes: Vec<NodeId> = g.node_ids().collect();
        for &x in nodes.iter().take(4) {
            for &y in nodes.iter().take(4) {
                let fast = classes[x.index()] == classes[y.index()];
                let slow = naive_bisimilar(&g, x, &g, y);
                prop_assert_eq!(fast, slow, "disagree on {} vs {}", x, y);
            }
        }
    }

    #[test]
    fn quotient_is_bisimilar_and_minimal(g in arb_graph()) {
        let (q, _) = quotient(&g);
        prop_assert!(graphs_bisimilar(&g, &q));
        // Idempotent: quotienting again changes nothing.
        let (q2, _) = quotient(&q);
        prop_assert_eq!(q.reachable().len(), q2.reachable().len());
    }

    #[test]
    fn union_laws_up_to_bisimulation(a in arb_graph(), b in arb_graph()) {
        let ab = ops::graph_union(&a, &b);
        let ba = ops::graph_union(&b, &a);
        prop_assert!(graphs_bisimilar(&ab, &ba), "union not commutative");
        let a_empty = ops::graph_union(&a, &Graph::new());
        prop_assert!(graphs_bisimilar(&a_empty, &a), "empty not identity");
        let aa = ops::graph_union(&a, &a);
        prop_assert!(graphs_bisimilar(&aa, &a), "union not idempotent");
    }

    // ---------- serialization ------------------------------------------------

    #[test]
    fn literal_round_trip(g in arb_graph()) {
        let text = write_graph(&g);
        let back = parse_graph(&text).unwrap();
        prop_assert!(graphs_bisimilar(&g, &back), "round trip broke:\n{}", text);
    }

    // ---------- automata ------------------------------------------------------

    #[test]
    fn dfa_equals_nfa_on_graph_words(rpe in arb_rpe(), g in arb_graph()) {
        let nfa = Nfa::compile(&rpe);
        let dfa = nfa.to_dfa();
        // Words: all label paths of length <= 3 in g, plus a fixed word.
        let mut words: Vec<Vec<Label>> = vec![vec![], arb_word(&g)];
        let mut frontier = vec![(g.root(), Vec::<Label>::new())];
        for _ in 0..3 {
            let mut next = Vec::new();
            for (n, w) in frontier {
                for e in g.edges(n) {
                    let mut w2 = w.clone();
                    w2.push(e.label.clone());
                    words.push(w2.clone());
                    next.push((e.to, w2));
                }
            }
            frontier = next;
            if frontier.len() > 50 { frontier.truncate(50); }
        }
        for w in words.iter().take(120) {
            prop_assert_eq!(
                nfa.accepts(w, g.symbols()),
                dfa.accepts(w, g.symbols()),
                "disagree on {:?} for {}", w, rpe
            );
        }
    }

    #[test]
    fn simplify_preserves_rpe_semantics(rpe in arb_rpe(), g in arb_graph()) {
        let simplified = rpe.simplify();
        let a = eval_nfa(&g, g.root(), &Nfa::compile(&rpe));
        let b = eval_nfa(&g, g.root(), &Nfa::compile(&simplified));
        prop_assert_eq!(a, b, "simplify changed semantics of {}", rpe);
    }

    #[test]
    fn decomposed_eval_equals_sequential(rpe in arb_rpe(), g in arb_graph(), k in 1usize..4) {
        let nfa = Nfa::compile(&rpe);
        let seq = eval_nfa(&g, g.root(), &nfa);
        let part = Partition::hash(&g, k);
        let par = eval_decomposed_nfa(&g, &nfa, &part);
        prop_assert_eq!(seq, par);
    }

    // ---------- DataGuide ------------------------------------------------------

    #[test]
    fn dataguide_paths_sound_and_complete(g in arb_graph()) {
        let guide = DataGuide::build(&g);
        let from_guide: std::collections::BTreeSet<Vec<Label>> =
            guide.paths_up_to(4).into_iter().collect();
        let from_data = ssd_schema::data_paths_up_to(&g, 4);
        prop_assert_eq!(from_guide, from_data);
    }

    #[test]
    fn dataguide_target_sets_match_rpe(g in arb_graph()) {
        let guide = DataGuide::build(&g);
        // For each fixed 2-symbol path, guide targets == RPE evaluation.
        for l1 in LABELS.iter().take(3) {
            for l2 in LABELS.iter().take(3) {
                let path = [
                    Label::symbol(g.symbols(), l1),
                    Label::symbol(g.symbols(), l2),
                ];
                let via_guide: std::collections::BTreeSet<NodeId> =
                    guide.path_targets(&path).iter().copied().collect();
                let rpe = Rpe::seq(vec![Rpe::symbol(l1), Rpe::symbol(l2)]);
                let via_rpe: std::collections::BTreeSet<NodeId> =
                    eval_nfa(&g, g.root(), &Nfa::compile(&rpe)).into_iter().collect();
                prop_assert_eq!(via_guide, via_rpe);
            }
        }
    }

    // ---------- structural recursion -------------------------------------------

    #[test]
    fn gext_identity_is_bisimilar(g in arb_graph()) {
        let out = gext(&g, g.root(), &Transducer::new());
        prop_assert!(graphs_bisimilar(&g, &out));
    }

    #[test]
    fn gext_relabel_then_inverse_is_identity(g in arb_graph()) {
        // Rename a->zz, then zz->a: identity as long as zz is unused.
        let t1 = Transducer::new().case(
            Pred::Symbol("a".into()),
            EdgeTemplate::relabel_symbol("zz"),
        );
        let t2 = Transducer::new().case(
            Pred::Symbol("zz".into()),
            EdgeTemplate::relabel_symbol("a"),
        );
        let once = gext(&g, g.root(), &t1);
        let back = gext(&once, once.root(), &t2);
        prop_assert!(graphs_bisimilar(&g, &back));
    }

    #[test]
    fn gext_delete_removes_all_matching_edges(g in arb_graph()) {
        let t = Transducer::new().case(Pred::Symbol("a".into()), EdgeTemplate::Delete);
        let out = gext(&g, g.root(), &t);
        let a = out.symbols().get("a");
        if let Some(sym) = a {
            for n in out.reachable() {
                prop_assert!(out.successors_by_symbol(n, sym).is_empty());
            }
        }
    }

    // ---------- schema ----------------------------------------------------------

    #[test]
    fn extracted_schema_always_accepts_its_data(g in arb_graph()) {
        let schema = ssd_schema::extract_schema_default(&g);
        prop_assert!(ssd_schema::conforms(&g, &schema));
    }

    #[test]
    fn universal_schema_accepts_everything(g in arb_graph()) {
        prop_assert!(ssd_schema::conforms(&g, &ssd_schema::Schema::universal()));
    }

    #[test]
    fn bisimilar_graphs_conform_to_same_schemas(g in arb_graph()) {
        // The quotient (bisimilar) must conform to the schema extracted
        // from the original.
        let (q, _) = quotient(&g);
        let schema = ssd_schema::extract_schema_default(&g);
        prop_assert!(ssd_schema::conforms(&q, &schema));
    }

    // ---------- datalog vs direct paths -----------------------------------------

    #[test]
    fn datalog_tc_equals_bfs_closure(g in arb_graph()) {
        use semistructured::triples::datalog::{evaluate, evaluate_naive, parse_program};
        use semistructured::triples::{paths, Datum, TripleStore};
        let store = TripleStore::from_graph(&g);
        let program = parse_program(
            "path(X, Y) :- edge(X, _L, Y).\n\
             path(X, Y) :- edge(X, _L, Z), path(Z, Y).",
            g.symbols(),
        ).unwrap();
        let semi = evaluate(&program, &store).unwrap();
        let naive = evaluate_naive(&program, &store).unwrap();
        prop_assert_eq!(semi.facts.get("path"), naive.facts.get("path"));
        let direct = paths::transitive_closure(&store);
        let from_datalog: std::collections::BTreeSet<(NodeId, NodeId)> = semi
            .tuples("path")
            .map(|t| match (&t[0], &t[1]) {
                (Datum::Node(a), Datum::Node(b)) => (*a, *b),
                _ => unreachable!(),
            })
            .collect();
        prop_assert_eq!(direct, from_datalog);
    }

    // ---------- relational round trips -------------------------------------------

    #[test]
    fn relational_encoding_round_trips(
        rows in proptest::collection::vec((any::<i64>(), "[a-z]{0,6}"), 0..12)
    ) {
        use semistructured::graph::encode::relational::{decode_relation, encode_style10, NamedRelation};
        let mut rel = NamedRelation::new("r", &["num", "text"]);
        for (i, s) in rows {
            rel.push(vec![Value::Int(i), Value::Str(s)]);
        }
        let mut g = Graph::new();
        encode_style10(&mut g, &[rel.clone()]);
        let back = decode_relation(&g, "r", &["num", "text"]).unwrap();
        prop_assert_eq!(back.row_set(), rel.row_set());
    }

    #[test]
    fn fragment_ops_match_native_oracle(
        rows in proptest::collection::vec((0i64..5, 0i64..5), 0..10),
        sel in 0i64..5,
    ) {
        use semistructured::query::relational_fragment as rf;
        use semistructured::graph::encode::relational::NamedRelation;
        let mut rel = NamedRelation::new("r", &["x", "y"]);
        for (a, b) in rows {
            rel.push(vec![Value::Int(a), Value::Int(b)]);
        }
        let g = rf::database_of(&[rel.clone()]);
        let via_graph = rf::select_eq(&g, &rel, "x", &Value::Int(sel)).unwrap();
        let oracle = rf::native_select_eq(&rel, "x", &Value::Int(sel));
        prop_assert_eq!(via_graph.row_set(), oracle.row_set());
        let pg = rf::project(&g, &rel, &["y"]).unwrap();
        let po = rf::native_project(&rel, &["y"]);
        prop_assert_eq!(pg.row_set(), po.row_set());
    }

    // ---------- OEM --------------------------------------------------------------

    #[test]
    fn oem_round_trip_preserves_symbol_labeled_graphs(g in arb_graph()) {
        use semistructured::graph::oem::OemDb;
        // Restrict to the symbol-only fragment by deleting value edges
        // first (OEM labels are strings).
        let t = Transducer::new().case(
            Pred::Kind(semistructured::LabelKind::Int),
            EdgeTemplate::Delete,
        );
        let g = gext(&g, g.root(), &t);
        let db = OemDb::from_graph(&g);
        prop_assert!(db.validate().is_ok());
        let back = db.to_graph().unwrap();
        prop_assert!(graphs_bisimilar(&g, &back));
    }

    // ---------- query evaluation options ------------------------------------------

    #[test]
    fn pushdown_and_guide_preserve_query_semantics(g in arb_graph()) {
        use semistructured::query::{evaluate_select, parse_query};
        use semistructured::EvalOptions;
        let queries = [
            "select X from db.a X",
            "select {r: X} from db.%*.b X",
            "select X from db.a M, M.%* X",
            "select X from db.(a|b).c? X",
        ];
        let guide = DataGuide::build(&g);
        for q in queries {
            let parsed = parse_query(q).unwrap();
            let (base, _) = evaluate_select(&g, &parsed, &EvalOptions::default()).unwrap();
            let (opt, _) = evaluate_select(
                &g,
                &parsed,
                &EvalOptions::optimized(Some(&guide)),
            ).unwrap();
            prop_assert!(
                graphs_bisimilar(&base, &opt),
                "options changed semantics of {} on {}", q, write_graph(&g)
            );
        }
    }
}

// ---------- later-added properties (JSON, nest/unnest, diff, builtins) ------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn json_round_trip_on_acyclic_graphs(g in arb_graph()) {
        prop_assume!(!g.has_cycle());
        let json = semistructured::graph::json::graph_to_json(&g).unwrap();
        let back = semistructured::graph::json::from_json(&json).unwrap();
        // JSON re-groups duplicate labels into arrays (integer labels), so
        // exact bisimilarity holds only when no node has duplicate labels;
        // verify the weaker invariant unconditionally — re-export is a
        // fixpoint — and bisimilarity when labels are unique per node.
        let json2 =
            semistructured::graph::json::graph_to_json(&back).unwrap();
        prop_assert_eq!(&json, &json2, "JSON export not a fixpoint");
        // Exact bisimilarity additionally needs a JSON-faithful shape:
        // every node is an atom, a pure integer-labeled array, or an
        // object with distinct symbol keys (JSON object keys are strings,
        // so other label shapes coarsen).
        let json_faithful = g.reachable().into_iter().all(|n| {
            if g.atomic_value(n).is_some() {
                return true;
            }
            let edges = g.edges(n);
            let mut int_indices: Vec<i64> = edges
                .iter()
                .filter_map(|e| match e.label.as_value() {
                    Some(Value::Int(i)) => Some(*i),
                    _ => None,
                })
                .collect();
            if int_indices.len() == edges.len() && !edges.is_empty() {
                // Array: positional export survives exactly when the
                // indices are already 1..=n.
                int_indices.sort_unstable();
                return int_indices == (1..=edges.len() as i64).collect::<Vec<_>>();
            }
            let all_syms = edges.iter().all(|e| e.label.is_symbol());
            if !all_syms {
                return false;
            }
            let mut labels: Vec<_> = edges.iter().map(|e| &e.label).collect();
            let before = labels.len();
            labels.sort();
            labels.dedup();
            labels.len() == before
        });
        if json_faithful {
            prop_assert!(graphs_bisimilar(&g, &back), "round trip broke:\n{}", json);
        }
    }

    #[test]
    fn nest_unnest_inverse(
        rows in proptest::collection::vec((0i64..4, 0i64..6), 1..12)
    ) {
        use semistructured::query::relational_fragment as rf;
        use semistructured::graph::encode::relational::NamedRelation;
        let mut rel = NamedRelation::new("r", &["k", "v"]);
        for (k, v) in rows {
            rel.push(vec![Value::Int(k), Value::Int(v)]);
        }
        let g = rf::database_of(&[rel.clone()]);
        let nested = rf::nest(&g, &rel, "v").unwrap();
        let flat = rf::unnest(&nested, "r", &["k", "v"], "v").unwrap();
        prop_assert_eq!(flat.row_set(), rel.row_set());
    }

    #[test]
    fn diff_of_bisimilar_graphs_is_empty(g in arb_graph()) {
        let (q, _) = quotient(&g);
        let d = ssd_schema::diff_paths(&g, &q, 4);
        prop_assert!(d.is_empty(), "bisimilar graphs diff non-empty");
    }

    #[test]
    fn oneindex_paths_match_dataguide(g in arb_graph()) {
        let one = ssd_schema::OneIndex::build(&g);
        let guide = DataGuide::build(&g);
        let a = one.paths_up_to(4);
        let b: std::collections::BTreeSet<Vec<Label>> =
            guide.paths_up_to(4).into_iter().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn oneindex_targets_match_dataguide_on_graph_paths(g in arb_graph()) {
        let one = ssd_schema::OneIndex::build(&g);
        let guide = DataGuide::build(&g);
        for path in guide.paths_up_to(3).into_iter().take(30) {
            let a: std::collections::BTreeSet<NodeId> =
                one.path_targets(&path).into_iter().collect();
            let b: std::collections::BTreeSet<NodeId> =
                guide.path_targets(&path).iter().copied().collect();
            prop_assert_eq!(a, b, "disagree on {:?}", path);
        }
    }

    #[test]
    fn datalog_builtin_matches_manual_filter(
        vals in proptest::collection::vec(-20i64..20, 1..10),
        threshold in -20i64..20,
    ) {
        use semistructured::triples::datalog::{evaluate, parse_program};
        use semistructured::triples::TripleStore;
        let mut g = Graph::new();
        for v in &vals {
            let mid = g.add_node();
            let root = g.root();
            g.add_sym_edge(root, "n", mid);
            g.add_value_edge(mid, *v);
        }
        let store = TripleStore::from_graph(&g);
        let program = parse_program(
            &format!("big(V) :- edge(_N, V, _L), gt(V, {threshold})."),
            g.symbols(),
        ).unwrap();
        let eval = evaluate(&program, &store).unwrap();
        let expected: std::collections::BTreeSet<i64> =
            vals.iter().copied().filter(|v| *v > threshold).collect();
        prop_assert_eq!(eval.count("big"), expected.len());
    }

    #[test]
    fn rewrite_delete_then_query_never_sees_label(g in arb_graph()) {
        // Surface rewrite deleting 'a' edges composes with querying: no
        // result can traverse an a-edge afterwards.
        use semistructured::query::lang::parse_rewrite;
        use semistructured::query::recursion::gext;
        let t = parse_rewrite("rewrite case a => delete").unwrap();
        let out = gext(&g, g.root(), &t);
        let hits = semistructured::query::eval_rpe(
            &out,
            out.root(),
            &Rpe::seq(vec![Rpe::step(Step::wildcard()).star(), Rpe::symbol("a")]),
        );
        prop_assert!(hits.is_empty());
    }
}
