//! Golden-file test for `ssd explain --analyze` plus the programmatic
//! counterpart: on `examples/movies.ssd` the statically estimated
//! `CostEnvelope` must bracket the actuals the tracer measures — the
//! same soundness contract `tests/cost_soundness.rs` checks with
//! random graphs, pinned here to the shipped example so the rendered
//! output stays reviewable.
//!
//! Numbers in the golden file are masked (`N`) so cosmetic cost-model
//! retuning does not churn the fixture; the *bracketing* is asserted
//! exactly, not masked.

use std::io::Cursor;
use std::path::Path;

use semistructured::trace::{SharedRing, Tracer};
use semistructured::{Bound, Budget, Database};

const QUERY: &str = "select T from db.Entry.Movie.Title T";

fn repo_path(rel: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
        .to_string_lossy()
        .into_owned()
}

fn run_cli(args: &[&str]) -> String {
    let owned: Vec<String> = args.iter().map(|s| (*s).to_string()).collect();
    ssd_cli::run(&owned, &mut Cursor::new(&b""[..])).expect("cli run failed")
}

/// Replace every maximal digit run with `N` so the golden file pins
/// *structure* (lines, labels, ordering) rather than exact counters.
fn mask_digits(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_digits = false;
    for c in s.chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('N');
                in_digits = true;
            }
        } else {
            in_digits = false;
            out.push(c);
        }
    }
    out
}

#[test]
fn explain_analyze_matches_golden() {
    let movies = repo_path("examples/movies.ssd");
    let out = run_cli(&["explain", &movies, QUERY, "--analyze"]);
    let masked = mask_digits(out.trim_end());
    let golden_path = repo_path("tests/golden/explain_movies.txt");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden file {golden_path}: {e}"));
    assert_eq!(
        masked,
        golden.trim_end(),
        "ssd explain --analyze drifted from tests/golden/explain_movies.txt \
         (regenerate by re-running the command and masking digit runs as N)"
    );
}

#[test]
fn explain_plain_shows_estimate_only() {
    let movies = repo_path("examples/movies.ssd");
    let out = run_cli(&["explain", &movies, QUERY]);
    assert!(out.contains("estimated cost"), "missing estimate: {out}");
    assert!(
        !out.contains("actual cost"),
        "plain explain must not evaluate: {out}"
    );
}

/// The estimate printed by `explain` brackets the actuals measured by
/// `explain --analyze` — checked here on real counters, not rendered
/// text, against the shipped example database.
#[test]
fn estimated_envelope_brackets_traced_actuals_on_movies() {
    let text = std::fs::read_to_string(repo_path("examples/movies.ssd")).unwrap();
    let db = Database::from_literal(&text).unwrap();
    let analysis = db.estimate_query(QUERY).expect("estimate failed");
    let env = &analysis.envelope;

    let ring = SharedRing::new(semistructured::trace::DEFAULT_RING_CAP);
    let tracer = Tracer::with_sink(Box::new(ring.clone()));
    let guard = Budget::metered().guard();
    let result = db
        .query_traced(QUERY, Some(&guard), false, Some(&tracer))
        .expect("traced evaluation failed");
    tracer.flush();

    let fuel = guard.steps_used();
    let memory = guard.memory_used();
    assert!(
        fuel >= env.fuel.lo,
        "actual fuel {fuel} below estimated lower bound {}",
        env.fuel.lo
    );
    if let Bound::Finite(hi) = env.fuel.hi {
        assert!(fuel <= hi, "actual fuel {fuel} above estimated bound {hi}");
    }
    if let Bound::Finite(hi) = env.memory.hi {
        assert!(
            memory <= hi,
            "actual memory {memory} above estimated bound {hi}"
        );
    }
    if let Bound::Finite(hi) = env.cardinality.hi {
        let n = result.stats().results_constructed as u64;
        assert!(n <= hi, "result count {n} above estimated cardinality {hi}");
    }

    // And the trace itself is well-formed and attributes the work.
    let events = ring.snapshot();
    semistructured::trace::validate(&events).expect("trace must validate");
    let totals = semistructured::trace::phase_totals(&events);
    assert!(
        totals.contains("eval"),
        "missing eval phase totals: {totals}"
    );
}

/// On a graph large enough for the cost model to pick the columnar
/// pipeline, `explain` names the index permutations per binding; on the
/// tiny shipped example it names the interpreter and cites SSD050.
#[test]
fn explain_names_the_chosen_access_path_per_binding() {
    let entries: Vec<String> = (0..300)
        .map(|i| format!("Entry: {{Movie: {{Title: \"M{i}\", Year: {}}}}}", 1900 + i))
        .collect();
    let literal = format!("{{{}}}", entries.join(", "));
    let dir = std::env::temp_dir().join(format!("ssd-explain-access-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("big.ssd");
    std::fs::write(&data, &literal).unwrap();

    let out = run_cli(&[
        "explain",
        data.to_str().unwrap(),
        "select T from db.Entry E, E.Movie M, M.Title T",
    ]);
    assert!(
        out.contains("access=index("),
        "large graph should pick an index permutation: {out}"
    );
    assert!(
        !out.contains("SSD050"),
        "no fallback note when the index wins: {out}"
    );

    let out = run_cli(&["explain", &repo_path("examples/movies.ssd"), QUERY]);
    assert!(
        out.contains("access=interpreter(nfa-scan)"),
        "tiny graph should keep the interpreter: {out}"
    );
    assert!(out.contains("SSD050"), "fallback note missing: {out}");
    let _ = std::fs::remove_dir_all(&dir);
}
