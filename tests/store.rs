//! Crash-safety integration tests for `ssd-store`: a seeded
//! crash-schedule matrix over every WAL fault site, a property test
//! interleaving random transactions with injected crashes, snapshot
//! isolation under a concurrent writer, and the SSD4xx diagnostics —
//! SSD400 (torn tail truncated), SSD401 (checksum mismatch), SSD402
//! (recovery replay note), SSD403 (write on a read-only store).
//!
//! The contract under test is the one `docs/ROBUSTNESS.md` states:
//! after any injected crash, reopening the store yields *exactly* the
//! committed-transaction prefix — no committed transaction is lost, no
//! uncommitted operation is visible.

use proptest::prelude::*;
use semistructured::{Budget, Database};
use ssd_store::{Op, Store, StoreError, Txn};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const SEED: &str = "{Seed: {Tag: \"origin\"}}";

fn tmpdir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ssd-store-it-{}-{}-{}",
        std::process::id(),
        tag,
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

fn seed_db() -> Database {
    Database::from_literal(SEED).expect("seed literal")
}

fn open_clean(dir: &Path) -> (Store, ssd_store::RecoveryReport) {
    Store::open(dir, &Budget::unlimited()).expect("clean open")
}

/// The transaction the matrix and the proptest replay: insert a
/// distinctly-labeled node so every committed txn is visible in the
/// canonical literal.
fn txn_for(i: u64) -> Txn {
    let mut t = Txn::new();
    t.push(Op::Insert(format!("{{T{i}: {{N: {i}}}}}")));
    t
}

/// Apply the same transactions to a mirror database — the oracle for
/// "reopened state equals exactly the committed prefix".
fn mirror(committed: u64) -> String {
    let mut db = seed_db();
    for i in 0..committed {
        let add = Database::from_literal(&format!("{{T{i}: {{N: {i}}}}}")).unwrap();
        db = db.union(&add);
    }
    db.to_literal()
}

// ------------------------------------------------------------- matrix

/// Every fault site × every schedule position: commit until the
/// injected crash poisons the store, then reopen and check the
/// committed prefix survived bit-exactly.
#[test]
fn crash_schedule_matrix_preserves_committed_prefix() {
    for site in ["wal.write", "wal.torn", "wal.short", "wal.fsync"] {
        for nth in 1u64..=3 {
            let dir = tmpdir("matrix");
            Store::init(&dir, &seed_db()).unwrap();
            let budget = Budget::unlimited().fail_at(site, nth);
            let (store, _) = Store::open(&dir, &budget).unwrap();

            let mut committed = 0u64;
            let mut crashed = false;
            for i in 0..8u64 {
                match store.commit(&txn_for(i)) {
                    Ok(info) => {
                        assert!(!crashed, "{site}@{nth}: commit after poison");
                        committed += 1;
                        assert_eq!(info.generation, committed, "{site}@{nth}");
                    }
                    Err(e) => {
                        // First failure is the injected fault; the store
                        // is now read-only (simulated crash) and every
                        // later write is SSD403.
                        if crashed {
                            assert!(matches!(e, StoreError::ReadOnly(_)), "{site}@{nth}: {e}");
                            assert!(e.diagnostic().unwrap().headline().contains("SSD403"));
                        }
                        crashed = true;
                    }
                }
            }
            assert!(crashed, "{site}@{nth}: fault never fired");
            assert!(store.read_only().is_some());

            let (reopened, report) = open_clean(&dir);
            assert_eq!(reopened.generation(), committed, "{site}@{nth}");
            assert_eq!(report.txns_replayed, committed, "{site}@{nth}");
            assert_eq!(
                reopened.snapshot().to_literal(),
                mirror(committed),
                "{site}@{nth}: reopened state is not the committed prefix"
            );
            // Torn and short writes flush partial frames, so recovery
            // must truncate (SSD400); write/fsync faults roll back to
            // the durable length before anything hits the file.
            let torn = site == "wal.torn" || site == "wal.short";
            assert_eq!(report.truncated_bytes > 0, torn, "{site}@{nth}");
            let headlines: Vec<String> = report.diagnostics.iter().map(|d| d.headline()).collect();
            assert_eq!(
                headlines.iter().any(|h| h.contains("SSD400")),
                torn,
                "{site}@{nth}: {headlines:?}"
            );
            // The replay note is always present.
            assert!(headlines.iter().any(|h| h.contains("SSD402")));
        }
    }
}

/// The `SSD_FAILPOINTS` spec form reaches the store's I/O sites, the
/// `N` position is honored (`wal.fsync=2` crashes the second commit,
/// not the first), and every `Store::open` re-arms the schedule from
/// the budget — faults are deterministic per incarnation, not global
/// state.
#[test]
fn fault_spec_is_positional_and_rearms_per_open() {
    let dir = tmpdir("nm");
    Store::init(&dir, &seed_db()).unwrap();
    let budget = Budget::unlimited()
        .fail_points_from_spec("wal.fsync=2")
        .unwrap();
    let (store, _) = Store::open(&dir, &budget).unwrap();
    store.commit(&txn_for(0)).unwrap();
    assert!(matches!(
        store.commit(&txn_for(1)),
        Err(StoreError::Fault(_))
    ));
    assert!(store.read_only().is_some());

    // Reopened with the same budget: its own second commit crashes.
    let (store2, _) = Store::open(&dir, &budget).unwrap();
    store2.commit(&txn_for(1)).unwrap();
    assert!(store2.commit(&txn_for(2)).is_err());

    // A clean budget sees both surviving commits and writes freely.
    let (store3, report) = open_clean(&dir);
    assert_eq!(report.txns_replayed, 2);
    store3.commit(&txn_for(2)).unwrap();
    assert_eq!(store3.generation(), 3);
}

// ----------------------------------------------------------- proptest

/// One step of the generated schedule: how many ops in the txn, and
/// whether the crash fires during this commit.
#[derive(Debug, Clone)]
struct Step {
    ops: u8,
    site: Option<usize>,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // Site indexes 0..4 inject a crash during this commit; 4..8 commit
    // cleanly (an even mix, without `proptest::option` which the
    // vendored polyfill lacks).
    (1u8..4, 0usize..8).prop_map(|(ops, s)| Step {
        ops,
        site: if s < 4 { Some(s) } else { None },
    })
}

const SITES: [&str; 4] = ["wal.write", "wal.torn", "wal.short", "wal.fsync"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every random interleaving of transactions and injected
    /// crashes, reopening yields exactly the committed prefix. The
    /// `wal.read` site is deliberately excluded: corrupting a committed
    /// frame on read legitimately loses that transaction, and is tested
    /// deterministically below.
    #[test]
    fn recovery_replays_exactly_the_committed_prefix(
        steps in proptest::collection::vec(step_strategy(), 1..10)
    ) {
        let dir = tmpdir("prop");
        Store::init(&dir, &seed_db()).unwrap();
        let mut committed = 0u64;
        let mut label = 0u64;
        let mut expect = seed_db();

        let mut idx = 0;
        while idx < steps.len() {
            // Each open gets the fault schedule for the next crash only,
            // so exactly one commit per "incarnation" can fail.
            let crash_at = steps[idx..].iter().position(|s| s.site.is_some());
            let budget = match crash_at {
                Some(k) => {
                    let site = SITES[steps[idx + k].site.unwrap()];
                    // Fault sites count *hits*: wal.fsync is hit once
                    // per commit, the frame-level sites once per frame
                    // (ops + 1 per clean commit before the crash).
                    let nth = if site == "wal.fsync" {
                        (k + 1) as u64
                    } else {
                        steps[idx..idx + k]
                            .iter()
                            .map(|s| u64::from(s.ops) + 1)
                            .sum::<u64>()
                            + 1
                    };
                    Budget::unlimited().fail_at(site, nth)
                }
                None => Budget::unlimited(),
            };
            let (store, report) = Store::open(&dir, &budget).unwrap();
            prop_assert_eq!(report.txns_replayed, committed);
            prop_assert_eq!(store.generation(), committed);

            loop {
                if idx >= steps.len() {
                    break;
                }
                let step = &steps[idx];
                let mut txn = Txn::new();
                for _ in 0..step.ops {
                    txn.push(Op::Insert(format!("{{T{label}: {{N: {label}}}}}")));
                    label += 1;
                }
                let crashing = step.site.is_some();
                idx += 1;
                match store.commit(&txn) {
                    Ok(_) => {
                        prop_assert!(!crashing);
                        committed += 1;
                        for op in txn.ops() {
                            let add = Database::from_literal(op.body()).unwrap();
                            expect = expect.union(&add);
                        }
                    }
                    Err(e) => {
                        prop_assert!(crashing, "unexpected commit failure: {e}");
                        break; // crashed: reopen in the outer loop
                    }
                }
            }
        }

        let (reopened, report) = open_clean(&dir);
        prop_assert_eq!(report.txns_replayed, committed);
        prop_assert_eq!(reopened.generation(), committed);
        prop_assert_eq!(reopened.snapshot().to_literal(), expect.to_literal());
    }
}

// ------------------------------------------------- snapshot isolation

/// Readers pin a generation: a snapshot taken before a storm of
/// concurrent commits is bit-identical afterwards, and every snapshot
/// the readers observe is internally consistent (generation g contains
/// exactly the first g transactions).
#[test]
fn concurrent_readers_observe_consistent_generations() {
    let dir = tmpdir("iso");
    Store::init(&dir, &seed_db()).unwrap();
    let (store, _) = open_clean(&dir);
    let store = std::sync::Arc::new(store);

    let pinned = store.snapshot();
    let pinned_literal = pinned.to_literal();
    assert_eq!(pinned.generation(), 0);

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let store = std::sync::Arc::clone(&store);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    let snap = store.snapshot();
                    let g = snap.generation();
                    // A consistent snapshot of generation g is exactly
                    // the mirror of g committed transactions — never a
                    // half-applied one.
                    assert_eq!(snap.to_literal(), mirror(g), "generation {g}");
                }
            })
        })
        .collect();

    for i in 0..10u64 {
        store.commit(&txn_for(i)).unwrap();
    }
    for r in readers {
        r.join().unwrap();
    }

    // The pre-storm snapshot never moved.
    assert_eq!(pinned.generation(), 0);
    assert_eq!(pinned.to_literal(), pinned_literal);
    assert_eq!(store.generation(), 10);
}

// ------------------------------------------------------- diagnostics

/// Corrupting a committed frame on read is detected (SSD401), the
/// corrupt tail is discarded (SSD400), and recovery reports what it
/// replayed (SSD402) — the full diagnostic band in one open.
#[test]
fn read_corruption_reports_the_full_diagnostic_band() {
    let dir = tmpdir("ssd401");
    Store::init(&dir, &seed_db()).unwrap();
    let (store, _) = open_clean(&dir);
    store.commit(&txn_for(0)).unwrap();
    store.commit(&txn_for(1)).unwrap();
    drop(store);

    let budget = Budget::unlimited().fail_at("wal.read", 1);
    let (reopened, report) = Store::open(&dir, &budget).unwrap();
    // The flipped byte lands in the last frame: the second commit is
    // gone, the first survives.
    assert_eq!(reopened.generation(), 1);
    let headlines: Vec<String> = report.diagnostics.iter().map(|d| d.headline()).collect();
    for code in ["SSD400", "SSD401", "SSD402"] {
        assert!(
            headlines.iter().any(|h| h.contains(code)),
            "{code} missing from {headlines:?}"
        );
    }
}

/// Writes against a poisoned (crashed) store and a store-less server
/// share one refusal: SSD403.
#[test]
fn poisoned_store_rejects_writes_with_ssd403() {
    let dir = tmpdir("ssd403");
    Store::init(&dir, &seed_db()).unwrap();
    let budget = Budget::unlimited().fail_at("wal.fsync", 1);
    let (store, _) = Store::open(&dir, &budget).unwrap();
    assert!(store.commit(&txn_for(0)).is_err());

    let err = store.commit(&txn_for(1)).unwrap_err();
    let diag = err.diagnostic().expect("SSD403 carries a diagnostic");
    assert!(diag.headline().contains("SSD403"), "{}", diag.headline());

    // Reopening clears the poison: the fault schedule is spent and the
    // store accepts writes again, having lost nothing committed.
    let (fresh, report) = open_clean(&dir);
    assert_eq!(report.txns_replayed, 0);
    fresh.commit(&txn_for(0)).unwrap();
    assert_eq!(fresh.generation(), 1);
}

/// Double-init refuses to clobber an existing store.
#[test]
fn init_refuses_to_overwrite() {
    let dir = tmpdir("reinit");
    Store::init(&dir, &seed_db()).unwrap();
    assert!(Store::init(&dir, &seed_db()).is_err());
    assert!(Store::is_initialized(&dir));
}
