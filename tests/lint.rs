//! Integration tests for ssd-lint (SSD9xx source lints).
//!
//! Two halves: the real workspace must lint *clean* (this is the same
//! gate ci.sh runs via `ssd lint --deny-warnings`), and the seeded
//! fixture workspace under `tests/fixtures/lint-bad/` must reproduce
//! the golden findings — one or more per lint: SSD901 RegistryDrift,
//! SSD902 GuardBypass, SSD903 PanicSite, SSD904 LockOrderViolation,
//! SSD905 SpanLeak (`Code::RegistryDrift`, `Code::GuardBypass`,
//! `Code::PanicSite`, `Code::LockOrderViolation`, `Code::SpanLeak`),
//! and the interprocedural band: SSD910 InterprocLockInversion, SSD911
//! BlockingUnderLock, SSD912 AtomicOrderingUndeclared, SSD913
//! PublishBeforeLog, SSD914 FaultCoverageGap
//! (`Code::InterprocLockInversion`, `Code::BlockingUnderLock`,
//! `Code::AtomicOrderingUndeclared`, `Code::PublishBeforeLog`,
//! `Code::FaultCoverageGap`).

use std::path::{Path, PathBuf};

use ssd_diag::Code;

fn workspace_root() -> PathBuf {
    // The manifest dir is crates/lint; the workspace root is two up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn the_workspace_lints_clean() {
    let report = ssd_lint::lint_workspace(&workspace_root()).expect("lint runs");
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        report.render()
    );
    assert!(!ssd_lint::should_fail(&report, true));
}

#[test]
fn seeded_fixture_violations_match_the_golden_findings() {
    let root = workspace_root();
    let report =
        ssd_lint::lint_workspace(&root.join("tests/fixtures/lint-bad")).expect("fixture lints");
    // Every lint fires at least once on its seeded violation.
    for code in [
        Code::RegistryDrift,
        Code::GuardBypass,
        Code::PanicSite,
        Code::LockOrderViolation,
        Code::SpanLeak,
        Code::InterprocLockInversion,
        Code::BlockingUnderLock,
        Code::AtomicOrderingUndeclared,
        Code::PublishBeforeLog,
        Code::FaultCoverageGap,
    ] {
        assert!(
            report.findings.iter().any(|f| f.diag.code == code),
            "{code} did not fire on the seeded fixture:\n{}",
            report.render()
        );
    }
    // The tentpole case: a two-hop lock inversion the intraprocedural
    // SSD904 pass provably cannot see (`outer_hop` never names `state`).
    let two_hop = report
        .findings
        .iter()
        .find(|f| f.diag.code == Code::InterprocLockInversion)
        .expect("SSD910 fired");
    assert!(
        two_hop.diag.message.contains("middle_hop → inner_acquire"),
        "SSD910 should name the call path: {}",
        two_hop.diag.message
    );
    assert!(
        !report.findings.iter().any(|f| {
            f.diag.code == Code::LockOrderViolation && f.diag.message.contains("outer_hop")
        }),
        "SSD904 must NOT see the two-hop inversion (it spans bodies)"
    );
    // Errors present, so the gate fails with or without --deny-warnings.
    assert!(ssd_lint::should_fail(&report, false));
    assert!(ssd_lint::should_fail(&report, true));

    let golden_path = root.join("tests/golden/lint_findings.txt");
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_default();
    let got = report.render();
    if golden != got {
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&golden_path, &got).expect("write golden");
            return;
        }
        panic!(
            "fixture findings diverge from tests/golden/lint_findings.txt \
             (run with UPDATE_GOLDEN=1 to regenerate):\n--- golden ---\n{golden}\n--- got ---\n{got}"
        );
    }
}

#[test]
fn every_lint_code_has_an_explanation_and_no_runtime_code_does() {
    for code in ssd_lint::lint_codes() {
        let text = ssd_lint::explain(code.as_str()).expect("explanation");
        assert!(
            text.starts_with(code.as_str()),
            "{code} explanation should lead with the code"
        );
    }
    assert!(ssd_lint::explain("SSD101").is_none());
    assert!(ssd_lint::explain("SSD030").is_none());
}

#[test]
fn a_clean_report_renders_a_clean_summary() {
    let report = ssd_lint::lint_workspace(&workspace_root()).expect("lint runs");
    assert!(report.summary().contains("clean"), "{}", report.summary());
    assert!(report.files_scanned > 30, "{}", report.files_scanned);
    assert!(
        report.functions_scanned > 100,
        "{}",
        report.functions_scanned
    );
}

#[test]
fn json_rendering_is_one_object_per_finding_per_line() {
    let root = workspace_root();
    let report =
        ssd_lint::lint_workspace(&root.join("tests/fixtures/lint-bad")).expect("fixture lints");
    let json = report.render_json();
    let lines: Vec<&str> = json.lines().collect();
    assert_eq!(lines.len(), report.findings.len());
    for (line, f) in lines.iter().zip(&report.findings) {
        assert!(
            line.starts_with("{\"code\":\"SSD9") && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
        assert!(line.contains(&format!("\"code\":\"{}\"", f.diag.code.as_str())));
        assert!(line.contains("\"severity\":\""));
        assert!(line.contains("\"file\":\""));
        assert!(line.contains("\"line\":"));
        assert!(line.contains("\"message\":\""));
        // No raw control characters or unescaped interior quotes: the
        // object must keep exactly four quoted fields.
        assert!(
            !line.chars().any(|c| (c as u32) < 0x20),
            "raw control: {line}"
        );
    }
    // The clean workspace renders to an empty JSON stream.
    let clean = ssd_lint::lint_workspace(&root).expect("lint runs");
    assert_eq!(clean.render_json(), "");
}

/// Property tests for the call-graph layer: building the same randomly
/// generated workspace — including self- and mutually-recursive call
/// cycles — from two separate directory trees yields byte-identical
/// renders (determinism), and construction always completes (the
/// effect-summary fixpoint terminates on cyclic graphs).
mod callgraph_properties {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use proptest::prelude::*;

    static CASE: AtomicUsize = AtomicUsize::new(0);

    /// One generated function: which hierarchy lock it takes (if any),
    /// which functions it calls (indices taken mod the function count,
    /// so recursion and cycles arise naturally), and whether it blocks.
    #[derive(Debug, Clone)]
    struct GenFn {
        lock: Option<usize>,
        calls: Vec<usize>,
        sends: bool,
    }

    fn gen_fn() -> impl Strategy<Value = GenFn> {
        (
            (any::<bool>(), 0usize..2),
            proptest::collection::vec(0usize..16, 0..4),
            any::<bool>(),
        )
            .prop_map(|((locks, l), calls, sends)| GenFn {
                lock: locks.then_some(l),
                calls,
                sends,
            })
    }

    fn write_workspace(fns: &[GenFn]) -> PathBuf {
        let id = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ssd-lint-prop-{}-{id}", std::process::id()));
        let src_dir = dir.join("crates/serve/src");
        std::fs::create_dir_all(&src_dir).expect("mkdir");
        let mut src =
            String::from("pub const LOCK_ORDER: &[&str] = &[\"state\", \"workers\"];\n\n");
        let order = ["state", "workers"];
        for (i, f) in fns.iter().enumerate() {
            src.push_str(&format!("pub fn f{i}() {{\n"));
            if let Some(l) = f.lock {
                src.push_str(&format!("    let g = {}.lock();\n", order[l]));
            }
            for &c in &f.calls {
                src.push_str(&format!("    f{}();\n", c % fns.len()));
            }
            if f.sends {
                src.push_str("    tx.send(1);\n");
            }
            if f.lock.is_some() {
                src.push_str("    drop(g);\n");
            }
            src.push_str("}\n\n");
        }
        std::fs::write(src_dir.join("lib.rs"), src).expect("write fixture");
        dir
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn callgraph_is_deterministic_and_propagation_terminates(
            fns in proptest::collection::vec(gen_fn(), 1..16)
        ) {
            let a = write_workspace(&fns);
            let b = write_workspace(&fns);
            // Completing at all is the termination property: the
            // generated graphs are full of self-loops and cycles.
            let ra = ssd_lint::callgraph_debug(&a).expect("build a");
            let rb = ssd_lint::callgraph_debug(&b).expect("build b");
            // And linting the whole thing must terminate too.
            let report = ssd_lint::lint_workspace(&a).expect("lint");
            let _ = report.render();
            std::fs::remove_dir_all(&a).ok();
            std::fs::remove_dir_all(&b).ok();
            prop_assert_eq!(ra, rb);
        }
    }
}
