//! Integration tests for ssd-lint (SSD9xx source lints).
//!
//! Two halves: the real workspace must lint *clean* (this is the same
//! gate ci.sh runs via `ssd lint --deny-warnings`), and the seeded
//! fixture workspace under `tests/fixtures/lint-bad/` must reproduce
//! the golden findings — one or more per lint: SSD901 RegistryDrift,
//! SSD902 GuardBypass, SSD903 PanicSite, SSD904 LockOrderViolation,
//! SSD905 SpanLeak (`Code::RegistryDrift`, `Code::GuardBypass`,
//! `Code::PanicSite`, `Code::LockOrderViolation`, `Code::SpanLeak`).

use std::path::{Path, PathBuf};

use ssd_diag::Code;

fn workspace_root() -> PathBuf {
    // The manifest dir is crates/lint; the workspace root is two up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn the_workspace_lints_clean() {
    let report = ssd_lint::lint_workspace(&workspace_root()).expect("lint runs");
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        report.render()
    );
    assert!(!ssd_lint::should_fail(&report, true));
}

#[test]
fn seeded_fixture_violations_match_the_golden_findings() {
    let root = workspace_root();
    let report =
        ssd_lint::lint_workspace(&root.join("tests/fixtures/lint-bad")).expect("fixture lints");
    // Every lint fires at least once on its seeded violation.
    for code in [
        Code::RegistryDrift,
        Code::GuardBypass,
        Code::PanicSite,
        Code::LockOrderViolation,
        Code::SpanLeak,
    ] {
        assert!(
            report.findings.iter().any(|f| f.diag.code == code),
            "{code} did not fire on the seeded fixture:\n{}",
            report.render()
        );
    }
    // Errors present, so the gate fails with or without --deny-warnings.
    assert!(ssd_lint::should_fail(&report, false));
    assert!(ssd_lint::should_fail(&report, true));

    let golden_path = root.join("tests/golden/lint_findings.txt");
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_default();
    let got = report.render();
    if golden != got {
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&golden_path, &got).expect("write golden");
            return;
        }
        panic!(
            "fixture findings diverge from tests/golden/lint_findings.txt \
             (run with UPDATE_GOLDEN=1 to regenerate):\n--- golden ---\n{golden}\n--- got ---\n{got}"
        );
    }
}

#[test]
fn every_lint_code_has_an_explanation_and_no_runtime_code_does() {
    for code in ssd_lint::lint_codes() {
        let text = ssd_lint::explain(code.as_str()).expect("explanation");
        assert!(
            text.starts_with(code.as_str()),
            "{code} explanation should lead with the code"
        );
    }
    assert!(ssd_lint::explain("SSD101").is_none());
    assert!(ssd_lint::explain("SSD030").is_none());
}

#[test]
fn a_clean_report_renders_a_clean_summary() {
    let report = ssd_lint::lint_workspace(&workspace_root()).expect("lint runs");
    assert!(report.summary().contains("clean"), "{}", report.summary());
    assert!(report.files_scanned > 30, "{}", report.files_scanned);
}
