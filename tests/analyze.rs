//! Integration tests for the `ssd-analyze` static-analysis pass, run over
//! generated datasets (ssd-data movies / webgraph): every SSD0xx code
//! fires at least once with a source span, clean inputs yield zero
//! diagnostics, and — property-tested — analyzer-accepted queries never
//! fail evaluation (the gate's error set equals the evaluator's).

use proptest::prelude::*;
use semistructured::diag::{Code, DiagnosticSink, Severity};
use semistructured::query::lang::{
    Binding, CmpOp, Cond, Construct, EvalOptions, Expr, SelectQuery, Source,
};
use semistructured::query::Rpe;
use semistructured::Database;

fn movie_db() -> Database {
    Database::new(semistructured::data::movies::movie_database(
        &semistructured::data::movies::MovieDbConfig::sized(60),
    ))
}

fn web_db() -> Database {
    Database::new(semistructured::data::webgraph::web_graph(
        &semistructured::data::webgraph::WebGraphConfig {
            pages: 50,
            ..Default::default()
        },
    ))
}

/// Sources that must trigger each query-side diagnostic code.
const QUERY_CASES: &[(Code, &str)] = &[
    (Code::UnboundVariable, "select X from db.Entry _E"),
    (
        Code::UseBeforeBind,
        "select T from M.Title T, db.Entry.Movie M",
    ),
    (
        Code::DuplicateBinding,
        "select M from db.Entry M, db.Entry M",
    ),
    (Code::UnusedBinding, "select M from db.Entry M, M.Movie N"),
    (Code::LabelVarMisuse, "select X from db.(^L)*.%* X"),
    (Code::EmptyPath, "select X from db.Bogus.Nowhere X"),
];

/// Sources that must trigger each datalog-side diagnostic code.
const DATALOG_CASES: &[(Code, &str)] = &[
    (Code::DatalogUnsafe, "q(X, Y) :- node(X)."),
    (Code::DatalogArityMismatch, "q(X) :- edge(X, Y), node(Y)."),
    (
        Code::DatalogNotStratifiable,
        "win(X) :- edge(X, _L, Y), not win(Y).",
    ),
    (Code::DatalogUndefinedPredicate, "q(X) :- nodes(X)."),
    (
        Code::DatalogUnreachableRule,
        "orphan(X) :- node(X).\nresult(X) :- root(X).",
    ),
    (Code::DatalogHeadWildcard, "q(_) :- node(_)."),
    (
        Code::DatalogSingletonVariable,
        "q(X) :- edge(X, L, Y), node(Y).",
    ),
];

#[test]
fn every_query_code_fires_with_a_span_on_movie_data() {
    let db = movie_db();
    for (code, src) in QUERY_CASES {
        let analysis = db.check_query(src).unwrap();
        let hit = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == *code)
            .unwrap_or_else(|| {
                panic!(
                    "{code} did not fire for {src:?}: {:?}",
                    analysis.diagnostics
                )
            });
        assert!(hit.span.is_some(), "{code} on {src:?} lacks a span");
        assert_eq!(hit.severity, code.severity());
    }
}

#[test]
fn every_datalog_code_fires_with_a_span_on_web_data() {
    let db = web_db();
    for (code, src) in DATALOG_CASES {
        let diags = db.check_datalog(src).unwrap();
        let hit = diags
            .iter()
            .find(|d| d.code == *code)
            .unwrap_or_else(|| panic!("{code} did not fire for {src:?}: {diags:?}"));
        assert!(hit.span.is_some(), "{code} on {src:?} lacks a span");
    }
}

/// The cost band (SSD03x) is opt-in: it comes from the estimator
/// (`estimate_query`/`estimate_datalog`, CLI `--estimate`/`--admission`)
/// rather than from `check_query`, so it gets its own driver.
#[test]
fn every_cost_code_fires_through_the_estimator() {
    let db = movie_db();
    // SSD030: even the cheapest run cannot fit a 1-step budget.
    let est = db
        .estimate_query("select T from db.Entry.Movie.Title T")
        .unwrap();
    let rejection = semistructured::Budget::unlimited()
        .max_steps(1)
        .admit(&est.envelope)
        .unwrap_err();
    assert_eq!(rejection.code, Code::CostExceedsBudget);
    // SSD031: star over the cyclic movie graph has no finite word bound.
    let est = db.estimate_query("select X from db.%* X").unwrap();
    assert!(
        est.diagnostics
            .iter()
            .any(|d| d.code == Code::UnboundedCost),
        "{:?}",
        est.diagnostics
    );
    // SSD032: two bindings sharing no variable multiply out.
    let est = db
        .estimate_query("select {m: M, n: N} from db.Entry M, db.Entry N")
        .unwrap();
    let cross = est
        .diagnostics
        .iter()
        .find(|d| d.code == Code::CrossProductJoin)
        .unwrap();
    assert!(cross.span.is_some(), "SSD032 lacks a span");
    // SSD033: with no statistics the estimate is widened, with a reason.
    let q = semistructured::query::parse_query("select T from db.Entry.Movie.Title T").unwrap();
    let a = semistructured::query::analyze::analyze_query_cost(
        &q,
        None,
        &semistructured::query::analyze::CostContext::default(),
    );
    assert!(
        a.diagnostics
            .iter()
            .any(|d| d.code == Code::ImpreciseEstimate),
        "{:?}",
        a.diagnostics
    );
}

#[test]
fn all_static_codes_are_covered_by_the_cases() {
    // Runtime-governance codes (SSD1xx/SSD2xx) are exercised by
    // tests/guard.rs and tests/serve.rs; the cost band (SSD03x) by
    // every_cost_code_fires_through_the_estimator and
    // tests/cost_soundness.rs; SSD034 by the CLI's
    // strict-admission-overrides-partial test; this file's tables own
    // the rest.
    let cost_band = [
        Code::CostExceedsBudget,
        Code::UnboundedCost,
        Code::CrossProductJoin,
        Code::ImpreciseEstimate,
        Code::AdmissionOverridesPartial,
    ];
    // The SSD05x execution band (SSD050 index fallback, SSD051
    // dictionary overflow) is emitted by the access-path planner and the
    // dictionary encoder, not the query/datalog analyzers; tests/index.rs
    // exercises both.
    let index_band = [Code::IndexFallback, Code::DictionaryOverflow];
    // The SSD06x workload band (scenario failure, perf regression,
    // baseline mismatch) is emitted by the bench baseline checker, not
    // the analyzers; tests/workload.rs exercises all three.
    let workload_band = [
        Code::WorkloadScenarioFailed,
        Code::PerfRegression,
        Code::BaselineMismatch,
    ];
    let covered: Vec<Code> = QUERY_CASES
        .iter()
        .chain(DATALOG_CASES)
        .map(|(c, _)| *c)
        .chain(cost_band)
        .chain(index_band)
        .chain(workload_band)
        .collect();
    // SSD9xx source lints are exercised by tests/lint.rs, not by the
    // query/datalog analyzers.
    for &code in Code::all()
        .iter()
        .filter(|c| !c.is_runtime() && !c.is_lint())
    {
        assert!(covered.contains(&code), "no test case triggers {code}");
    }
}

#[test]
fn clean_query_and_program_yield_zero_diagnostics() {
    let movies = movie_db();
    let a = movies
        .check_query("select {Title: T} from db.Entry.Movie M, M.Title T")
        .unwrap();
    assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    assert!(a.types.is_some());

    let web = web_db();
    let d = web
        .check_datalog(
            "reach(X) :- root(X).\n\
             reach(Y) :- reach(X), edge(X, _L, Y).",
        )
        .unwrap();
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn diagnostics_render_with_carets() {
    let db = movie_db();
    let src = "select X from db.Entry _E";
    let a = db.check_query(src).unwrap();
    let rendered = a.diagnostics.render_all(src, "query");
    assert!(rendered.contains("error[SSD001]"), "{rendered}");
    assert!(rendered.contains('^'), "{rendered}");
    assert!(rendered.contains("--> query:1:"), "{rendered}");
}

#[test]
fn warnings_do_not_block_evaluation_errors_do() {
    let db = movie_db();
    // SSD004 (warning): runs, and the warning reaches EvalStats.
    let warned = db
        .query("select M from db.Entry M, M.Movie _X, db.Entry Unused")
        .unwrap();
    assert!(
        warned.stats().warnings.iter().any(|w| w.contains("SSD004")),
        "{:?}",
        warned.stats().warnings
    );
    // SSD001 (error): the evaluation gate refuses a hand-built AST that
    // bypasses parse-time validation, citing the diagnostic code.
    let bad = SelectQuery {
        construct: Construct::Var("Nope".into()),
        bindings: vec![Binding {
            source: Source::Db,
            path: Rpe::symbol("Entry"),
            var: "_E".into(),
        }],
        condition: None,
    };
    let err = semistructured::query::evaluate_select(db.graph(), &bad, &EvalOptions::default())
        .expect_err("query with unbound construct variable was accepted");
    assert!(err.contains("SSD001"), "{err}");
}

// ---------------------------------------------------------------------------
// Property: the analyzer's error set coincides with the evaluator's
// rejection set. Accepted ⇒ evaluation succeeds (in particular, no
// unbound-variable failures mid-evaluation); rejected ⇔ validate rejects.

const VARS: &[&str] = &["A", "B", "C"];
const LABELS: &[&str] = &["Entry", "Movie", "Title", "Cast", "Bogus"];

fn arb_path() -> impl Strategy<Value = Rpe> {
    prop_oneof![
        (0..LABELS.len()).prop_map(|i| Rpe::symbol(LABELS[i])),
        (0..LABELS.len(), 0..LABELS.len())
            .prop_map(|(i, j)| Rpe::seq(vec![Rpe::symbol(LABELS[i]), Rpe::symbol(LABELS[j])])),
        (0..LABELS.len()).prop_map(|i| Rpe::symbol(LABELS[i]).star()),
    ]
}

fn arb_binding() -> impl Strategy<Value = Binding> {
    (0..=VARS.len(), arb_path(), 0..VARS.len()).prop_map(|(src, path, var)| Binding {
        source: if src == 0 {
            Source::Db
        } else {
            Source::Var(VARS[src - 1].to_owned())
        },
        path,
        var: VARS[var].to_owned(),
    })
}

fn arb_query() -> impl Strategy<Value = SelectQuery> {
    (
        0..VARS.len(),
        proptest::collection::vec(arb_binding(), 1..4),
        // 0 encodes "no condition"; i > 0 compares VARS[i - 1] against n.
        0..=VARS.len(),
        -3i64..3,
    )
        .prop_map(|(cvar, bindings, cond, n)| SelectQuery {
            construct: Construct::Var(VARS[cvar].to_owned()),
            bindings,
            condition: (cond > 0).then(|| {
                Cond::Cmp(
                    Expr::Var(VARS[cond - 1].to_owned()),
                    CmpOp::Eq,
                    Expr::Const(semistructured::Value::Int(n)),
                )
            }),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn analyzer_accepted_queries_always_evaluate(q in arb_query()) {
        let db = Database::new(semistructured::data::movies::figure1());
        let analysis = semistructured::query::analyze_query(&q, None, None);
        let errors: Vec<_> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        let outcome =
            semistructured::query::evaluate_select(db.graph(), &q, &EvalOptions::default());
        // Gate ⇔ validate: nothing validate accepts is newly refused.
        prop_assert_eq!(
            errors.is_empty(),
            q.validate().is_ok(),
            "analyzer/validate disagree on {}: {:?}",
            q,
            errors
        );
        // Accepted ⇒ evaluation completes (no unbound-variable failures).
        prop_assert_eq!(
            outcome.is_ok(),
            errors.is_empty(),
            "gate/evaluator disagree on {}",
            q
        );
    }
}
